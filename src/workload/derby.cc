// The Database-Derby-style workload: the one collection schema that "came
// with a query set" — 20 queries, 8 of which are updates (§6.2).
#include "er/er_catalog.h"
#include "workload/workload.h"

namespace mctdb::workload {

using query::QueryBuilder;

Workload DerbyWorkload() {
  Workload w(er::Derby());
  const er::ErDiagram& d = w.diagram;
  w.gen.base_count = 40;
  w.gen.fanout = 3.0;
  w.gen.seed = 8585;

  // D1: students of one college (deep chain through enrollment).
  {
    QueryBuilder b("D1", d);
    int c = b.Root("college");
    b.Where(c, "name", "Japan");
    b.Via(c, {"comprises", "department", "dept_course", "course",
              "course_section", "section", "sec_enroll", "enrollment"});
    w.queries.push_back(b.Build());
  }
  // D2: sections taught by professors of one department.
  {
    QueryBuilder b("D2", d);
    int dep = b.Root("department");
    b.Where(dep, "name", "USA");
    b.Via(dep, {"dept_faculty", "professor", "section_prof", "section"});
    w.queries.push_back(b.Build());
  }
  // D3: the room of a given section (reverse context).
  {
    QueryBuilder b("D3", d);
    int s = b.Root("section");
    b.Where(s, "id", "section_9");
    b.Via(s, {"meets_in", "room"});
    w.queries.push_back(b.Build());
  }
  // D4: the building of a given section (two reverse hops).
  {
    QueryBuilder b("D4", d);
    int s = b.Root("section");
    b.Where(s, "id", "section_12");
    b.Via(s, {"meets_in", "room", "in_building", "building"});
    w.queries.push_back(b.Build());
  }
  // D5: distinct rooms pinned by one course (M:N).
  {
    QueryBuilder b("D5", d);
    int c = b.Root("course");
    b.Where(c, "id", "course_4");
    b.Via(c, {"prereq_site", "room"});
    b.Distinct();
    w.queries.push_back(b.Build());
  }
  // D6: enrollments of one student.
  {
    QueryBuilder b("D6", d);
    int s = b.Root("student");
    b.Where(s, "id", "student_15");
    b.Via(s, {"stu_enroll", "enrollment"});
    w.queries.push_back(b.Build());
  }
  // D7: advisees of professors in one department, grouped by GPA.
  {
    QueryBuilder b("D7", d);
    int dep = b.Root("department");
    b.Where(dep, "name", "Kenya");
    int s = b.Via(dep, {"dept_faculty", "professor", "advises", "student"});
    b.GroupBy(s, "gpa");
    w.queries.push_back(b.Build());
  }
  // D8: notes about students advised by one professor.
  {
    QueryBuilder b("D8", d);
    int p = b.Root("professor");
    b.Where(p, "id", "professor_2");
    b.Via(p, {"advises", "student", "note_about", "advisor_note"});
    w.queries.push_back(b.Build());
  }
  // D9: head professor of a department (1:1 both ways).
  {
    QueryBuilder b("D9", d);
    int dep = b.Root("department");
    b.Where(dep, "id", "department_3");
    b.Via(dep, {"dept_head", "professor"});
    w.queries.push_back(b.Build());
  }
  // D10: tuple pattern — sections of one course that meet in a given
  // timeslot (filter branch + output branch).
  {
    QueryBuilder b("D10", d);
    int c = b.Root("course");
    b.Where(c, "id", "course_6");
    int s = b.Via(c, {"course_section", "section"});
    int t = b.Via(s, {"meets_at", "timeslot"});
    b.Where(t, "when", "Japan");
    int e = b.Via(s, {"sec_enroll", "enrollment"});
    b.Output(e);
    w.queries.push_back(b.Build());
  }
  // D11: distinct students enrolled in sections of one course (M:N
  // composite through enrollment).
  {
    QueryBuilder b("D11", d);
    int c = b.Root("course");
    b.Where(c, "id", "course_2");
    b.Via(c, {"course_section", "section", "sec_enroll", "enrollment",
              "stu_enroll", "student"});
    b.Distinct();
    w.queries.push_back(b.Build());
  }
  // D12: students of one college grouped by name (group-by by value).
  {
    QueryBuilder b("D12", d);
    int c = b.Root("college");
    b.Where(c, "name", "India");
    int s = b.Via(c, {"stu_college", "student"});
    b.GroupBy(s, "name");
    w.queries.push_back(b.Build());
  }

  // DU1: rename one student (point, located by key).
  {
    QueryBuilder b("DU1", d);
    int s = b.Root("student");
    b.Where(s, "id", "student_1");
    b.Update("name", "renamed");
    w.queries.push_back(b.Build());
  }
  // DU2: bulk GPA reset for students named Japan.
  {
    QueryBuilder b("DU2", d);
    int s = b.Root("student");
    b.Where(s, "name", "Japan");
    b.Update("gpa", "0");
    w.queries.push_back(b.Build());
  }
  // DU3: regrade the enrollments of one section (chain-located).
  {
    QueryBuilder b("DU3", d);
    int s = b.Root("section");
    b.Where(s, "id", "section_5");
    b.Via(s, {"sec_enroll", "enrollment"});
    b.Update("grade", "A");
    w.queries.push_back(b.Build());
  }
  // DU4: renumber the room of one section (reverse-located single update).
  {
    QueryBuilder b("DU4", d);
    int s = b.Root("section");
    b.Where(s, "id", "section_7");
    b.Via(s, {"meets_in", "room"});
    b.Update("number", "B-101");
    w.queries.push_back(b.Build());
  }
  // DU5: re-term sections of one course.
  {
    QueryBuilder b("DU5", d);
    int c = b.Root("course");
    b.Where(c, "id", "course_3");
    b.Via(c, {"course_section", "section"});
    b.Update("term", "W26");
    w.queries.push_back(b.Build());
  }
  // DU6: retitle courses of one department.
  {
    QueryBuilder b("DU6", d);
    int dep = b.Root("department");
    b.Where(dep, "id", "department_1");
    b.Via(dep, {"dept_course", "course"});
    b.Update("title", "retitled");
    w.queries.push_back(b.Build());
  }
  // DU7: update the advisor notes of one professor's advisees.
  {
    QueryBuilder b("DU7", d);
    int p = b.Root("professor");
    b.Where(p, "id", "professor_5");
    b.Via(p, {"advises", "student", "note_about", "advisor_note"});
    b.Update("text", "reviewed");
    w.queries.push_back(b.Build());
  }
  // DU8: rename the building a section meets in (two reverse hops).
  {
    QueryBuilder b("DU8", d);
    int s = b.Root("section");
    b.Where(s, "id", "section_3");
    b.Via(s, {"meets_in", "room", "in_building", "building"});
    b.Update("name", "annex");
    w.queries.push_back(b.Build());
  }

  for (const auto& q : w.queries) w.figure_queries.push_back(q.name);
  return w;
}

}  // namespace mctdb::workload
