// Bounded retry with exponential backoff for transient storage faults.
//
// The policy lives in common so the pager, the persist layer, and any
// future network layer share one knob set. Only DataLoss / IoError /
// Unavailable are considered transient; everything else (InvalidArgument,
// Corruption of in-memory structure, ...) fails immediately.
//
// Environment overrides (read once by RetryPolicy::FromEnv):
//   MCTDB_RETRY_ATTEMPTS   total attempts including the first (default 4);
//                          0 or 1 disables retrying
//   MCTDB_RETRY_BACKOFF_US initial backoff in microseconds (default 100)
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/status.h"

namespace mctdb {

struct RetryPolicy {
  /// Total attempts, including the first. <= 1 means no retries.
  int max_attempts = 4;
  std::chrono::microseconds initial_backoff{100};
  double multiplier = 2.0;
  std::chrono::microseconds max_backoff{10000};

  /// Defaults above, overridden by MCTDB_RETRY_* (parsed once, cached).
  static const RetryPolicy& FromEnv();

  /// A policy that never retries (for tests asserting first-failure
  /// behaviour).
  static RetryPolicy None() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
};

/// True for fault classes worth retrying: the bytes may be fine next time.
inline bool IsRetryable(const Status& s) {
  return s.IsDataLoss() || s.IsIoError() || s.IsUnavailable();
}

/// Runs `fn` (a callable returning Status) up to policy.max_attempts times,
/// sleeping an exponentially growing backoff between attempts, as long as
/// the result is retryable. Returns the last Status. If `retries` is
/// non-null it is incremented once per extra attempt actually made, so
/// callers can export a retry counter.
template <typename Fn>
Status RetryWithBackoff(const RetryPolicy& policy, Fn&& fn,
                        uint64_t* retries = nullptr) {
  Status s = fn();
  if (s.ok() || policy.max_attempts <= 1) return s;
  std::chrono::microseconds backoff = policy.initial_backoff;
  for (int attempt = 1; attempt < policy.max_attempts && IsRetryable(s);
       ++attempt) {
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    auto next = std::chrono::microseconds(static_cast<int64_t>(
        static_cast<double>(backoff.count()) * policy.multiplier));
    backoff = next < policy.max_backoff ? next : policy.max_backoff;
    if (retries != nullptr) ++*retries;
    s = fn();
  }
  return s;
}

}  // namespace mctdb
