// MaintenanceManager tests (DESIGN.md §17): the background triggers
// (WAL size / record count / elapsed time), the gap-saturation stall +
// interval-label rebalance path with a byte-identical manual-checkpoint
// oracle, and the ENOSPC read-only degradation + timed re-probe cycle.
#include "wal/maintenance.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "design/designer.h"
#include "er/er_parser.h"
#include "instance/logical.h"
#include "instance/materialize.h"
#include "obs/trace_id.h"
#include "storage/persist.h"
#include "wal/durable_store.h"

namespace mctdb::wal {
namespace {

using design::Strategy;

constexpr char kMiniEr[] = R"(
diagram mini
entity user { key id  attr name string }
entity post { key id  attr title string }
rel writes: user (1) -- post (m!)
)";

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

/// Waits until `pred` holds, polling; false on timeout.
template <typename Pred>
bool WaitFor(Pred pred, double seconds = 5.0) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(seconds);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

/// The shared world: one tiny user--writes--post diagram, the schema the
/// stall tests use (picked so inserts place UNDER the parent's label
/// range and can saturate it), and a factory for "insert one new
/// writes+post pair under user 0" ops with fresh logical ids.
class MaintenanceTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto diagram = er::ParseErDiagram(kMiniEr);
    ASSERT_TRUE(diagram.ok()) << diagram.status().ToString();
    diagram_ = new er::ErDiagram(*diagram);
    graph_ = new er::ErGraph(*diagram_);
    instance::GenOptions gen;
    gen.base_count = 4;
    logical_ = new instance::LogicalInstance(
        instance::GenerateInstance(*graph_, gen));
    // Pick a schema and stride whose inserts are parent-anchored
    // (bounded label gaps): at least one insert fits, then the gap
    // saturates.
    design::Designer designer(*graph_);
    for (Strategy s : design::AllStrategies()) {
      mct::MctSchema schema = designer.Design(s);
      for (uint32_t stride : {8u, 16u, 24u, 32u}) {
        tight_stride_ = stride;
        if (SaturationIndex(schema) >= 1) {
          schema_ = new mct::MctSchema(std::move(schema));
          return;
        }
      }
    }
    FAIL() << "no strategy saturates on the mini diagram";
  }
  static void TearDownTestSuite() {
    delete schema_;
    delete logical_;
    delete graph_;
    delete diagram_;
    schema_ = nullptr;
  }

  /// Insert op k: a new `writes` instance with a new `post` child, under
  /// pre-existing user 0. Same parent every time, so repeated inserts
  /// shrink the same bounded label gap.
  static storage::UpdateOp MakeInsert(int k) {
    const er::ErNode* user = nullptr;
    const er::ErNode* post = nullptr;
    const er::ErNode* writes = nullptr;
    for (const er::ErNode& n : diagram_->nodes()) {
      if (n.name == "user") user = &n;
      if (n.name == "post") post = &n;
      if (n.name == "writes") writes = &n;
    }
    storage::UpdateOp op;
    op.kind = storage::UpdateOp::Kind::kInsertSubtree;
    op.target_type = user->id;
    op.target_logical = 0;
    uint32_t base = (1u << 20) + uint32_t(k) * 2;
    op.subtree.type = writes->id;
    op.subtree.logical = base;
    storage::SubtreeSpec child;
    child.type = post->id;
    child.logical = base + 1;
    for (const er::Attribute& a : post->attributes) {
      storage::SubtreeSpec::Attr attr;
      attr.name = a.name;
      attr.value = (a.is_key ? "post_new" : "v_new") + std::to_string(base + 1);
      attr.with_content = !a.is_key;
      child.attrs.push_back(std::move(attr));
    }
    op.subtree.children.push_back(std::move(child));
    return op;
  }

  static DurableStoreOptions TightStride() {
    DurableStoreOptions options;
    options.store.label_stride = tight_stride_;
    return options;
  }

  /// Wide enough that the trigger tests' few inserts never saturate —
  /// keeps the urgent gap-pressure path from preempting the trigger
  /// under test.
  static DurableStoreOptions WideStride() {
    DurableStoreOptions options;
    options.store.label_stride = 512;
    return options;
  }

  /// Applies MakeInsert ops to a fresh tight-stride ephemeral store with
  /// NO maintenance until one hits ResourceExhausted; returns its index,
  /// or -1 if 64 inserts all fit (schema places them top-level).
  static int SaturationIndex(const mct::MctSchema& schema) {
    auto d = DurableStore::Ephemeral(
        instance::Materialize(*logical_, schema, {TightStride().store}),
        TightStride());
    if (!d.ok()) return -1;
    for (int k = 0; k < 64; ++k) {
      auto r = (*d)->Apply(MakeInsert(k));
      if (!r.ok()) {
        return r.status().IsResourceExhausted() ? k : -1;
      }
    }
    return -1;
  }

  static er::ErDiagram* diagram_;
  static er::ErGraph* graph_;
  static instance::LogicalInstance* logical_;
  static mct::MctSchema* schema_;
  static uint32_t tight_stride_;
};

er::ErDiagram* MaintenanceTest::diagram_ = nullptr;
er::ErGraph* MaintenanceTest::graph_ = nullptr;
instance::LogicalInstance* MaintenanceTest::logical_ = nullptr;
mct::MctSchema* MaintenanceTest::schema_ = nullptr;
uint32_t MaintenanceTest::tight_stride_ = 8;

MaintenanceOptions QuietOptions() {
  // Nothing fires unless a test turns a trigger on.
  MaintenanceOptions options;
  options.wal_bytes_threshold = 0;
  options.wal_records_threshold = 0;
  options.interval_seconds = 0.0;
  options.gap_pressure_min_free = 0;
  options.poll_seconds = 0.002;
  options.max_stall_seconds = 10.0;
  options.reprobe_seconds = 0.01;
  return options;
}

TEST_F(MaintenanceTest, WalRecordsThresholdTriggersCheckpoint) {
  auto d = DurableStore::Ephemeral(
      instance::Materialize(*logical_, *schema_, {WideStride().store}),
      WideStride());
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  MaintenanceOptions options = QuietOptions();
  options.wal_records_threshold = 2;
  std::atomic<int> callbacks{0};
  std::atomic<uint64_t> callback_trace{0};
  MaintenanceManager mm(d->get(), options,
                        [&](const MaintenanceManager::Event& event) {
                          EXPECT_TRUE(event.status.ok())
                              << event.status.ToString();
                          EXPECT_EQ(event.reason,
                                    CheckpointReason::kWalRecords);
                          EXPECT_TRUE(event.stats.rebased);
                          callback_trace = obs::CurrentTraceId();
                          ++callbacks;
                        });
  mm.Start();
  ASSERT_TRUE((*d)->Apply(MakeInsert(0)).ok());
  ASSERT_TRUE((*d)->Apply(MakeInsert(1)).ok());
  EXPECT_TRUE(WaitFor([&] {
    return mm.checkpoints(CheckpointReason::kWalRecords) >= 1;
  }));
  EXPECT_TRUE(WaitFor([&] { return callbacks.load() >= 1; }));
  // The cycle minted its own trace id: flight events and the service's
  // plan-cache generation bump stay correlated even without an ambient
  // ScopedTraceId on this background thread.
  EXPECT_NE(callback_trace.load(), 0u);
  mm.Stop();
  EXPECT_GE((*d)->rebases(), 1u);
}

TEST_F(MaintenanceTest, WalBytesThresholdTriggersCheckpoint) {
  auto d = DurableStore::Ephemeral(
      instance::Materialize(*logical_, *schema_, {WideStride().store}),
      WideStride());
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  MaintenanceOptions options = QuietOptions();
  options.wal_bytes_threshold = 1;  // any durable byte crosses it
  MaintenanceManager mm(d->get(), options);
  mm.Start();
  ASSERT_TRUE((*d)->Apply(MakeInsert(0)).ok());
  EXPECT_TRUE(WaitFor([&] {
    return mm.checkpoints(CheckpointReason::kWalSize) >= 1;
  }));
  mm.Stop();
}

TEST_F(MaintenanceTest, ElapsedIntervalTriggersOnlyAfterAppends) {
  auto d = DurableStore::Ephemeral(
      instance::Materialize(*logical_, *schema_, {WideStride().store}),
      WideStride());
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  MaintenanceOptions options = QuietOptions();
  options.interval_seconds = 0.01;
  MaintenanceManager mm(d->get(), options);
  mm.Start();
  // No appends: the interval alone must not checkpoint.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(mm.checkpoints(CheckpointReason::kElapsed), 0u);
  ASSERT_TRUE((*d)->Apply(MakeInsert(0)).ok());
  EXPECT_TRUE(WaitFor([&] {
    return mm.checkpoints(CheckpointReason::kElapsed) >= 1;
  }));
  mm.Stop();
}

TEST_F(MaintenanceTest, ProactiveGapPressureTriggersBeforeSaturation) {
  auto d = DurableStore::Ephemeral(
      instance::Materialize(*logical_, *schema_, {TightStride().store}),
      TightStride());
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  MaintenanceOptions options = QuietOptions();
  options.gap_pressure_min_free = 1u << 20;  // any bounded insert qualifies
  MaintenanceManager mm(d->get(), options);
  mm.Start();
  ASSERT_TRUE((*d)->Apply(MakeInsert(0)).ok());
  EXPECT_TRUE(WaitFor([&] {
    return mm.checkpoints(CheckpointReason::kGapPressure) >= 1;
  }));
  EXPECT_GE(mm.gap_rebalances(), 1u);
  mm.Stop();
}

// The tentpole scenario: a writer that would be ResourceExhausted stalls
// behind the urgent rebalancing checkpoint and succeeds on retry, and the
// resulting store is BYTE-IDENTICAL to the oracle that hit the error,
// checkpointed manually, and retried by hand.
TEST_F(MaintenanceTest, GapSaturationStallsRebalancesAndMatchesOracle) {
  const int saturation = SaturationIndex(*schema_);
  ASSERT_GE(saturation, 1) << "fixture schema no longer saturates";
  const int total = saturation * 3 + 2;  // cross several rebalances

  // Oracle: no maintenance; on saturation checkpoint by hand and retry.
  auto oracle = DurableStore::Ephemeral(
      instance::Materialize(*logical_, *schema_, {TightStride().store}),
      TightStride());
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  size_t manual_checkpoints = 0;
  for (int k = 0; k < total; ++k) {
    auto r = (*oracle)->Apply(MakeInsert(k));
    if (!r.ok()) {
      ASSERT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
      auto cp = (*oracle)->Checkpoint(CheckpointMode::kRebaseLive);
      ASSERT_TRUE(cp.ok()) << cp.status().ToString();
      ++manual_checkpoints;
      r = (*oracle)->Apply(MakeInsert(k));
      ASSERT_TRUE(r.ok()) << "retry after manual rebalance: "
                          << r.status().ToString();
    }
  }
  ASSERT_GE(manual_checkpoints, 2u);

  // Subject: same ops, maintenance attached, reactive stalls only. Every
  // Apply succeeds — saturation stalls behind the urgent checkpoint
  // instead of surfacing.
  auto subject = DurableStore::Ephemeral(
      instance::Materialize(*logical_, *schema_, {TightStride().store}),
      TightStride());
  ASSERT_TRUE(subject.ok()) << subject.status().ToString();
  MaintenanceManager mm(subject->get(), QuietOptions());
  mm.Start();
  for (int k = 0; k < total; ++k) {
    auto r = (*subject)->Apply(MakeInsert(k));
    ASSERT_TRUE(r.ok()) << "op " << k << ": " << r.status().ToString();
  }
  mm.Stop();

  EXPECT_GE((*subject)->write_stalls(), manual_checkpoints);
  EXPECT_GE((*subject)->saturation_events(), manual_checkpoints);
  EXPECT_EQ((*subject)->rebases(), manual_checkpoints);
  EXPECT_EQ(mm.gap_rebalances(), manual_checkpoints);
  EXPECT_EQ((*subject)->snapshot(), (*oracle)->snapshot());

  // Byte-identical final state: the stall path is the manual path, just
  // driven from the background thread.
  std::string subject_path = TempPath("maintenance_subject.mctdb");
  std::string oracle_path = TempPath("maintenance_oracle.mctdb");
  ASSERT_TRUE(
      storage::SaveStore(*(*subject)->store(), subject_path).ok());
  ASSERT_TRUE(storage::SaveStore(*(*oracle)->store(), oracle_path).ok());
  std::string subject_bytes = ReadFile(subject_path);
  std::string oracle_bytes = ReadFile(oracle_path);
  ASSERT_FALSE(subject_bytes.empty());
  EXPECT_EQ(subject_bytes, oracle_bytes);
}

TEST_F(MaintenanceTest, StallBudgetSpentSurfacesRetryAfterHint) {
  auto d = DurableStore::Ephemeral(
      instance::Materialize(*logical_, *schema_, {TightStride().store}),
      TightStride());
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  MaintenanceOptions options = QuietOptions();
  options.max_stall_seconds = 0.05;
  MaintenanceManager mm(d->get(), options);
  mm.Start();
  // Checkpoints cannot complete (injected fault), so the urgent
  // rebalance never fixes the gap and the writer burns its whole stall
  // budget before the error surfaces.
  failpoint::FailpointGuard guard("wal.checkpoint", "err");
  int k = 0;
  Status last = Status::OK();
  for (; k < 64; ++k) {
    auto r = (*d)->Apply(MakeInsert(k));
    if (!r.ok()) {
      last = r.status();
      break;
    }
  }
  ASSERT_TRUE(last.IsResourceExhausted()) << last.ToString();
  EXPECT_NE(last.ToString().find("retry after"), std::string::npos)
      << last.ToString();
  EXPECT_GE((*d)->write_stalls(), 1u);
  EXPECT_FALSE(mm.last_error().empty());
  mm.Stop();
}

// Chaos: ENOSPC on the WAL fsync degrades the store to sticky read-only
// (writes Unavailable, reads pinned at the last published LSN); once the
// "disk" drains the maintenance re-probe restores writes and publishes
// what was parked.
TEST_F(MaintenanceTest, EnospcDegradesToReadOnlyAndReprobeRestores) {
  failpoint::DisarmAll();
  std::string path = TempPath("maintenance_readonly.mctdb");
  auto d = DurableStore::Create(
      instance::Materialize(*logical_, *schema_, {WideStride().store}), path,
      WideStride());
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  ASSERT_TRUE((*d)->Apply(MakeInsert(0)).ok());
  const Lsn pinned = (*d)->snapshot();

  MaintenanceManager mm(d->get(), QuietOptions());
  mm.Start();
  {
    failpoint::FailpointGuard guard("wal.fsync", "enospc(1.0)");
    // The writer that trips the full disk gets the errno-faithful
    // IoError; every later writer sees Unavailable (degraded fast-path).
    auto r = (*d)->Apply(MakeInsert(1));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("No space left"),
              std::string::npos)
        << r.status().ToString();
    EXPECT_TRUE((*d)->read_only());
    // Reads keep serving at the pinned snapshot; the parked op is not
    // visible.
    EXPECT_EQ((*d)->snapshot(), pinned);
    // Further writes refuse immediately.
    auto r2 = (*d)->Apply(MakeInsert(2));
    ASSERT_FALSE(r2.ok());
    EXPECT_TRUE(r2.status().IsUnavailable()) << r2.status().ToString();
    // The re-probe timer keeps trying (and failing) while armed.
    EXPECT_TRUE(WaitFor([&] { return mm.reprobes() >= 1; }));
    EXPECT_TRUE((*d)->read_only());
    EXPECT_FALSE(mm.last_error().empty());
  }
  // Disk drained: the next re-probe flushes the parked batch, publishes
  // the stuck LSN, and leaves read-only mode.
  EXPECT_TRUE(WaitFor([&] { return !(*d)->read_only(); }));
  EXPECT_TRUE(WaitFor([&] { return (*d)->snapshot() > pinned; }));
  auto r = (*d)->Apply(MakeInsert(3));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  mm.Stop();
}

}  // namespace
}  // namespace mctdb::wal
