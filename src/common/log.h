// Structured JSONL logging: one JSON object per line, with a UTC
// timestamp, a severity level, the emitting component, a human message,
// and typed key=value fields. Replaces ad-hoc fprintf(stderr) paths so
// service admission, slow-query, eviction, and bench events are machine
// parseable (and silenceable) in one place.
//
//   MCTDB_LOG(kWarn, "mctsvc", "slow query",
//             {{"store", name}, {"seconds", 1.25}});
//   -> {"ts":"2026-08-05T12:00:00.123Z","level":"warn","component":
//      "mctsvc","msg":"slow query","store":"EN","seconds":1.25}
//
// The sink is pluggable (tests capture lines; default is stderr, one
// atomic write per line). The minimum level defaults to `warn` and can be
// overridden by the MCTDB_LOG_LEVEL environment variable (debug, info,
// warn, error, off) or SetMinLevel. Everything here is thread-safe;
// formatting happens outside the sink lock, only the write serializes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace mctdb::logging {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3,
                         kOff = 4 };

const char* ToString(Level level);
/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive);
/// defaults to `fallback` on anything else.
Level ParseLevel(std::string_view s, Level fallback);

/// One typed key=value field. Strings are JSON-escaped and quoted;
/// numbers and bools are emitted bare.
struct Field {
  std::string key;
  std::string value;   // pre-rendered JSON value (quoted iff string)
  Field(std::string_view k, std::string_view v);
  Field(std::string_view k, const char* v);
  Field(std::string_view k, const std::string& v);
  Field(std::string_view k, double v);
  Field(std::string_view k, bool v);
  Field(std::string_view k, uint64_t v);
  Field(std::string_view k, int64_t v);
  Field(std::string_view k, int v) : Field(k, int64_t(v)) {}
  Field(std::string_view k, unsigned v) : Field(k, uint64_t(v)) {}
};

/// Current minimum level (initialized once from MCTDB_LOG_LEVEL, default
/// warn). Messages below it are dropped before formatting.
Level MinLevel();
void SetMinLevel(Level level);
inline bool Enabled(Level level) {
  return static_cast<int>(level) >= static_cast<int>(MinLevel());
}

/// Receives one fully formatted JSONL line (no trailing newline).
using Sink = std::function<void(const std::string& line)>;
/// Installs `sink`; nullptr restores the default stderr sink.
void SetSink(Sink sink);

/// Pure formatter (exposed for tests): renders the JSONL line for the
/// given wall-clock time in nanoseconds since the Unix epoch.
std::string FormatLine(Level level, std::string_view component,
                       std::string_view message,
                       const std::vector<Field>& fields,
                       int64_t unix_nanos);

/// Formats and emits one line through the current sink (no-op below the
/// minimum level). Prefer the MCTDB_LOG macro, which skips argument
/// evaluation entirely when the level is disabled.
void Log(Level level, std::string_view component, std::string_view message,
         std::vector<Field> fields = {});

}  // namespace mctdb::logging

/// Usage: MCTDB_LOG(kInfo, "bench", "report written", {{"path", p}}).
/// Fields are not evaluated when `level` is below the minimum.
#define MCTDB_LOG(level, component, message, ...)                         \
  do {                                                                    \
    if (mctdb::logging::Enabled(mctdb::logging::Level::level)) {          \
      mctdb::logging::Log(mctdb::logging::Level::level, (component),      \
                          (message)__VA_OPT__(, __VA_ARGS__));            \
    }                                                                     \
  } while (0)
