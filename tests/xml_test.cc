#include <gtest/gtest.h>

#include "xml/xml_io.h"
#include "xml/xml_node.h"

namespace mctdb::xml {
namespace {

TEST(XmlNodeTest, AttrsSetAndOverwrite) {
  XmlNode n("a");
  n.SetAttr("k", "v1");
  n.SetAttr("k", "v2");
  n.SetAttr("j", "x");
  ASSERT_NE(n.FindAttr("k"), nullptr);
  EXPECT_EQ(*n.FindAttr("k"), "v2");
  EXPECT_EQ(n.attrs().size(), 2u);
  EXPECT_EQ(n.FindAttr("missing"), nullptr);
}

TEST(XmlNodeTest, ChildrenAndSubtreeSize) {
  XmlNode root("root");
  XmlNode* a = root.AddChild("a");
  a->AddChild("b");
  root.AddChild("a");
  EXPECT_EQ(root.SubtreeSize(), 4u);
  EXPECT_EQ(root.FindChildren("a").size(), 2u);
  EXPECT_EQ(root.FindChild("a"), root.children()[0].get());
  EXPECT_EQ(root.FindChild("zzz"), nullptr);
}

TEST(XmlIoTest, WritesWellFormed) {
  XmlNode root("order");
  root.SetAttr("id", "o1");
  XmlNode* line = root.AddChild("line");
  line->set_text("2 < 3 & \"quoted\"");
  std::string out = WriteXml(root);
  EXPECT_NE(out.find("<?xml"), std::string::npos);
  EXPECT_NE(out.find("<order id=\"o1\">"), std::string::npos);
  EXPECT_NE(out.find("&lt;"), std::string::npos);
  EXPECT_NE(out.find("&amp;"), std::string::npos);
}

TEST(XmlIoTest, SelfClosesEmptyElements) {
  XmlNode root("empty");
  EXPECT_NE(WriteXml(root, {.pretty = false, .header = false}).find(
                "<empty/>"),
            std::string::npos);
}

TEST(XmlIoTest, ParseSimpleDocument) {
  auto result = ParseXml(
      "<?xml version=\"1.0\"?>\n"
      "<root a=\"1\"><child b='two'>text</child><child/></root>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const XmlNode& root = **result;
  EXPECT_EQ(root.tag(), "root");
  EXPECT_EQ(*root.FindAttr("a"), "1");
  ASSERT_EQ(root.children().size(), 2u);
  EXPECT_EQ(*root.children()[0]->FindAttr("b"), "two");
  EXPECT_EQ(root.children()[0]->text(), "text");
}

TEST(XmlIoTest, ParseHandlesCommentsAndEscapes) {
  auto result = ParseXml(
      "<!-- header comment --><r><!-- inner --><c v=\"&lt;&amp;&gt;\"/></r>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*(*result)->children()[0]->FindAttr("v"), "<&>");
}

TEST(XmlIoTest, ParseErrors) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></b>").ok());
  EXPECT_FALSE(ParseXml("<a x></a>").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok()) << "two document elements";
}

TEST(XmlIoTest, RoundTrip) {
  XmlNode root("db");
  for (int i = 0; i < 5; ++i) {
    XmlNode* c = root.AddChild("customer");
    c->SetAttr("id", "c" + std::to_string(i));
    c->AddChild("order")->SetAttr("total", "10");
    c->set_text("note & <tag>");
  }
  std::string text = WriteXml(root);
  auto parsed = ParseXml(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ((*parsed)->SubtreeSize(), root.SubtreeSize());
  std::string text2 = WriteXml(**parsed);
  EXPECT_EQ(text, text2) << "fixpoint after one round trip";
}

}  // namespace
}  // namespace mctdb::xml
