#include "analysis/diagnostics.h"

#include "common/string_util.h"

namespace mctdb::analysis {

const char* ToString(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

void DiagnosticReport::Add(Severity severity, std::string code,
                           std::string location, std::string message,
                           std::string fixit) {
  switch (severity) {
    case Severity::kError:
      ++errors_;
      break;
    case Severity::kWarning:
      ++warnings_;
      break;
    case Severity::kNote:
      ++notes_;
      break;
  }
  if (diags_.size() >= max_diagnostics_) {
    ++suppressed_;
    return;
  }
  Diagnostic d;
  d.severity = severity;
  d.code = std::move(code);
  d.location = std::move(location);
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  diags_.push_back(std::move(d));
}

void DiagnosticReport::MergeFrom(const DiagnosticReport& other,
                                 std::string_view location_prefix) {
  for (const Diagnostic& d : other.diags_) {
    std::string location = d.location;
    if (!location_prefix.empty()) {
      location = location.empty()
                     ? std::string(location_prefix)
                     : std::string(location_prefix) + ": " + location;
    }
    Add(d.severity, d.code, std::move(location), d.message, d.fixit);
  }
  suppressed_ += other.suppressed_;
}

bool DiagnosticReport::HasCode(std::string_view code) const {
  for (const Diagnostic& d : diags_) {
    if (d.code == code) return true;
  }
  return false;
}

size_t DiagnosticReport::CountCode(std::string_view code) const {
  size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.code == code) ++n;
  }
  return n;
}

std::string DiagnosticReport::ToText() const {
  if (empty()) return "clean\n";
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += ToString(d.severity);
    out += ' ';
    out += d.code;
    if (!d.location.empty()) out += " [" + d.location + "]";
    out += ": " + d.message;
    if (!d.fixit.empty()) out += " (fix: " + d.fixit + ")";
    out += '\n';
  }
  if (suppressed_ > 0) {
    out += StringPrintf("... %zu more diagnostic(s) suppressed\n",
                        suppressed_);
  }
  out += StringPrintf("%zu error(s), %zu warning(s), %zu note(s)\n", errors_,
                      warnings_, notes_);
  return out;
}

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string DiagnosticReport::ToJson() const {
  std::string out = StringPrintf(
      "{\"errors\":%zu,\"warnings\":%zu,\"notes\":%zu,\"suppressed\":%zu,"
      "\"diagnostics\":[",
      errors_, warnings_, notes_, suppressed_);
  bool first = true;
  for (const Diagnostic& d : diags_) {
    if (!first) out += ',';
    first = false;
    out += "{\"severity\":\"";
    out += ToString(d.severity);
    out += "\",\"code\":\"" + JsonEscape(d.code) + "\"";
    out += ",\"location\":\"" + JsonEscape(d.location) + "\"";
    out += ",\"message\":\"" + JsonEscape(d.message) + "\"";
    if (!d.fixit.empty()) out += ",\"fixit\":\"" + JsonEscape(d.fixit) + "\"";
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace mctdb::analysis
