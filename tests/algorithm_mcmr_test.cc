#include "design/algorithm_mcmr.h"

#include <gtest/gtest.h>

#include "design/algorithm_mc.h"
#include "design/recoverability.h"
#include "er/er_catalog.h"

namespace mctdb::design {
namespace {

using er::ErDiagram;
using er::ErGraph;

TEST(AlgorithmMcmrTest, PreservesNnAndArOnCatalog) {
  for (const ErDiagram& d : er::EvaluationCollection()) {
    ErGraph g(d);
    mct::MctSchema s = AlgorithmMcmr(g);
    std::string why;
    EXPECT_TRUE(s.IsNodeNormal(&why)) << d.name() << ": " << why;
    EXPECT_TRUE(IsAssociationRecoverable(s)) << d.name();
    EXPECT_TRUE(s.Validate().ok());
  }
}

TEST(AlgorithmMcmrTest, ColorCountMatchesMc) {
  for (const ErDiagram& d : er::EvaluationCollection()) {
    ErGraph g(d);
    EXPECT_EQ(AlgorithmMcmr(g).num_colors(), AlgorithmMc(g).num_colors())
        << d.name();
  }
}

TEST(AlgorithmMcmrTest, DirectRecoverabilityAtLeastMc) {
  for (const ErDiagram& d : er::EvaluationCollection()) {
    ErGraph g(d);
    auto paths = EnumerateEligiblePaths(g);
    auto mc_report = AnalyzeRecoverability(AlgorithmMc(g), paths);
    auto mcmr_report = AnalyzeRecoverability(AlgorithmMcmr(g), paths);
    EXPECT_GE(mcmr_report.directly_recoverable,
              mc_report.directly_recoverable)
        << d.name();
  }
}

TEST(AlgorithmMcmrTest, RepairsToyMcNotDr) {
  // §5.2: MCMR reaches complete DR on the first toy by re-using B-r2-C in
  // the second color (giving up EN).
  ErDiagram d = er::ToyMcNotDr();
  ErGraph g(d);
  mct::MctSchema s = AlgorithmMcmr(g);
  EXPECT_EQ(s.num_colors(), 2u);
  auto report = AnalyzeRecoverability(s, EnumerateEligiblePaths(g));
  EXPECT_TRUE(report.fully_direct()) << s.DebugString();
  EXPECT_FALSE(s.IsEdgeNormal());
  EXPECT_FALSE(s.ComputeIcics().empty());
}

TEST(AlgorithmMcmrTest, CannotRepairSecondToy) {
  // §5.2: "cannot be obtained by any MCMR-style approach" — the 1:1 edge
  // would need opposite orientations, impossible within MC's single color.
  ErDiagram d = er::ToyMcmrInsufficient();
  ErGraph g(d);
  mct::MctSchema s = AlgorithmMcmr(g);
  auto report = AnalyzeRecoverability(s, EnumerateEligiblePaths(g));
  if (s.num_colors() == 1) {
    EXPECT_FALSE(report.fully_direct())
        << "one color cannot orient r3 both ways: " << s.DebugString();
  } else {
    // If MC already spent two colors, MCMR may or may not complete DR; the
    // defining contrast with DUMC is exercised in algorithm_dumc_test.
    SUCCEED();
  }
}

TEST(AlgorithmMcmrTest, SaturationAddsEdgesBeyondEn) {
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  mct::MctSchema mc = AlgorithmMc(g);
  mct::MctSchema mcmr = AlgorithmMcmr(g);
  EXPECT_GT(mcmr.num_occurrences(), mc.num_occurrences());
  EXPECT_FALSE(mcmr.IsEdgeNormal());
}

TEST(AlgorithmMcmrTest, TpcwTwoColors) {
  // Table 1: MCMR for TPC-W has 2 colors, same as EN.
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  EXPECT_EQ(AlgorithmMcmr(g).num_colors(), 2u);
}

}  // namespace
}  // namespace mctdb::design
