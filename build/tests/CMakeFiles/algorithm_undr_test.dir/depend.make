# Empty dependencies file for algorithm_undr_test.
# This may be replaced when dependencies are built.
