// XML -> design-specification mining (the paper's closing future-work item:
// "Another interesting direction ... is to understand how MCT models can be
// derived from analysis of XML data, in particular the id/idref values that
// need to encode associations in the XML model").
//
// Given an XML database that follows the id/idref conventions of §1's
// schemas (Figs 2-3: entities carry an `id`-style key attribute;
// relationship elements either nest under one participating element and/or
// carry `<target>_idref` attributes), MineErDiagram reconstructs the
// simplified ER diagram the document encodes:
//
//   * tags with a key attribute           -> entity types;
//   * tags holding idrefs, or key-less
//     connector tags between entities     -> relationship types;
//   * observed fan-outs and reference
//     multiplicities                      -> participation cardinalities;
//   * "every instance participates"       -> totality.
//
// The recovered diagram can then be fed straight to design::Designer — so a
// legacy flat XML database can be *redesigned* into a normalized, fully
// recoverable MCT schema (see MineAndRedesign below and the mctc CLI).
#pragma once

#include <string>

#include "common/result.h"
#include "er/er_model.h"
#include "xml/xml_node.h"

namespace mctdb::design {

struct MiningOptions {
  /// Skip this many wrapper levels at the top (our exports use a synthetic
  /// root element).
  bool skip_document_root = true;
  /// Attribute names treated as keys when present.
  std::string key_attr = "id";
  /// Suffix marking reference attributes.
  std::string idref_suffix = "_idref";
  /// Attributes ignored entirely (export bookkeeping).
  std::vector<std::string> ignore_attrs = {"_nid", "color"};
};

struct MiningReport {
  size_t entity_tags = 0;
  size_t relationship_tags = 0;
  size_t structural_edges = 0;  ///< relationships seen as nesting
  size_t idref_edges = 0;       ///< relationships seen as references
  std::vector<std::string> notes;
};

/// Reconstructs the ER diagram encoded by `document`. Fails when the
/// document's reference structure is not attributable (an idref pointing at
/// an unknown tag, a relationship tag with more than two endpoints, ...).
Result<er::ErDiagram> MineErDiagram(const xml::XmlNode& document,
                                    const MiningOptions& options = {},
                                    MiningReport* report = nullptr);

}  // namespace mctdb::design
