# Empty dependencies file for rich_er_test.
# This may be replaced when dependencies are built.
