// A small XML document model, used to serialize colored trees of an MCT
// database as plain XML (one document per color) and to round-trip schema
// examples. This is the exchange-format layer; the query engine runs on
// src/storage's labeled node store, not on this DOM.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mctdb::xml {

class XmlNode;
using XmlNodePtr = std::unique_ptr<XmlNode>;

/// One XML element with attributes, text content and children.
class XmlNode {
 public:
  explicit XmlNode(std::string tag) : tag_(std::move(tag)) {}

  const std::string& tag() const { return tag_; }
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  void SetAttr(std::string_view name, std::string_view value);
  /// Returns nullptr when absent.
  const std::string* FindAttr(std::string_view name) const;
  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  /// Appends and returns a new child element.
  XmlNode* AddChild(std::string tag);
  /// Appends an already-built subtree (used by the parser).
  XmlNode* AddChildNode(XmlNodePtr child);
  const std::vector<XmlNodePtr>& children() const { return children_; }

  /// First child with the given tag, or nullptr.
  const XmlNode* FindChild(std::string_view tag) const;
  /// All children with the given tag.
  std::vector<const XmlNode*> FindChildren(std::string_view tag) const;

  /// Total element count of the subtree including this node.
  size_t SubtreeSize() const;

 private:
  std::string tag_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<XmlNodePtr> children_;
};

}  // namespace mctdb::xml
