// XMark-emulated workloads (paper §6: "we generated a query workload for
// each ER diagram, based on emulating the XMark set of queries through
// identifying correspondences between schema elements", plus the XMark
// update workload from the UpdateX project).
//
// The XMark archetypes, mapped to ER-graph shapes:
//   point lookup, child axis step, deep descendant chain, M:N traversal,
//   reverse (context) lookup, tuple/branch pattern, group-by aggregation,
//   distinct projection; updates: point update, bulk update, chain-located
//   update, context-located update.
#include <algorithm>
#include <set>

#include "design/associations.h"
#include "workload/workload.h"

namespace mctdb::workload {

namespace {

using design::AssociationPath;
using query::QueryBuilder;

/// Node-name sequence of a path, excluding the source.
std::vector<std::string> PathNames(const er::ErDiagram& d,
                                   const AssociationPath& p) {
  std::vector<std::string> names;
  for (size_t i = 1; i < p.nodes.size(); ++i) {
    names.push_back(d.node(p.nodes[i]).name);
  }
  return names;
}

/// First non-key string attribute of a node; falls back to the key.
const er::Attribute* PredicateAttr(const er::ErDiagram& d, er::NodeId node) {
  const er::Attribute* key = nullptr;
  for (const er::Attribute& a : d.node(node).attributes) {
    if (a.is_key) {
      key = &a;
    } else if (a.type == er::AttrType::kString) {
      return &a;
    }
  }
  return key;
}

const er::Attribute* UpdatableAttr(const er::ErDiagram& d, er::NodeId node) {
  for (const er::Attribute& a : d.node(node).attributes) {
    if (!a.is_key) return &a;
  }
  return nullptr;
}

}  // namespace

Workload XmarkEmulatedWorkload(const er::ErDiagram& diagram) {
  Workload w(diagram);
  const er::ErDiagram& d = w.diagram;
  w.gen.base_count = 60;
  w.gen.fanout = 3.0;
  w.gen.seed = 1234 + d.num_nodes();

  er::ErGraph graph(d);
  auto eligible = design::EnumerateEligiblePaths(graph);

  int qn = 0, un = 0;
  auto qname = [&] { return "Q" + std::to_string(++qn); };
  auto uname = [&] { return "U" + std::to_string(++un); };

  std::vector<er::NodeId> entities;
  for (const er::ErNode& n : d.nodes()) {
    if (n.is_entity()) entities.push_back(n.id);
  }

  // --- Archetype 1: point lookups (2, schema-indifferent). -----------------
  for (size_t i = 0; i < 2 && i < entities.size(); ++i) {
    QueryBuilder b(qname(), d);
    int r = b.Root(d.node(entities[i]).name);
    b.Where(r, "id", d.node(entities[i]).name + "_1");
    w.queries.push_back(b.Build());
  }

  // --- Archetype 2: single child-axis steps (4). ----------------------------
  {
    size_t made = 0;
    for (const er::ErNode& n : d.nodes()) {
      if (!n.is_relationship() || made >= 4) continue;
      // Navigate from the endpoint that participates in MANY instances (the
      // natural one-to-many child step) through to the other endpoint.
      int side = n.endpoints[0].participation == er::Participation::kMany
                     ? 0
                     : 1;
      er::NodeId from = n.endpoints[side].target;
      er::NodeId to = n.endpoints[1 - side].target;
      QueryBuilder b(qname(), d);
      int r = b.Root(d.node(from).name);
      const er::Attribute* attr = PredicateAttr(d, from);
      if (attr != nullptr) b.Where(r, attr->name, "Japan");
      b.Via(r, {n.name, d.node(to).name});
      w.queries.push_back(b.Build());
      ++made;
    }
  }

  // --- Archetype 3: deep descendant chains (4 longest, distinct sources). --
  {
    std::vector<const AssociationPath*> longest;
    for (const AssociationPath& p : eligible) longest.push_back(&p);
    std::stable_sort(longest.begin(), longest.end(),
                     [](const AssociationPath* a, const AssociationPath* b) {
                       return a->length() > b->length();
                     });
    std::set<er::NodeId> used_sources;
    size_t made = 0;
    for (const AssociationPath* p : longest) {
      if (made >= 4) break;
      if (!used_sources.insert(p->source).second) continue;
      QueryBuilder b(qname(), d);
      int r = b.Root(d.node(p->source).name);
      const er::Attribute* attr = PredicateAttr(d, p->source);
      if (attr != nullptr && !attr->is_key) b.Where(r, attr->name, "Japan");
      b.Via(r, PathNames(d, *p));
      w.queries.push_back(b.Build());
      ++made;
    }
  }

  // --- Archetype 4: M:N traversals (2, distinct). ---------------------------
  {
    size_t made = 0;
    for (const er::ErNode& n : d.nodes()) {
      if (made >= 2 || !n.is_relationship()) continue;
      if (n.endpoints[0].participation != er::Participation::kMany ||
          n.endpoints[1].participation != er::Participation::kMany) {
        continue;
      }
      QueryBuilder b(qname(), d);
      int r = b.Root(d.node(n.endpoints[0].target).name);
      b.Where(r, "id", d.node(n.endpoints[0].target).name + "_2");
      b.Via(r, {n.name, d.node(n.endpoints[1].target).name});
      b.Distinct();
      w.queries.push_back(b.Build());
      ++made;
    }
  }

  // --- Archetype 5: reverse context lookups (2, distinct). ------------------
  // many-side entity -> relationship -> one-side entity (billing-address
  // style).
  {
    size_t made = 0;
    for (const er::ErNode& n : d.nodes()) {
      if (made >= 2 || !n.is_relationship()) continue;
      int many_ep;
      if (n.endpoints[0].participation == er::Participation::kMany &&
          n.endpoints[1].participation == er::Participation::kOne) {
        many_ep = 0;
      } else if (n.endpoints[1].participation == er::Participation::kMany &&
                 n.endpoints[0].participation == er::Participation::kOne) {
        many_ep = 1;
      } else {
        continue;
      }
      // Root at the ONE-participation endpoint (the "many side" of the
      // relationship), look up its shared context.
      er::NodeId from = n.endpoints[1 - many_ep].target;
      er::NodeId to = n.endpoints[many_ep].target;
      QueryBuilder b(qname(), d);
      int r = b.Root(d.node(from).name);
      const er::Attribute* attr = PredicateAttr(d, from);
      if (attr != nullptr && !attr->is_key) b.Where(r, attr->name, "USA");
      b.Via(r, {n.name, d.node(to).name});
      b.Distinct();
      w.queries.push_back(b.Build());
      ++made;
    }
  }

  // --- Archetype 6: tuple / branch patterns (2, Fig 6 style). ---------------
  {
    size_t made = 0;
    for (const er::ErNode& n : d.nodes()) {
      if (made >= 2 || !n.is_entity()) continue;
      // Need two distinct relationships incident on n, traversable outward.
      std::vector<const er::ErEdge*> out;
      for (er::EdgeId eid : graph.incident(n.id)) {
        const er::ErEdge& e = graph.edge(eid);
        if (e.node == n.id) out.push_back(&e);
      }
      if (out.size() < 2) continue;
      QueryBuilder b(qname(), d);
      int r = b.Root(n.name);
      // Filter branch first, output branch second (executor contract).
      int filter = b.Via(r, {d.node(out[0]->rel).name});
      const er::Attribute* fattr = PredicateAttr(d, out[0]->rel);
      if (fattr != nullptr) {
        b.Where(filter, fattr->name, fattr->is_key
                                          ? d.node(out[0]->rel).name + "_1"
                                          : "France");
      }
      int output = b.Via(r, {d.node(out[1]->rel).name});
      b.Output(output);
      w.queries.push_back(b.Build());
      ++made;
    }
  }

  // --- Archetype 7: group-by aggregations (2). ------------------------------
  {
    size_t made = 0;
    for (const AssociationPath& p : eligible) {
      if (made >= 2 || p.length() < 2) continue;
      const er::Attribute* attr = UpdatableAttr(d, p.target);
      if (attr == nullptr) continue;
      QueryBuilder b(qname(), d);
      int r = b.Root(d.node(p.source).name);
      int out = b.Via(r, PathNames(d, p));
      b.GroupBy(out, attr->name);
      w.queries.push_back(b.Build());
      ++made;
    }
  }

  // --- Fill remaining reads with medium chains up to 20. --------------------
  for (const AssociationPath& p : eligible) {
    if (qn >= 20) break;
    if (p.length() != 3) continue;
    QueryBuilder b(qname(), d);
    int r = b.Root(d.node(p.source).name);
    b.Where(r, "id", d.node(p.source).name + "_3");
    b.Via(r, PathNames(d, p));
    w.queries.push_back(b.Build());
  }

  // --- Updates (8): point, bulk, chain-located, reverse-located. ------------
  for (size_t i = 0; i < 2 && i < entities.size(); ++i) {
    const er::Attribute* attr = UpdatableAttr(d, entities[i]);
    if (attr == nullptr) continue;
    QueryBuilder b(uname(), d);
    int r = b.Root(d.node(entities[i]).name);
    b.Where(r, "id", d.node(entities[i]).name + "_1");
    b.Update(attr->name, "updated");
    w.queries.push_back(b.Build());
  }
  {
    size_t made = 0;
    for (const er::ErNode& n : d.nodes()) {
      if (made >= 2 || !n.is_entity()) continue;
      const er::Attribute* pred = PredicateAttr(d, n.id);
      const er::Attribute* upd = UpdatableAttr(d, n.id);
      if (pred == nullptr || upd == nullptr || pred->is_key) continue;
      QueryBuilder b(uname(), d);
      int r = b.Root(n.name);
      b.Where(r, pred->name, "Japan");
      b.Update(upd->name, "bulk");
      w.queries.push_back(b.Build());
      ++made;
    }
  }
  {
    size_t made = 0;
    for (const AssociationPath& p : eligible) {
      if (made >= 2 || p.length() < 3) continue;
      const er::Attribute* upd = UpdatableAttr(d, p.target);
      if (upd == nullptr) continue;
      QueryBuilder b(uname(), d);
      int r = b.Root(d.node(p.source).name);
      b.Where(r, "id", d.node(p.source).name + "_2");
      b.Via(r, PathNames(d, p));
      b.Update(upd->name, "chain");
      w.queries.push_back(b.Build());
      ++made;
    }
  }
  {
    // Reverse-located: update the shared context found via archetype 5.
    size_t made = 0;
    for (const er::ErNode& n : d.nodes()) {
      if (made >= 2 || !n.is_relationship()) continue;
      int many_ep;
      if (n.endpoints[0].participation == er::Participation::kMany &&
          n.endpoints[1].participation == er::Participation::kOne) {
        many_ep = 0;
      } else if (n.endpoints[1].participation == er::Participation::kMany &&
                 n.endpoints[0].participation == er::Participation::kOne) {
        many_ep = 1;
      } else {
        continue;
      }
      er::NodeId from = n.endpoints[1 - many_ep].target;
      er::NodeId to = n.endpoints[many_ep].target;
      const er::Attribute* upd = UpdatableAttr(d, to);
      if (upd == nullptr) continue;
      QueryBuilder b(uname(), d);
      int r = b.Root(d.node(from).name);
      b.Where(r, "id", d.node(from).name + "_4");
      b.Via(r, {n.name, d.node(to).name});
      b.Update(upd->name, "ctx");
      w.queries.push_back(b.Build());
      ++made;
    }
  }

  // Figure metrics: everything except the two point lookups (schema-
  // indifferent, mirroring the TPC-W treatment).
  for (const auto& q : w.queries) {
    if (q.name != "Q1" && q.name != "Q2") w.figure_queries.push_back(q.name);
  }
  return w;
}

}  // namespace mctdb::workload
