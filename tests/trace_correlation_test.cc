// End-to-end trace correlation (DESIGN.md §16): one TraceId minted at
// admission must tag every stage of the request's footprint — the flight
// recorder's admission event, the plan-cache outcome, the executor's stage
// spans, and (for updates) the WAL append and group-commit fsync — so
// `mctc trace --id N` can reconstruct a single request's timeline. Also
// pins the slow-log side of the story: shed/rejected requests land in the
// log outcome-tagged with a non-zero trace id.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/json.h"
#include "design/designer.h"
#include "instance/materialize.h"
#include "obs/flight_recorder.h"
#include "service/query_service.h"
#include "wal/durable_store.h"
#include "workload/runner.h"
#include "workload/update_gen.h"
#include "workload/workload.h"

namespace mctsvc {
namespace {

namespace flight = mctdb::obs::flight;

std::vector<flight::Event> ForTrace(uint64_t id) {
  std::vector<flight::Event> out;
  for (const flight::Event& e : flight::Snapshot()) {
    if (e.trace_id == id) out.push_back(e);
  }
  return out;
}

bool HasSite(const std::vector<flight::Event>& events, flight::Site site) {
  return std::any_of(events.begin(), events.end(),
                     [site](const flight::Event& e) {
                       return e.site == site;
                     });
}

/// One small TPC-W store (EN schema) shared across the correlation tests.
class TraceCorrelationTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    w_ = new mctdb::workload::Workload(mctdb::workload::TpcwWorkload(0.05));
    graph_ = new mctdb::er::ErGraph(w_->diagram);
    mctdb::design::Designer designer(*graph_);
    schema_ = new mctdb::mct::MctSchema(
        designer.Design(mctdb::design::Strategy::kEn));
    logical_ = new mctdb::instance::LogicalInstance(
        mctdb::instance::GenerateInstance(*graph_, w_->gen));
  }
  static void TearDownTestSuite() {
    delete logical_;
    delete schema_;
    delete graph_;
    delete w_;
  }

  void SetUp() override {
    flight::Enable();
    flight::ResetForTest();
  }

  static mctdb::workload::Workload* w_;
  static mctdb::er::ErGraph* graph_;
  static mctdb::mct::MctSchema* schema_;
  static mctdb::instance::LogicalInstance* logical_;
};

mctdb::workload::Workload* TraceCorrelationTest::w_ = nullptr;
mctdb::er::ErGraph* TraceCorrelationTest::graph_ = nullptr;
mctdb::mct::MctSchema* TraceCorrelationTest::schema_ = nullptr;
mctdb::instance::LogicalInstance* TraceCorrelationTest::logical_ = nullptr;

TEST_F(TraceCorrelationTest, QueryTraceSpansAdmissionPlanCacheAndExecutor) {
  auto durable = mctdb::wal::DurableStore::Ephemeral(
      mctdb::instance::Materialize(*logical_, *schema_));
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();
  QueryService service;
  ASSERT_TRUE(service.AddDurableStore("tpcw", durable->get()).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok());

  const mctdb::query::AssociationQuery* q = w_->Find("Q1");
  ASSERT_NE(q, nullptr);
  auto f1 = (*session)->SubmitQuery(*q);
  ASSERT_TRUE(f1.ok());
  auto r1 = f1->get();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  const uint64_t t1 = r1->trace.trace_id;
  ASSERT_NE(t1, 0u) << "admission must mint a trace id";

  std::vector<flight::Event> e1 = ForTrace(t1);
  EXPECT_TRUE(HasSite(e1, flight::Site::kAdmit)) << "admission event";
  EXPECT_TRUE(HasSite(e1, flight::Site::kPlanCacheMiss))
      << "first submit plans fresh";
  EXPECT_TRUE(HasSite(e1, flight::Site::kSpanBegin)) << "executor stages";
  EXPECT_TRUE(HasSite(e1, flight::Site::kSpanEnd));

  // The identical query again: a DIFFERENT trace id whose footprint shows
  // the cache hit instead of a miss.
  auto f2 = (*session)->SubmitQuery(*q);
  ASSERT_TRUE(f2.ok());
  auto r2 = f2->get();
  ASSERT_TRUE(r2.ok());
  const uint64_t t2 = r2->trace.trace_id;
  ASSERT_NE(t2, 0u);
  EXPECT_NE(t2, t1) << "each request gets its own trace";
  std::vector<flight::Event> e2 = ForTrace(t2);
  EXPECT_TRUE(HasSite(e2, flight::Site::kAdmit));
  EXPECT_TRUE(HasSite(e2, flight::Site::kPlanCacheHit));
  EXPECT_FALSE(HasSite(e2, flight::Site::kPlanCacheMiss));
}

TEST_F(TraceCorrelationTest, UpdateTraceCoversWalAppendAndFsync) {
  auto durable = mctdb::wal::DurableStore::Ephemeral(
      mctdb::instance::Materialize(*logical_, *schema_));
  ASSERT_TRUE(durable.ok());
  QueryService service;
  ASSERT_TRUE(service.AddDurableStore("tpcw", durable->get()).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok());

  std::vector<mctdb::mct::MctSchema> schemas{*schema_};
  auto ops = mctdb::workload::GenerateUpdateOps(schemas, *logical_, {});
  ASSERT_FALSE(ops.empty());
  auto uf = (*session)->SubmitUpdate(ops[0]);
  ASSERT_TRUE(uf.ok()) << uf.status().ToString();
  auto ur = uf->get();
  ASSERT_TRUE(ur.ok()) << ur.status().ToString();
  const uint64_t trace = ur->trace.trace_id;
  ASSERT_NE(trace, 0u);

  std::vector<flight::Event> events = ForTrace(trace);
  EXPECT_TRUE(HasSite(events, flight::Site::kAdmit));
  ASSERT_TRUE(HasSite(events, flight::Site::kWalAppend));
  ASSERT_TRUE(HasSite(events, flight::Site::kWalFsync));
  uint64_t append_lsn = 0, fsync_lsn = 0;
  for (const flight::Event& e : events) {
    if (e.site == flight::Site::kWalAppend) append_lsn = e.arg;
    if (e.site == flight::Site::kWalFsync) fsync_lsn = e.arg;
  }
  EXPECT_EQ(append_lsn, ur->lsn) << "append event carries the assigned LSN";
  EXPECT_GE(fsync_lsn, append_lsn)
      << "the fsync batch covers at least our record";
}

TEST_F(TraceCorrelationTest, ShedRequestsLandInSlowLogWithOutcome) {
  auto durable = mctdb::wal::DurableStore::Ephemeral(
      mctdb::instance::Materialize(*logical_, *schema_));
  ASSERT_TRUE(durable.ok());
  ServiceOptions options;
  options.num_threads = 1;
  options.max_queued = 2;
  options.start_paused = true;  // park workers: staging is deterministic
  // The slow log must be ON for rejection records (threshold is irrelevant
  // to them — admission verdicts bypass it).
  options.slow_query_seconds = 1000.0;
  QueryService service(options);
  ASSERT_TRUE(service.AddDurableStore("tpcw", durable->get()).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok());

  const mctdb::query::AssociationQuery* q = w_->Find("Q1");
  ASSERT_NE(q, nullptr);
  // Fill the queue above the kNormal shed watermark with kHigh requests
  // (which bypass shedding), then watch a kNormal submit get shed.
  auto f1 = (*session)->SubmitQuery(*q, 0.0, Priority::kHigh);
  ASSERT_TRUE(f1.ok());
  auto f2 = (*session)->SubmitQuery(*q, 0.0, Priority::kHigh);
  ASSERT_TRUE(f2.ok());
  auto shed = (*session)->SubmitQuery(*q, 0.0, Priority::kNormal);
  EXPECT_FALSE(shed.ok());

  std::vector<QueryService::SlowQueryRecord> log = service.SlowQueries();
  ASSERT_FALSE(log.empty()) << "the turned-away request must be logged";
  const QueryService::SlowQueryRecord& rec = log.back();
  EXPECT_TRUE(rec.outcome == "shed" || rec.outcome == "rejected")
      << rec.outcome;
  EXPECT_NE(rec.trace_id, 0u);
  EXPECT_EQ(rec.store, "tpcw");
  // The flight recorder saw the same verdict under the same trace.
  std::vector<flight::Event> events = ForTrace(rec.trace_id);
  EXPECT_TRUE(HasSite(events, flight::Site::kShed) ||
              HasSite(events, flight::Site::kReject));
  // And the JSON export carries the new fields.
  const std::string json = service.SlowQueriesJson();
  EXPECT_NE(json.find("\"outcome\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace_id\":"), std::string::npos) << json;
  auto parsed = mctdb::json::Parse(json);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();

  service.Resume();
  service.Drain();
}

TEST_F(TraceCorrelationTest, StatuszAndFlightzAreWellFormedJson) {
  auto durable = mctdb::wal::DurableStore::Ephemeral(
      mctdb::instance::Materialize(*logical_, *schema_));
  ASSERT_TRUE(durable.ok());
  QueryService service;
  ASSERT_TRUE(service.AddDurableStore("tpcw", durable->get()).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok());
  const mctdb::query::AssociationQuery* q = w_->Find("Q1");
  auto f = (*session)->SubmitQuery(*q);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->get().ok());
  service.Drain();

  const std::string statusz = service.StatuszJson();
  auto parsed = mctdb::json::Parse(statusz);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << statusz;
  for (const char* key :
       {"\"uptime_seconds\"", "\"queue_depth\"", "\"running\"",
        "\"queue_wait\"", "\"lock_wait\"", "\"stores\"", "\"plan_cache\"",
        "\"wal\"", "\"pool\""}) {
    EXPECT_NE(statusz.find(key), std::string::npos)
        << key << " missing from:\n" << statusz;
  }

  const std::string flightz = service.FlightzJson();
  auto fparsed = mctdb::json::Parse(flightz);
  ASSERT_TRUE(fparsed.ok()) << fparsed.status().ToString();
  EXPECT_NE(flightz.find("\"events\""), std::string::npos);
  // The query just executed, so the live snapshot is not empty.
  EXPECT_NE(flightz.find("\"site\":\"admit\""), std::string::npos);
}

}  // namespace
}  // namespace mctsvc
