// Stack-tree structural join [Al-Khalifa et al., ICDE'02]: given two lists
// of interval labels in document order (potential ancestors and potential
// descendants in ONE color), emit the containment pairs in one merge pass.
// This is the primitive whose cheapness relative to value joins the whole
// paper leans on.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/posting.h"

namespace mctdb::query {

struct StructuralJoinResult {
  /// Descendant entries matched by at least one ancestor.
  std::vector<storage::LabelEntry> descendants;
  /// Ancestor entries with at least one match (semi-join side, used to
  /// reduce the parent binding when a filter branch runs).
  std::vector<storage::LabelEntry> ancestors;
  uint64_t pairs = 0;  ///< total containment pairs seen
};

struct StructuralJoinOptions {
  /// Require desc.level == anc.level + 1 (a parent-child axis step instead
  /// of ancestor-descendant).
  bool parent_child_only = false;
};

/// Both inputs MUST be sorted by `start` and labeled in the same color.
/// Runs in O(|ancestors| + |descendants|) with a stack bounded by tree
/// depth.
StructuralJoinResult StackTreeJoin(
    const std::vector<storage::LabelEntry>& ancestors,
    const std::vector<storage::LabelEntry>& descendants,
    const StructuralJoinOptions& options = {});

/// Block-at-a-time variant: consumes both inputs through cache-resident
/// storage::LabelBlock columns (start/end/level decoded a page's worth at
/// a time) so the merge loop runs over flat arrays instead of striding
/// 20-byte records. Byte-identical to StackTreeJoin — same outputs, same
/// order, same pair count — by construction; the equivalence suite pins
/// this across the query grid.
StructuralJoinResult StackTreeJoinBlocked(
    const std::vector<storage::LabelEntry>& ancestors,
    const std::vector<storage::LabelEntry>& descendants,
    const StructuralJoinOptions& options = {});

}  // namespace mctdb::query
