// BoundedQueue: a mutex-based multi-producer multi-consumer FIFO with an
// optional capacity bound, close semantics (drain-then-stop), and a pause
// switch that parks consumers without refusing producers. The building
// block under ThreadPool and the mctsvc admission path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mctdb {

template <typename T>
class BoundedQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit BoundedQueue(size_t capacity = 0)
      : capacity_(capacity == 0 ? SIZE_MAX : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push; false when the queue is full or closed.
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    pop_cv_.notify_one();
    return true;
  }

  /// Blocking push; waits for space, returns false once closed.
  bool Push(T value) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      push_cv_.wait(lock,
                    [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    pop_cv_.notify_one();
    return true;
  }

  /// Blocking pop. Returns nullopt only after Close() once the backlog is
  /// drained; while paused, consumers wait even if items are queued.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    pop_cv_.wait(lock,
                 [&] { return closed_ || (!paused_ && !items_.empty()); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    push_cv_.notify_one();
    return value;
  }

  /// Parks consumers (producers unaffected). No-op after Close().
  void Pause() {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = true;
  }

  void Resume() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      paused_ = false;
    }
    pop_cv_.notify_all();
  }

  /// Stops producers immediately; consumers drain the backlog (a paused
  /// queue is implicitly resumed so the drain can happen).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      paused_ = false;
    }
    pop_cv_.notify_all();
    push_cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable pop_cv_;
  std::condition_variable push_cv_;
  std::deque<T> items_;
  bool closed_ = false;
  bool paused_ = false;
};

}  // namespace mctdb
