file(REMOVE_RECURSE
  "CMakeFiles/schema_export_test.dir/schema_export_test.cc.o"
  "CMakeFiles/schema_export_test.dir/schema_export_test.cc.o.d"
  "schema_export_test"
  "schema_export_test.pdb"
  "schema_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
