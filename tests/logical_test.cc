#include "instance/logical.h"

#include <gtest/gtest.h>

#include "er/er_catalog.h"

namespace mctdb::instance {
namespace {

TEST(LogicalTest, CountsRespectExplicitOverrides) {
  er::ErDiagram d = er::Tpcw();
  er::ErGraph g(d);
  GenOptions opts;
  opts.explicit_counts = {{"country", 7}, {"customer", 100}};
  LogicalInstance inst = GenerateInstance(g, opts);
  EXPECT_EQ(inst.count(*d.FindNode("country")), 7u);
  EXPECT_EQ(inst.count(*d.FindNode("customer")), 100u);
}

TEST(LogicalTest, FanoutScalesManySides) {
  er::ErDiagram d("t");
  auto a = d.AddEntity("a");
  auto b = d.AddEntity("b");
  ASSERT_TRUE(d.AddOneToMany("r", a, b).ok());
  er::ErGraph g(d);
  GenOptions opts;
  opts.base_count = 10;
  opts.fanout = 4.0;
  LogicalInstance inst = GenerateInstance(g, opts);
  EXPECT_EQ(inst.count(a), 10u);
  EXPECT_EQ(inst.count(b), 40u);
}

TEST(LogicalTest, OneToManyCardinalityHolds) {
  // Every many-side instance participates in at most one relationship
  // instance; total participation means exactly one.
  er::ErDiagram d("t");
  auto a = d.AddEntity("a");
  auto b = d.AddEntity("b");
  auto r = d.AddOneToMany("r", a, b, er::Totality::kTotal);
  ASSERT_TRUE(r.ok());
  er::ErGraph g(d);
  LogicalInstance inst = GenerateInstance(g, {});
  EXPECT_EQ(inst.count(*r), inst.count(b)) << "total: one per b";
  std::vector<int> b_count(inst.count(b), 0);
  for (uint32_t i = 0; i < inst.count(*r); ++i) {
    ++b_count[inst.EndpointOf(*r, 1, i)];
  }
  for (int c : b_count) EXPECT_EQ(c, 1);
}

TEST(LogicalTest, PartialParticipationLeavesSomeOut) {
  er::ErDiagram d("t");
  auto a = d.AddEntity("a");
  auto b = d.AddEntity("b");
  auto r = d.AddOneToMany("r", a, b);  // partial
  ASSERT_TRUE(r.ok());
  er::ErGraph g(d);
  GenOptions opts;
  opts.base_count = 200;
  opts.partial_participation = 0.5;
  LogicalInstance inst = GenerateInstance(g, opts);
  EXPECT_LT(inst.count(*r), inst.count(b));
  EXPECT_GT(inst.count(*r), 0u);
}

TEST(LogicalTest, OneOnePairsAreBijective) {
  er::ErDiagram d("t");
  auto a = d.AddEntity("a");
  auto b = d.AddEntity("b");
  auto r = d.AddOneToOne("r", a, b);
  ASSERT_TRUE(r.ok());
  er::ErGraph g(d);
  GenOptions opts;
  opts.partial_participation = 1.0;
  LogicalInstance inst = GenerateInstance(g, opts);
  std::set<uint32_t> as, bs;
  for (uint32_t i = 0; i < inst.count(*r); ++i) {
    EXPECT_TRUE(as.insert(inst.EndpointOf(*r, 0, i)).second);
    EXPECT_TRUE(bs.insert(inst.EndpointOf(*r, 1, i)).second);
  }
}

TEST(LogicalTest, AdjacencyConsistentWithPairs) {
  er::ErDiagram d = er::Tpcw();
  er::ErGraph g(d);
  LogicalInstance inst = GenerateInstance(g, {});
  for (const er::ErEdge& e : g.edges()) {
    for (uint32_t x = 0; x < inst.count(e.node); ++x) {
      for (uint32_t rel_inst : inst.RelsOf(e.id, x)) {
        EXPECT_EQ(inst.EndpointOf(e.rel, e.endpoint_index, rel_inst), x);
      }
    }
  }
}

TEST(LogicalTest, HigherOrderEndpointsInRange) {
  er::ErDiagram d = er::Er4Hospital();  // has lab->prescribes higher-order
  er::ErGraph g(d);
  LogicalInstance inst = GenerateInstance(g, {});
  er::NodeId verifies = *d.FindNode("verifies");
  er::NodeId prescribes = *d.FindNode("prescribes");
  const auto& vnode = d.node(verifies);
  ASSERT_EQ(vnode.endpoints[1].target, prescribes);
  for (uint32_t i = 0; i < inst.count(verifies); ++i) {
    EXPECT_LT(inst.EndpointOf(verifies, 1, i), inst.count(prescribes));
  }
}

TEST(LogicalTest, AttrValuesDeterministic) {
  er::ErDiagram d = er::Tpcw();
  er::ErGraph g(d);
  LogicalInstance i1 = GenerateInstance(g, {});
  LogicalInstance i2 = GenerateInstance(g, {});
  er::NodeId country = *d.FindNode("country");
  EXPECT_EQ(i1.AttrValue(country, 3, 1), i2.AttrValue(country, 3, 1));
  EXPECT_EQ(i1.KeyValue(country, 3), "country_3");
  // Key attribute (index 0) returns the key value.
  EXPECT_EQ(i1.AttrValue(country, 3, 0), "country_3");
}

TEST(LogicalTest, SeedChangesInstance) {
  er::ErDiagram d = er::Tpcw();
  er::ErGraph g(d);
  GenOptions o1, o2;
  o2.seed = 777;
  LogicalInstance i1 = GenerateInstance(g, o1);
  LogicalInstance i2 = GenerateInstance(g, o2);
  er::NodeId make = *d.FindNode("make");
  ASSERT_GT(i1.count(make), 0u);
  bool any_diff = i1.count(make) != i2.count(make);
  for (uint32_t i = 0; !any_diff && i < std::min(i1.count(make), i2.count(make));
       ++i) {
    any_diff = i1.EndpointOf(make, 0, i) != i2.EndpointOf(make, 0, i);
  }
  EXPECT_TRUE(any_diff);
}

TEST(LogicalTest, TotalInstancesSumsCounts) {
  er::ErDiagram d = er::Er7Chain();
  er::ErGraph g(d);
  LogicalInstance inst = GenerateInstance(g, {});
  size_t sum = 0;
  for (er::NodeId n = 0; n < d.num_nodes(); ++n) sum += inst.count(n);
  EXPECT_EQ(inst.TotalInstances(), sum);
}

}  // namespace
}  // namespace mctdb::instance
