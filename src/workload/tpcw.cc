#include <cmath>

#include "er/er_catalog.h"
#include "workload/workload.h"

namespace mctdb::workload {

using query::QueryBuilder;

Workload TpcwWorkload(double scale) {
  Workload w(er::Tpcw());
  const er::ErDiagram& d = w.diagram;

  auto scaled = [&](double base) {
    return static_cast<size_t>(std::max(4.0, base * scale));
  };
  w.gen.seed = 4242;
  w.gen.zipf_theta = 0.4;
  w.gen.explicit_counts = {
      {"country", 30},
      {"address", scaled(1500)},
      {"customer", scaled(1000)},
      {"order", scaled(1400)},
      {"order_line", scaled(4200)},
      {"item", scaled(1000)},
      {"author", scaled(250)},
      {"credit_card_transaction", scaled(1400)},
  };

  // Q1: orders placed by customers having addresses in Japan —
  // /country[@name='Japan']//order through the customer chain (§1).
  {
    QueryBuilder b("Q1", d);
    int country = b.Root("country");
    b.Where(country, "name", "Japan");
    b.Via(country, {"in", "address", "has", "customer", "make", "order"});
    w.queries.push_back(b.Build());
  }
  // Q2: orders with billing addresses in Japan (§1).
  {
    QueryBuilder b("Q2", d);
    int country = b.Root("country");
    b.Where(country, "name", "Japan");
    b.Via(country, {"in", "address", "billing", "order"});
    w.queries.push_back(b.Build());
  }
  // Q3-Q5, Q13: schema-indifferent single-type lookups (the paper's "4 of
  // these 16 queries were indifferent to choice of schema").
  {
    QueryBuilder b("Q3", d);
    int c = b.Root("customer");
    b.Where(c, "id", "customer_7");
    w.queries.push_back(b.Build());
  }
  {
    QueryBuilder b("Q4", d);
    int i = b.Root("item");
    b.Where(i, "subject", "Korea");
    w.queries.push_back(b.Build());
  }
  {
    QueryBuilder b("Q5", d);
    int a = b.Root("author");
    b.Where(a, "lname", "Chile");
    w.queries.push_back(b.Build());
  }
  // Q6: distinct items ordered by one customer (M:N composite; DEEP
  // answers it with duplicates — the 315(9825) row).
  {
    QueryBuilder b("Q6", d);
    int c = b.Root("customer");
    b.Where(c, "id", "customer_5");
    b.Via(c, {"make", "order", "contain", "order_line", "occur_in", "item"});
    b.Distinct();
    w.queries.push_back(b.Build());
  }
  // Q7: order lines of orders made by customers with a given uname.
  {
    QueryBuilder b("Q7", d);
    int c = b.Root("customer");
    b.Where(c, "uname", "India");
    b.Via(c, {"make", "order", "contain", "order_line"});
    w.queries.push_back(b.Build());
  }
  // Q8: credit-card transactions of orders billed to addresses in a city
  // (two chained associations through billing).
  {
    QueryBuilder b("Q8", d);
    int a = b.Root("address");
    b.Where(a, "city", "Kenya");
    int o = b.Via(a, {"billing", "order"});
    b.Via(o, {"associate", "credit_card_transaction"});
    w.queries.push_back(b.Build());
  }
  // Q9: distinct authors of the items in one order (upward M:N context).
  {
    QueryBuilder b("Q9", d);
    int o = b.Root("order");
    b.Where(o, "id", "order_7");
    b.Via(o, {"contain", "order_line", "occur_in", "item", "write",
              "author"});
    b.Distinct();
    w.queries.push_back(b.Build());
  }
  // Q10: the credit-card transaction of a customer's orders (1:1 hop).
  {
    QueryBuilder b("Q10", d);
    int c = b.Root("customer");
    b.Where(c, "id", "customer_11");
    b.Via(c, {"make", "order", "associate", "credit_card_transaction"});
    w.queries.push_back(b.Build());
  }
  // Q11: orders from Japan grouped by status.
  {
    QueryBuilder b("Q11", d);
    int country = b.Root("country");
    b.Where(country, "name", "Japan");
    int o = b.Via(country,
                  {"in", "address", "has", "customer", "make", "order"});
    b.GroupBy(o, "status");
    w.queries.push_back(b.Build());
  }
  // Q12: the deepest chain, country down to order lines.
  {
    QueryBuilder b("Q12", d);
    int country = b.Root("country");
    b.Where(country, "name", "Japan");
    b.Via(country, {"in", "address", "has", "customer", "make", "order",
                    "contain", "order_line"});
    w.queries.push_back(b.Build());
  }
  // Q13: indifferent transaction scan.
  {
    QueryBuilder b("Q13", d);
    int t = b.Root("credit_card_transaction");
    b.Where(t, "cc_type", "Spain");
    w.queries.push_back(b.Build());
  }
  // U1: bulk price update of one subject's items (DEEP rewrites every copy
  // nested under order lines).
  {
    QueryBuilder b("U1", d);
    int i = b.Root("item");
    b.Where(i, "subject", "Japan");
    b.Update("cost", "999");
    w.queries.push_back(b.Build());
  }
  // U2: mark one customer's orders shipped.
  {
    QueryBuilder b("U2", d);
    int c = b.Root("customer");
    b.Where(c, "id", "customer_3");
    b.Via(c, {"make", "order"});
    b.Update("status", "shipped");
    w.queries.push_back(b.Build());
  }
  // U3: single-element update located through an association — fix the zip
  // of the billing address of one order.
  {
    QueryBuilder b("U3", d);
    int o = b.Root("order");
    b.Where(o, "id", "order_17");
    b.Via(o, {"billing", "address"});
    b.Update("zip", "00000");
    w.queries.push_back(b.Build());
  }

  w.figure_queries = {"Q1", "Q2", "Q6", "Q7", "Q8", "Q9",
                      "Q10", "Q11", "Q12", "U1", "U2", "U3"};
  return w;
}

}  // namespace mctdb::workload
