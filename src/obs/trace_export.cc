#include "obs/trace_export.h"

#include <cstdio>

namespace mctdb::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void AppendText(const Span& span, size_t depth, std::string* out) {
  std::string head(depth * 2, ' ');
  head += ToString(span.kind);
  if (!span.label.empty()) {
    head += ' ';
    head += span.label;
  }
  if (head.size() < 36) head.resize(36, ' ');
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                " %9.3fms  in=%llu out=%llu pairs=%llu pages %lluh/%llum\n",
                span.elapsed_seconds * 1e3,
                static_cast<unsigned long long>(span.cardinality_in),
                static_cast<unsigned long long>(span.cardinality_out),
                static_cast<unsigned long long>(span.join_pairs),
                static_cast<unsigned long long>(span.page_hits),
                static_cast<unsigned long long>(span.page_misses));
  *out += head;
  *out += buf;
  for (const Span& c : span.children) AppendText(c, depth + 1, out);
}

void AppendJson(const Span& span, std::string* out) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"stage\":\"%s\",\"label\":\"", ToString(span.kind));
  *out += buf;
  *out += JsonEscape(span.label);
  *out += '"';
  if (span.trace_id != 0) {
    std::snprintf(buf, sizeof(buf), ",\"trace_id\":%llu",
                  static_cast<unsigned long long>(span.trace_id));
    *out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                ",\"elapsed_seconds\":%.9f,\"cardinality_in\":%llu,"
                "\"cardinality_out\":%llu,\"join_pairs\":%llu,"
                "\"page_hits\":%llu,\"page_misses\":%llu,\"children\":[",
                span.elapsed_seconds,
                static_cast<unsigned long long>(span.cardinality_in),
                static_cast<unsigned long long>(span.cardinality_out),
                static_cast<unsigned long long>(span.join_pairs),
                static_cast<unsigned long long>(span.page_hits),
                static_cast<unsigned long long>(span.page_misses));
  *out += buf;
  bool first = true;
  for (const Span& c : span.children) {
    if (!first) *out += ',';
    first = false;
    AppendJson(c, out);
  }
  *out += "]}";
}

}  // namespace

std::string SpanTreeToText(const Span& root) {
  std::string out;
  AppendText(root, 0, &out);
  return out;
}

std::string SpanToJson(const Span& root) {
  std::string out;
  AppendJson(root, &out);
  return out;
}

}  // namespace mctdb::obs
