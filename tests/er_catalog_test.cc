#include "er/er_catalog.h"

#include <gtest/gtest.h>

#include "er/er_graph.h"
#include "er/er_random.h"

namespace mctdb::er {
namespace {

TEST(ErCatalogTest, AllDiagramsValidate) {
  for (const ErDiagram& d : EvaluationCollection()) {
    EXPECT_TRUE(d.Validate().ok()) << d.name();
  }
  EXPECT_TRUE(ToyMcNotDr().Validate().ok());
  EXPECT_TRUE(ToyMcmrInsufficient().Validate().ok());
}

TEST(ErCatalogTest, CollectionHasTwelveDiagramsInFigureOrder) {
  auto collection = EvaluationCollection();
  ASSERT_EQ(collection.size(), 12u);
  EXPECT_EQ(collection[0].name(), "ER1");
  EXPECT_EQ(collection[9].name(), "ER10");
  EXPECT_EQ(collection[10].name(), "Derby");
  EXPECT_EQ(collection[11].name(), "TPC-W");
}

TEST(ErCatalogTest, SizesInPaperRange) {
  // "ranging in size from 10-30 (entity and relationship type) nodes".
  for (const ErDiagram& d : EvaluationCollection()) {
    EXPECT_GE(d.num_nodes(), 10u) << d.name();
    EXPECT_LE(d.num_nodes(), 30u) << d.name();
  }
}

TEST(ErCatalogTest, TpcwNamesMatchFigure1) {
  ErDiagram d = Tpcw();
  for (const char* name :
       {"country", "address", "customer", "order", "order_line", "item",
        "author", "credit_card_transaction", "in", "has", "make", "occur_in",
        "write", "billing", "shipping", "associate"}) {
    EXPECT_TRUE(d.FindNode(name).has_value()) << name;
  }
}

TEST(ErCatalogTest, TpcwOrderIsOnManySideThrice) {
  // The §5.1 obstruction: order is on the many side of make, billing and
  // shipping, so single-color NN+AR must fail.
  ErDiagram d = Tpcw();
  ErGraph g(d);
  NodeId order = *d.FindNode("order");
  int one_participations = 0;
  for (EdgeId eid : g.incident(order)) {
    const ErEdge& e = g.edge(eid);
    if (e.node == order && e.participation == Participation::kOne) {
      ++one_participations;
    }
  }
  EXPECT_EQ(one_participations, 4);  // make, billing, shipping, associate
}

TEST(ErCatalogTest, ToyMcNotDrShape) {
  ErDiagram d = ToyMcNotDr();
  EXPECT_EQ(d.num_nodes(), 7u);  // A, B, C, D + r1, r2, r3
  ErGraph g(d);
  // B is on the many side of both r1 and r3.
  EXPECT_EQ(g.Stats().num_multi_many_side_nodes, 1u);
}

TEST(ErCatalogTest, ToyMcmrInsufficientHasOneOne) {
  ErDiagram d = ToyMcmrInsufficient();
  ErGraph g(d);
  EXPECT_EQ(g.Stats().num_one_one, 1u);
  EXPECT_EQ(g.Stats().num_one_many, 2u);
}

TEST(ErCatalogTest, Er8IsManyManyHeavy) {
  ErDiagram d8 = Er8Bipartite();
  ErGraph g(d8);
  EXPECT_GE(g.Stats().num_many_many, 4u);
}

TEST(ErCatalogTest, Er7ChainIsForest) {
  ErDiagram d = Er7Chain();
  ErGraph g(d);
  EXPECT_TRUE(g.IsForest());
  EXPECT_EQ(g.Stats().num_many_many, 0u);
  EXPECT_EQ(g.Stats().num_multi_many_side_nodes, 0u);
}

TEST(ErRandomTest, GeneratedDiagramsValidate) {
  Rng rng(42);
  for (int i = 0; i < 50; ++i) {
    RandomErOptions opts;
    opts.num_entities = 3 + rng.Uniform(10);
    opts.num_relationships = 2 + rng.Uniform(12);
    opts.p_higher_order = (i % 3 == 0) ? 0.2 : 0.0;
    ErDiagram d = GenerateRandomEr(&rng, opts);
    EXPECT_TRUE(d.Validate().ok());
    EXPECT_EQ(d.num_entities(), opts.num_entities);
    ErGraph g(d);  // graph construction must not trip any checks
    EXPECT_EQ(g.num_edges(), d.num_relationships() * 2);
  }
}

TEST(ErRandomTest, DeterministicForSeed) {
  Rng r1(7), r2(7);
  RandomErOptions opts;
  ErDiagram a = GenerateRandomEr(&r1, opts);
  ErDiagram b = GenerateRandomEr(&r2, opts);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (NodeId i = 0; i < a.num_nodes(); ++i) {
    EXPECT_EQ(a.node(i).kind, b.node(i).kind);
    if (a.node(i).is_relationship()) {
      EXPECT_EQ(a.node(i).endpoints[0].target, b.node(i).endpoints[0].target);
      EXPECT_EQ(a.node(i).endpoints[1].target, b.node(i).endpoints[1].target);
    }
  }
}

}  // namespace
}  // namespace mctdb::er
