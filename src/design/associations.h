// Associations and eligibility (paper §3.1).
//
// An *association* is a connected subgraph of the transitive closure of the
// ER graph, with edge labels capturing the ER paths traversed. For
// recoverability analysis the unit is a single labeled closure edge: an
// ordered pair (source, target) together with its *witness path* in the ER
// graph.
//
// An association is *eligible* for direct recoverability iff it is binary
// and its composed cardinality is 1:1 or 1:N — equivalently, iff every step
// of the witness path is traversable (endpoint->rel always; rel->endpoint
// only under ONE participation). Any non-traversable step makes the
// composition M:N, which cannot be directly recovered without node
// redundancy (§3.1, condition 2).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "er/er_graph.h"

namespace mctdb::design {

/// One eligible association: a simple traversable path source -> target.
struct AssociationPath {
  er::NodeId source = er::kInvalidNode;
  er::NodeId target = er::kInvalidNode;
  /// Path nodes, source first, target last (size == edges.size() + 1).
  std::vector<er::NodeId> nodes;
  /// ER edges along the path, in traversal order.
  std::vector<er::EdgeId> edges;

  size_t length() const { return edges.size(); }

  /// "has.address.in"-style label (Fig 6): the intermediate node names
  /// joined by '.'.
  std::string Label(const er::ErDiagram& diagram) const;
};

struct EnumerateOptions {
  /// Maximum path length in edges. ER-graph nodes alternate entity /
  /// relationship, so 2 ER edges ~ one conceptual hop.
  size_t max_length = 16;
  /// Hard cap on the number of paths returned (dense random graphs can have
  /// exponentially many simple paths). When hit, `truncated` is set.
  size_t max_paths = 200000;
};

/// All eligible associations: simple traversable paths of length >= 1
/// between distinct nodes. Deterministic order (DFS by node/edge id).
std::vector<AssociationPath> EnumerateEligiblePaths(
    const er::ErGraph& graph, const EnumerateOptions& options = {},
    bool* truncated = nullptr);

/// The eligible *pair* relation (the closure of single steps): pairs (x, y)
/// such that some eligible path runs x -> y. Cheaper than enumerating paths.
std::vector<std::pair<er::NodeId, er::NodeId>> EligiblePairs(
    const er::ErGraph& graph);

}  // namespace mctdb::design
