#include "workload/runner.h"

#include <algorithm>

#include "query/planner.h"

namespace mctdb::workload {

const Measurement* RunSummary::Find(const std::string& schema,
                                    const std::string& query) const {
  for (const Measurement& m : measurements) {
    if (m.schema == schema && m.query == query) return &m;
  }
  return nullptr;
}

Result<RunSummary> RunWorkload(const Workload& workload,
                               const RunnerOptions& options) {
  RunSummary summary;
  er::ErGraph graph(workload.diagram);
  design::Designer designer(graph);
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, workload.gen);

  std::vector<mct::MctSchema> schemas;
  std::vector<std::unique_ptr<storage::MctStore>> stores;
  for (design::Strategy s : options.strategies) {
    schemas.push_back(designer.Design(s));
  }
  for (mct::MctSchema& schema : schemas) {
    instance::MaterializeOptions mat;
    mat.store = options.store;
    stores.push_back(instance::Materialize(logical, schema, mat));
    summary.storage.emplace_back(schema.name(), stores.back()->Stats());
  }

  // Reference results per read query, for the equivalence check.
  std::map<std::string, std::vector<uint32_t>> reference;

  for (size_t i = 0; i < schemas.size(); ++i) {
    for (const std::string& name : workload.figure_queries) {
      const query::AssociationQuery* q = workload.Find(name);
      if (q == nullptr) {
        summary.problems.push_back("unknown figure query " + name);
        continue;
      }
      auto plan = query::PlanQuery(*q, schemas[i]);
      if (!plan.ok()) {
        summary.problems.push_back(name + " on " + schemas[i].name() +
                                   ": " + plan.status().ToString());
        continue;
      }
      query::Executor exec(stores[i].get());
      std::vector<double> times;
      query::ExecResult last;
      bool failed = false;
      for (size_t rep = 0; rep < std::max<size_t>(1, options.repetitions);
           ++rep) {
        auto result = exec.Execute(*plan);
        if (!result.ok()) {
          summary.problems.push_back(name + " on " + schemas[i].name() +
                                     ": " + result.status().ToString());
          failed = true;
          break;
        }
        times.push_back(result->elapsed_seconds);
        last = *result;
      }
      if (failed) continue;
      std::sort(times.begin(), times.end());

      Measurement m;
      m.schema = schemas[i].name();
      m.query = name;
      m.plan = plan->Stats();
      m.seconds = times[times.size() / 2];
      m.unique_results =
          q->is_update() ? last.logicals_updated : last.unique_count;
      m.raw_results = q->is_update() ? last.elements_updated : last.raw_count;
      m.elements_updated = last.elements_updated;
      m.page_misses = last.page_misses;
      summary.measurements.push_back(m);

      if (options.check_equivalence && !q->is_update()) {
        auto [it, inserted] = reference.emplace(name, last.logicals);
        if (!inserted && it->second != last.logicals) {
          summary.problems.push_back("equivalence violation: " + name +
                                     " on " + schemas[i].name());
        }
      }
    }
  }
  return summary;
}

}  // namespace mctdb::workload
