file(REMOVE_RECURSE
  "CMakeFiles/xml_mining_test.dir/xml_mining_test.cc.o"
  "CMakeFiles/xml_mining_test.dir/xml_mining_test.cc.o.d"
  "xml_mining_test"
  "xml_mining_test.pdb"
  "xml_mining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_mining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
