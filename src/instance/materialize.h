// Materializer: places ONE logical instance into the colored forests of an
// MCT schema and loads the result into an MctStore.
//
// Identity rule (how Table 1's counts arise): a logical node's FIRST
// placement in each color binds to its shared stored element (MCT stores a
// multi-colored node once, Fig 5 caption); any further placement within the
// same color is a redundant *copy* element with duplicated attribute and
// content records — exactly the storage penalty DEEP and UNDR pay.
#pragma once

#include <memory>

#include "instance/logical.h"
#include "mct/mct_schema.h"
#include "storage/store.h"

namespace mctdb::instance {

struct MaterializeOptions {
  storage::StoreOptions store;
  /// Guard against pathological schema x instance combinations.
  size_t max_placements = 50000000;
};

/// Builds the store for `schema` over `logical`. The schema and the logical
/// instance must outlive the store only during this call; the store is
/// self-contained afterwards (but keeps a pointer to the schema for
/// reports, so keep the schema alive for querying).
std::unique_ptr<storage::MctStore> Materialize(
    const LogicalInstance& logical, const mct::MctSchema& schema,
    const MaterializeOptions& options = {});

}  // namespace mctdb::instance
