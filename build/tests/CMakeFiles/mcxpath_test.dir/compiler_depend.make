# Empty compiler generated dependencies file for mcxpath_test.
# This may be replaced when dependencies are built.
