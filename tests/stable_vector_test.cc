#include "common/stable_vector.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace mctdb {
namespace {

TEST(StableVectorTest, PushBackAndIndex) {
  StableVector<int> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 100; ++i) v.push_back(i * 3);
  EXPECT_EQ(v.size(), 100u);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], static_cast<int>(i) * 3);
  }
  EXPECT_EQ(v.back(), 99 * 3);
}

TEST(StableVectorTest, ReferencesSurviveGrowth) {
  StableVector<std::string> v;
  // Hold a reference from the very first chunk, then grow far past it.
  std::string& first = v.push_back("first");
  std::string* addr = &first;
  for (size_t i = 1; i < StableVector<std::string>::kChunkSize * 5; ++i) {
    v.push_back("x" + std::to_string(i));
  }
  EXPECT_EQ(&v[0], addr);
  EXPECT_EQ(v[0], "first");
}

TEST(StableVectorTest, EmplaceBack) {
  StableVector<std::pair<int, std::string>> v;
  auto& p = v.emplace_back(7, "seven");
  EXPECT_EQ(p.first, 7);
  EXPECT_EQ(v[0].second, "seven");
}

TEST(StableVectorTest, RangeForVisitsEverySlot) {
  StableVector<size_t> v;
  const size_t n = StableVector<size_t>::kChunkSize + 17;  // spans chunks
  for (size_t i = 0; i < n; ++i) v.push_back(i);
  size_t expect = 0;
  for (size_t x : v) EXPECT_EQ(x, expect++);
  EXPECT_EQ(expect, n);
}

// The contract the delta store depends on: one writer appends while
// readers index below an observed size(), across chunk boundaries, with
// no locks. TSan-clean and every observed value fully constructed.
TEST(StableVectorTest, ConcurrentReadersSeeFullyPublishedElements) {
  StableVector<uint64_t> v;
  constexpr uint64_t kSentinel = 0xABCD1234ABCD1234ull;
  constexpr size_t kTotal = StableVector<uint64_t>::kChunkSize * 4 + 3;
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  std::atomic<uint64_t> torn{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        size_t n = v.size();
        for (size_t i = 0; i < n; ++i) {
          if (v[i] != kSentinel + i) torn.fetch_add(1);
        }
      }
    });
  }
  for (size_t i = 0; i < kTotal; ++i) v.push_back(kSentinel + i);
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(v.size(), kTotal);
}

}  // namespace
}  // namespace mctdb
