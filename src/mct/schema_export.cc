#include "mct/schema_export.h"

#include <map>
#include <set>

#include "common/string_util.h"

namespace mctdb::mct {

std::string ExportDtd(const MctSchema& schema) {
  const er::ErDiagram& diagram = schema.diagram();
  std::string out;
  std::map<OccId, std::vector<const RefEdge*>> refs;
  for (const RefEdge& r : schema.ref_edges()) refs[r.from].push_back(&r);

  for (ColorId c = 0; c < schema.num_colors(); ++c) {
    out += StringPrintf("<!-- color: %s -->\n",
                        schema.color_name(c).c_str());
    for (const SchemaOcc& occ : schema.occurrences()) {
      if (occ.color != c) continue;
      const er::ErNode& node = diagram.node(occ.er_node);
      // Content model.
      std::string model;
      for (OccId child : occ.children) {
        if (!model.empty()) model += ", ";
        model += diagram.node(schema.occ(child).er_node).name;
        Occurs o = schema.ChildOccurs(child);
        if (o != Occurs::kOne) model += ToString(o);
      }
      if (model.empty()) model = "EMPTY";
      out += StringPrintf("<!ELEMENT %s (%s)>\n", node.name.c_str(),
                          model.c_str());
      // Attributes: declared attrs + idrefs held here.
      std::string attlist;
      for (const er::Attribute& a : node.attributes) {
        attlist += StringPrintf("  %s %s #%s\n", a.name.c_str(),
                                a.is_key ? "ID" : "CDATA",
                                a.is_key ? "REQUIRED" : "IMPLIED");
      }
      if (auto it = refs.find(occ.id); it != refs.end()) {
        for (const RefEdge* r : it->second) {
          attlist +=
              StringPrintf("  %s IDREF #REQUIRED\n", r->attr_name.c_str());
        }
      }
      if (!attlist.empty()) {
        out += StringPrintf("<!ATTLIST %s\n%s>\n", node.name.c_str(),
                            attlist.c_str());
      }
    }
    out += "\n";
  }
  return out;
}

std::string ExportDot(const MctSchema& schema) {
  const er::ErDiagram& diagram = schema.diagram();
  std::string out = "digraph \"" + schema.name() + "\" {\n";
  out += "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  // ICIC-constrained ER edges, for dashed styling.
  std::set<er::EdgeId> constrained;
  for (const Icic& icic : schema.ComputeIcics()) {
    constrained.insert(icic.er_edge);
  }
  static const char* kDotColors[] = {"blue",   "red",    "purple",
                                     "orange", "green",  "brown",
                                     "cyan",   "magenta"};
  for (ColorId c = 0; c < schema.num_colors(); ++c) {
    const char* dot_color = kDotColors[c % 8];
    out += StringPrintf("  subgraph cluster_%u {\n", unsigned(c));
    out += StringPrintf("    label=\"%s\"; color=%s;\n",
                        schema.color_name(c).c_str(), dot_color);
    for (const SchemaOcc& occ : schema.occurrences()) {
      if (occ.color != c) continue;
      out += StringPrintf("    o%u [label=\"%s\"];\n", occ.id,
                          diagram.node(occ.er_node).name.c_str());
    }
    for (const SchemaOcc& occ : schema.occurrences()) {
      if (occ.color != c || occ.is_root()) continue;
      bool dashed = constrained.count(occ.via_edge) > 0;
      out += StringPrintf("    o%u -> o%u [color=%s%s, label=\"%s\"];\n",
                          occ.parent, occ.id, dot_color,
                          dashed ? ", style=dashed" : "",
                          ToString(schema.ChildOccurs(occ.id)));
    }
    out += "  }\n";
  }
  for (const RefEdge& r : schema.ref_edges()) {
    // Ref edges point to the first occurrence of the target.
    OccId target = schema.FindOcc(schema.occ(r.from).color, r.target);
    if (target == kInvalidOcc) continue;
    out += StringPrintf("  o%u -> o%u [style=dotted, label=\"%s\"];\n",
                        r.from, target, r.attr_name.c_str());
  }
  out += "}\n";
  return out;
}

}  // namespace mctdb::mct
