file(REMOVE_RECURSE
  "CMakeFiles/mctdb_er.dir/er_catalog.cc.o"
  "CMakeFiles/mctdb_er.dir/er_catalog.cc.o.d"
  "CMakeFiles/mctdb_er.dir/er_graph.cc.o"
  "CMakeFiles/mctdb_er.dir/er_graph.cc.o.d"
  "CMakeFiles/mctdb_er.dir/er_model.cc.o"
  "CMakeFiles/mctdb_er.dir/er_model.cc.o.d"
  "CMakeFiles/mctdb_er.dir/er_parser.cc.o"
  "CMakeFiles/mctdb_er.dir/er_parser.cc.o.d"
  "CMakeFiles/mctdb_er.dir/er_random.cc.o"
  "CMakeFiles/mctdb_er.dir/er_random.cc.o.d"
  "CMakeFiles/mctdb_er.dir/rich_er.cc.o"
  "CMakeFiles/mctdb_er.dir/rich_er.cc.o.d"
  "libmctdb_er.a"
  "libmctdb_er.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mctdb_er.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
