file(REMOVE_RECURSE
  "CMakeFiles/algorithm_mc_test.dir/algorithm_mc_test.cc.o"
  "CMakeFiles/algorithm_mc_test.dir/algorithm_mc_test.cc.o.d"
  "algorithm_mc_test"
  "algorithm_mc_test.pdb"
  "algorithm_mc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_mc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
