file(REMOVE_RECURSE
  "CMakeFiles/mctdb_common.dir/arena.cc.o"
  "CMakeFiles/mctdb_common.dir/arena.cc.o.d"
  "CMakeFiles/mctdb_common.dir/random.cc.o"
  "CMakeFiles/mctdb_common.dir/random.cc.o.d"
  "CMakeFiles/mctdb_common.dir/status.cc.o"
  "CMakeFiles/mctdb_common.dir/status.cc.o.d"
  "CMakeFiles/mctdb_common.dir/string_util.cc.o"
  "CMakeFiles/mctdb_common.dir/string_util.cc.o.d"
  "libmctdb_common.a"
  "libmctdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mctdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
