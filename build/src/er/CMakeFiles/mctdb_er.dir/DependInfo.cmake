
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/er/er_catalog.cc" "src/er/CMakeFiles/mctdb_er.dir/er_catalog.cc.o" "gcc" "src/er/CMakeFiles/mctdb_er.dir/er_catalog.cc.o.d"
  "/root/repo/src/er/er_graph.cc" "src/er/CMakeFiles/mctdb_er.dir/er_graph.cc.o" "gcc" "src/er/CMakeFiles/mctdb_er.dir/er_graph.cc.o.d"
  "/root/repo/src/er/er_model.cc" "src/er/CMakeFiles/mctdb_er.dir/er_model.cc.o" "gcc" "src/er/CMakeFiles/mctdb_er.dir/er_model.cc.o.d"
  "/root/repo/src/er/er_parser.cc" "src/er/CMakeFiles/mctdb_er.dir/er_parser.cc.o" "gcc" "src/er/CMakeFiles/mctdb_er.dir/er_parser.cc.o.d"
  "/root/repo/src/er/er_random.cc" "src/er/CMakeFiles/mctdb_er.dir/er_random.cc.o" "gcc" "src/er/CMakeFiles/mctdb_er.dir/er_random.cc.o.d"
  "/root/repo/src/er/rich_er.cc" "src/er/CMakeFiles/mctdb_er.dir/rich_er.cc.o" "gcc" "src/er/CMakeFiles/mctdb_er.dir/rich_er.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mctdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
