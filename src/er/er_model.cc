#include "er/er_model.h"

#include "common/string_util.h"

namespace mctdb::er {

NodeId ErDiagram::AddNode(ErNode node) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  node.id = id;
  name_index_.emplace(node.name, id);
  nodes_.push_back(std::move(node));
  return id;
}

NodeId ErDiagram::AddEntity(std::string_view name,
                            std::vector<Attribute> attributes) {
  ErNode node;
  node.kind = NodeKind::kEntity;
  node.name = std::string(name);
  node.attributes = std::move(attributes);
  ++num_entities_;
  return AddNode(std::move(node));
}

Result<NodeId> ErDiagram::AddRelationship(std::string_view name, NodeId a,
                                          Participation pa, NodeId b,
                                          Participation pb, Totality ta,
                                          Totality tb,
                                          std::vector<Attribute> attributes) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    return Status::InvalidArgument(
        StringPrintf("relationship '%.*s': endpoint out of range",
                     int(name.size()), name.data()));
  }
  if (a == b) {
    return Status::InvalidArgument(StringPrintf(
        "relationship '%.*s': endpoints must be distinct types",
        int(name.size()), name.data()));
  }
  if (name_index_.count(std::string(name))) {
    return Status::AlreadyExists(
        StringPrintf("node named '%.*s' already exists", int(name.size()),
                     name.data()));
  }
  ErNode node;
  node.kind = NodeKind::kRelationship;
  node.name = std::string(name);
  node.attributes = std::move(attributes);
  node.endpoints[0] = Endpoint{a, pa, ta};
  node.endpoints[1] = Endpoint{b, pb, tb};
  return AddNode(std::move(node));
}

Result<NodeId> ErDiagram::AddOneToMany(std::string_view name, NodeId one_side,
                                       NodeId many_side,
                                       Totality many_side_totality) {
  return AddRelationship(name, one_side, Participation::kMany, many_side,
                         Participation::kOne, Totality::kPartial,
                         many_side_totality);
}

Result<NodeId> ErDiagram::AddManyToMany(std::string_view name, NodeId a,
                                        NodeId b) {
  return AddRelationship(name, a, Participation::kMany, b,
                         Participation::kMany);
}

Result<NodeId> ErDiagram::AddOneToOne(std::string_view name, NodeId a,
                                      NodeId b) {
  return AddRelationship(name, a, Participation::kOne, b, Participation::kOne);
}

Status ErDiagram::AddAttribute(NodeId node, Attribute attr) {
  if (node >= nodes_.size()) {
    return Status::InvalidArgument("AddAttribute: node out of range");
  }
  for (const auto& existing : nodes_[node].attributes) {
    if (existing.name == attr.name) {
      return Status::AlreadyExists("duplicate attribute " + attr.name);
    }
  }
  nodes_[node].attributes.push_back(std::move(attr));
  return Status::OK();
}

std::optional<NodeId> ErDiagram::FindNode(std::string_view name) const {
  auto it = name_index_.find(std::string(name));
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

Status ErDiagram::Validate() const {
  if (name_index_.size() != nodes_.size()) {
    return Status::Corruption("duplicate node names in diagram " + name_);
  }
  for (const ErNode& node : nodes_) {
    if (node.is_relationship()) {
      for (const Endpoint& ep : node.endpoints) {
        if (ep.target >= nodes_.size()) {
          return Status::Corruption("dangling endpoint in " + node.name);
        }
        if (ep.target >= node.id) {
          return Status::Corruption(
              "relationship " + node.name +
              " references a node declared after it (stratification)");
        }
      }
      if (node.endpoints[0].target == node.endpoints[1].target) {
        return Status::Corruption("self-loop relationship " + node.name);
      }
    }
  }
  return Status::OK();
}

const char* ToString(NodeKind kind) {
  return kind == NodeKind::kEntity ? "entity" : "relationship";
}
const char* ToString(Participation p) {
  return p == Participation::kOne ? "1" : "m";
}
const char* ToString(AttrType t) {
  return t == AttrType::kString ? "string" : "int";
}

}  // namespace mctdb::er
