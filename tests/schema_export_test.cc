#include "mct/schema_export.h"

#include <gtest/gtest.h>

#include "design/designer.h"
#include "er/er_catalog.h"

namespace mctdb::mct {
namespace {

struct Fixture {
  er::ErDiagram diagram = er::Tpcw();
  er::ErGraph graph{diagram};
  design::Designer designer{graph};
};

TEST(SchemaExportTest, DtdDeclaresEveryOccurrence) {
  Fixture f;
  MctSchema en = f.designer.Design(design::Strategy::kEn);
  std::string dtd = ExportDtd(en);
  // Every ER node appears as an ELEMENT declaration at least once.
  for (const er::ErNode& node : f.diagram.nodes()) {
    EXPECT_NE(dtd.find("<!ELEMENT " + node.name), std::string::npos)
        << node.name;
  }
  // Both colors announced.
  EXPECT_NE(dtd.find("<!-- color: blue -->"), std::string::npos);
  EXPECT_NE(dtd.find("<!-- color: red -->"), std::string::npos);
}

TEST(SchemaExportTest, DtdContentModelsCarryOccurrenceMarkers) {
  Fixture f;
  MctSchema en = f.designer.Design(design::Strategy::kEn);
  std::string dtd = ExportDtd(en);
  // country holds many in's (total on the address side -> '+' under one
  // country? in occurs * or + under country).
  bool star_or_plus = dtd.find("<!ELEMENT country (in*)") != std::string::npos ||
                      dtd.find("<!ELEMENT country (in+)") != std::string::npos;
  EXPECT_TRUE(star_or_plus) << dtd.substr(0, 400);
  // Keys become ID attributes.
  EXPECT_NE(dtd.find("id ID #REQUIRED"), std::string::npos);
}

TEST(SchemaExportTest, ShallowDtdHasIdrefs) {
  Fixture f;
  MctSchema shallow = f.designer.Design(design::Strategy::kShallow);
  std::string dtd = ExportDtd(shallow);
  EXPECT_NE(dtd.find("IDREF #REQUIRED"), std::string::npos);
  EXPECT_NE(dtd.find("_idref"), std::string::npos);
}

TEST(SchemaExportTest, DotIsWellFormedGraphviz) {
  Fixture f;
  MctSchema dr = f.designer.Design(design::Strategy::kDr);
  std::string dot = ExportDot(dr);
  EXPECT_EQ(dot.find("digraph"), 0u);
  EXPECT_EQ(dot.back(), '\n');
  // One cluster per color.
  for (ColorId c = 0; c < dr.num_colors(); ++c) {
    EXPECT_NE(dot.find("subgraph cluster_" + std::to_string(c)),
              std::string::npos);
  }
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
  // ICIC-constrained edges render dashed.
  ASSERT_FALSE(dr.ComputeIcics().empty());
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(SchemaExportTest, DotNodesCoverOccurrences) {
  Fixture f;
  MctSchema en = f.designer.Design(design::Strategy::kEn);
  std::string dot = ExportDot(en);
  size_t node_decls = 0;
  for (size_t pos = 0; (pos = dot.find("[label=\"", pos)) != std::string::npos;
       pos += 8) {
    ++node_decls;
  }
  EXPECT_EQ(node_decls, en.num_occurrences());
  size_t edge_decls = 0;
  for (size_t pos = 0; (pos = dot.find(" -> ", pos)) != std::string::npos;
       pos += 4) {
    ++edge_decls;
  }
  size_t expected_edges = 0;
  for (const SchemaOcc& o : en.occurrences()) expected_edges += !o.is_root();
  // EN has no ref edges, so arrows == parent links.
  EXPECT_EQ(edge_decls, expected_edges);
}

}  // namespace
}  // namespace mctdb::mct
