#include "query/executor.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "query/structural_join.h"

namespace mctdb::query {

namespace {

using storage::ElemId;
using storage::LabelEntry;

void SortByStart(std::vector<LabelEntry>* v) {
  std::sort(v->begin(), v->end(),
            [](const LabelEntry& a, const LabelEntry& b) {
              return a.start < b.start;
            });
}

/// The name of a node type's key attribute ("id" in the catalog; the first
/// declared key otherwise).
const std::string* KeyAttrName(const er::ErDiagram& d, er::NodeId node) {
  for (const er::Attribute& a : d.node(node).attributes) {
    if (a.is_key) return &a.name;
  }
  return nullptr;
}

}  // namespace

Executor::Binding Executor::ScanTag(mct::ColorId color, er::NodeId tag,
                                    const AttrPredicate* predicate,
                                    const storage::ScanBounds* bounds) {
  obs::SpanScope span(stats_, obs::StageKind::kTagScan,
                      store_->schema().diagram().node(tag).name + "@c" +
                          std::to_string(color));
  Binding out;
  // Base posting pages merged with the snapshot-visible delta inserts,
  // minus deleted placements; on a read-only store this is the plain base
  // cursor.
  storage::MergedPostingCursor cursor(pool_, *store_, color, tag, snapshot_,
                                      stats_);
  if (bounds != nullptr && mode_ == ExecMode::kBatched) {
    cursor.ApplyBounds(*bounds);
  }
  span.SetCardinalityIn(cursor.upper_bound());
  // One allocation up front: the cursor knows an exact upper bound on the
  // entries it can yield, so materialization never regrows mid-scan.
  out.reserve(cursor.upper_bound());
  if (mode_ == ExecMode::kBatched) {
    // Block-at-a-time: a page's worth of entries per call, appended (or
    // predicate-filtered) straight from the pinned span. The predicate
    // resolves its attr name and value to dictionary ids ONCE; per entry
    // the filter is then an id compare, never a string hash/compare —
    // and a value absent from the store-wide dictionary cannot match any
    // element, so the scan ends before fetching another page.
    uint32_t pred_name = UINT32_MAX, pred_value = UINT32_MAX;
    if (predicate != nullptr) {
      pred_name = store_->FindAttrName(predicate->attr);
      pred_value = store_->FindValue(predicate->value);
    }
    const LabelEntry* data = nullptr;
    size_t n = 0;
    while (cursor.NextSpan(&data, &n)) {
      if (predicate == nullptr) {
        out.insert(out.end(), data, data + n);
        continue;
      }
      if (pred_name == UINT32_MAX || pred_value == UINT32_MAX) break;
      for (size_t i = 0; i < n; ++i) {
        if (store_->AttrValueId(data[i].elem, pred_name, snapshot_) ==
            pred_value) {
          out.push_back(data[i]);
        }
      }
    }
  } else {
    LabelEntry e;
    while (cursor.Next(&e)) {
      if (predicate != nullptr) {
        const std::string* v =
            store_->AttrValue(e.elem, predicate->attr, snapshot_);
        if (v == nullptr || *v != predicate->value) continue;
      }
      out.push_back(e);
    }
  }
  if (!cursor.status().ok() && failure_.ok()) {
    // Latched, not returned: the Binding signature has no error channel.
    // Execute checks failure_ between steps and fails the query.
    failure_ = cursor.status();
  }
  span.SetCardinalityOut(out.size());
  return out;
}

Executor::Binding Executor::FilterPredicate(Binding in,
                                            const AttrPredicate& predicate) {
  obs::SpanScope span(stats_, obs::StageKind::kPredicateFilter,
                      predicate.attr + "=" + predicate.value);
  span.SetCardinalityIn(in.size());
  Binding out;
  out.reserve(in.size());
  for (const LabelEntry& e : in) {
    const std::string* v = store_->AttrValue(e.elem, predicate.attr, snapshot_);
    if (v != nullptr && *v == predicate.value) out.push_back(e);
  }
  span.SetCardinalityOut(out.size());
  return out;
}

Executor::Binding Executor::CrossTo(const Binding& in,
                                    mct::ColorId from_color,
                                    mct::ColorId color) {
  if (from_color == color) return in;
  obs::SpanScope span(stats_, obs::StageKind::kCrossColor,
                      "c" + std::to_string(from_color) + "->c" +
                          std::to_string(color));
  span.SetCardinalityIn(in.size());
  Binding out;
  std::unordered_set<uint64_t> seen;
  for (const LabelEntry& e : in) {
    // Re-anchor through the logical instance to EVERY placement in the
    // target color: the shared element's own placement there may be a
    // context graft with no substructure, while a copy sits at the primary
    // position — both must join.
    const storage::ElementMeta& meta = store_->element(e.elem);
    for (ElemId sibling : store_->ElementsFor(meta.er_node, meta.logical, snapshot_)) {
      LabelEntry label;
      if (store_->Label(color, sibling, &label, snapshot_) &&
          seen.insert(label.elem).second) {
        out.push_back(label);
      }
    }
  }
  SortByStart(&out);
  span.SetCardinalityOut(out.size());
  return out;
}

Executor::Binding Executor::EvalEdge(const EdgePlan& edge,
                                     const PatternNode& node,
                                     Binding* parent,
                                     mct::ColorId* parent_color,
                                     bool reduce_parent,
                                     mct::ColorId* out_color) {
  const er::ErDiagram& diagram = store_->schema().diagram();
  const auto& path = node.path_from_parent;

  // Intermediate bindings per path position, for the backward reduction.
  struct Stage {
    Binding binding;
    mct::ColorId color = 0;
    bool structural = false;
  };
  std::vector<Stage> stages;  // one entry PER SEGMENT BOUNDARY (start incl.)

  Binding current = *parent;
  mct::ColorId current_color = *parent_color;
  stages.push_back({current, current_color, false});

  for (const Segment& seg : edge.segments) {
    if (seg.kind == SegmentKind::kValueJoin) {
      const er::ErEdge& e = store_->schema().graph().edge(seg.ref_edge);
      er::NodeId from_type = path[seg.from_index];
      er::NodeId to_type = path[seg.to_index];
      obs::SpanScope span(stats_, obs::StageKind::kValueJoin,
                          diagram.node(from_type).name + "~" +
                              diagram.node(to_type).name);
      span.SetCardinalityIn(current.size());
      // The rel side holds the "<target>_idref" attribute.
      std::string idref_attr = diagram.node(e.node).name + "_idref";
      // Value joins only arise in single-color schemas; the probe/build
      // side is scanned wherever the tag lives (color 0).
      mct::ColorId c = 0;
      Binding next;
      if (mode_ == ExecMode::kBatched) {
        // Dictionary-id hash join. Build and probe sides mirror the
        // string join below (build over the scanned to_type side, probe
        // in `current` order, dedup by element), but both sides resolve
        // their join attribute to interned value ids up front, so the
        // hash table keys on uint32 — no per-element string hashing.
        auto ids_of = [&](const Binding& b, std::string_view attr) {
          std::vector<uint32_t> ids(b.size(), UINT32_MAX);
          uint32_t name_id = store_->FindAttrName(attr);
          if (name_id == UINT32_MAX) return ids;
          for (size_t i = 0; i < b.size(); ++i) {
            ids[i] = store_->AttrValueId(b[i].elem, name_id, snapshot_);
          }
          return ids;
        };
        const bool rel_to_endpoint = from_type == e.rel;
        const std::string* key_attr =
            KeyAttrName(diagram, rel_to_endpoint ? to_type : from_type);
        MCTDB_CHECK(key_attr != nullptr);
        Binding scanned = ScanTag(c, to_type, nullptr);
        std::vector<uint32_t> build_ids =
            ids_of(scanned, rel_to_endpoint ? std::string_view(*key_attr)
                                            : std::string_view(idref_attr));
        std::vector<uint32_t> probe_ids =
            ids_of(current, rel_to_endpoint ? std::string_view(idref_attr)
                                            : std::string_view(*key_attr));
        // Hash only the (typically far smaller) probe side; one
        // membership pass over the scanned side then selects the result
        // set — no per-key bucket vectors, and order is irrelevant here
        // because the join sorts by start below.
        std::unordered_set<uint32_t> probe_set;
        probe_set.reserve(probe_ids.size());
        for (uint32_t pid : probe_ids) {
          if (pid != UINT32_MAX) probe_set.insert(pid);
        }
        std::unordered_set<ElemId> taken;
        for (size_t i = 0; i < scanned.size(); ++i) {
          if (build_ids[i] == UINT32_MAX || probe_set.count(build_ids[i]) == 0)
            continue;
          if (taken.insert(scanned[i].elem).second) {
            next.push_back(scanned[i]);
          }
        }
      } else if (from_type == e.rel) {
        // rel -> endpoint: build hash endpoint-key -> entries, probe with
        // idref values.
        const std::string* key_attr = KeyAttrName(diagram, to_type);
        MCTDB_CHECK(key_attr != nullptr);
        Binding endpoints = ScanTag(c, to_type, nullptr);
        std::unordered_map<std::string, std::vector<size_t>> by_key;
        for (size_t i = 0; i < endpoints.size(); ++i) {
          const std::string* k =
              store_->AttrValue(endpoints[i].elem, *key_attr, snapshot_);
          if (k != nullptr) by_key[*k].push_back(i);
        }
        std::unordered_set<ElemId> taken;
        for (const LabelEntry& relem : current) {
          const std::string* ref =
              store_->AttrValue(relem.elem, idref_attr, snapshot_);
          if (ref == nullptr) continue;
          auto hit = by_key.find(*ref);
          if (hit == by_key.end()) continue;
          for (size_t i : hit->second) {
            if (taken.insert(endpoints[i].elem).second) {
              next.push_back(endpoints[i]);
            }
          }
        }
      } else {
        // endpoint -> rel: build hash over rel idrefs, probe with endpoint
        // keys.
        const std::string* key_attr = KeyAttrName(diagram, from_type);
        MCTDB_CHECK(key_attr != nullptr);
        Binding rels = ScanTag(c, to_type, nullptr);
        std::unordered_map<std::string, std::vector<size_t>> by_ref;
        for (size_t i = 0; i < rels.size(); ++i) {
          const std::string* ref = store_->AttrValue(rels[i].elem, idref_attr, snapshot_);
          if (ref != nullptr) by_ref[*ref].push_back(i);
        }
        std::unordered_set<ElemId> taken;
        for (const LabelEntry& elem : current) {
          const std::string* k = store_->AttrValue(elem.elem, *key_attr, snapshot_);
          if (k == nullptr) continue;
          auto hit = by_ref.find(*k);
          if (hit == by_ref.end()) continue;
          for (size_t i : hit->second) {
            if (taken.insert(rels[i].elem).second) next.push_back(rels[i]);
          }
        }
      }
      SortByStart(&next);
      span.SetCardinalityOut(next.size());
      current = std::move(next);
      current_color = c;
      stages.push_back({current, current_color, false});
      continue;
    }

    // Structural segment: cross into the segment color first.
    current = CrossTo(current, current_color, seg.color);
    current_color = seg.color;
    size_t steps = seg.kind == SegmentKind::kAncDesc
                       ? 1
                       : seg.to_index - seg.from_index;
    for (size_t step = 0; step < steps; ++step) {
      er::NodeId next_type =
          seg.kind == SegmentKind::kAncDesc
              ? path[seg.to_index]
              : path[seg.from_index + step + 1];
      obs::SpanScope span(stats_, obs::StageKind::kStructuralJoin,
                          diagram.node(next_type).name + "@c" +
                              std::to_string(seg.color));
      span.SetCardinalityIn(current.size());
      StructuralJoinOptions opts;
      opts.parent_child_only =
          seg.kind == SegmentKind::kStepChain ||
          (seg.to_index - seg.from_index) == 1;
      if (mode_ == ExecMode::kBatched) {
        if (current.empty()) {
          // An empty side joins to nothing; skip the candidate scan — the
          // result is identical with zero I/O.
          span.SetCardinalityOut(0);
          continue;
        }
        // Index-assisted bounds: necessary conditions on a candidate's
        // label for it to appear in ANY containment pair with `current`,
        // derived from the current side's extremes. The cursor uses them
        // only to skip whole ruled-out pages, so results are unchanged.
        storage::ScanBounds bounds;
        if (!seg.reversed) {
          // Candidate descendants: start must fall strictly inside some
          // ancestor, so start > min(anc.start) and start < max(anc.end).
          uint32_t min_start = UINT32_MAX;
          uint32_t max_end = 0;
          for (const LabelEntry& e : current) {
            if (e.start < min_start) min_start = e.start;
            if (e.end > max_end) max_end = e.end;
          }
          bounds.start_gt = min_start;
          bounds.start_lt = max_end;
        } else {
          // Candidate ancestors: must open before some descendant and
          // close at or after its end, so start < max(desc.start) and
          // end >= min(desc.end).
          uint32_t max_start = 0;
          uint32_t min_end = UINT32_MAX;
          for (const LabelEntry& e : current) {
            if (e.start > max_start) max_start = e.start;
            if (e.end < min_end) min_end = e.end;
          }
          bounds.start_lt = max_start;
          bounds.end_gt = min_end == 0 ? 0 : min_end - 1;
        }
        // The candidate ScanTag nests as a child span of this join.
        Binding candidates = ScanTag(seg.color, next_type, nullptr, &bounds);
        StructuralJoinResult joined;
        if (!seg.reversed) {
          joined = StackTreeJoinBlocked(current, candidates, opts);
          current = std::move(joined.descendants);
        } else {
          joined = StackTreeJoinBlocked(candidates, current, opts);
          current = std::move(joined.ancestors);
        }
        span.AddJoinPairs(joined.pairs);
        span.SetCardinalityOut(current.size());
        continue;
      }
      // The candidate ScanTag nests as a child span of this join.
      Binding candidates = ScanTag(seg.color, next_type, nullptr);
      StructuralJoinResult joined;
      if (!seg.reversed) {
        joined = StackTreeJoin(current, candidates, opts);
        current = std::move(joined.descendants);
      } else {
        joined = StackTreeJoin(candidates, current, opts);
        current = std::move(joined.ancestors);
      }
      span.AddJoinPairs(joined.pairs);
      span.SetCardinalityOut(current.size());
    }
    stages.push_back({current, current_color, true});
  }

  // Child predicate.
  if (node.predicate.has_value()) {
    current = FilterPredicate(std::move(current), *node.predicate);
  }

  if (reduce_parent && !current.empty()) {
    obs::SpanScope span(stats_, obs::StageKind::kBackwardReduction,
                        diagram.node(node.er_node).name);
    span.SetCardinalityIn(parent->size());
    // Walk the segments backward, reducing each stage to members that
    // reach the surviving children; the final stage reduces *parent.
    Binding survivors = current;
    mct::ColorId survivor_color = current_color;
    for (size_t si = edge.segments.size(); si-- > 0;) {
      const Segment& seg = edge.segments[si];
      Binding& upper = stages[si].binding;
      mct::ColorId upper_color = stages[si].color;
      if (seg.kind == SegmentKind::kValueJoin) {
        // Reverse the value join: survivors' keys/refs back to upper.
        const er::ErEdge& e = store_->schema().graph().edge(seg.ref_edge);
        std::string idref_attr = diagram.node(e.node).name + "_idref";
        er::NodeId from_type = path[seg.from_index];
        Binding reduced;
        if (from_type == e.rel) {
          // upper = rel side; survivor keys identify endpoints.
          const std::string* key_attr =
              KeyAttrName(diagram, path[seg.to_index]);
          std::unordered_set<std::string> keys;
          for (const LabelEntry& s : survivors) {
            const std::string* k = store_->AttrValue(s.elem, *key_attr, snapshot_);
            if (k != nullptr) keys.insert(*k);
          }
          for (const LabelEntry& u : upper) {
            const std::string* ref = store_->AttrValue(u.elem, idref_attr, snapshot_);
            if (ref != nullptr && keys.count(*ref)) reduced.push_back(u);
          }
        } else {
          const std::string* key_attr =
              KeyAttrName(diagram, path[seg.from_index]);
          std::unordered_set<std::string> refs;
          for (const LabelEntry& s : survivors) {
            const std::string* r = store_->AttrValue(s.elem, idref_attr, snapshot_);
            if (r != nullptr) refs.insert(*r);
          }
          for (const LabelEntry& u : upper) {
            const std::string* k = store_->AttrValue(u.elem, *key_attr, snapshot_);
            if (k != nullptr && refs.count(*k)) reduced.push_back(u);
          }
        }
        survivors = std::move(reduced);
        survivor_color = upper_color;
        continue;
      }
      // Structural: join upper (crossed into the segment color) against
      // survivors and keep the matched side.
      Binding upper_in_color = CrossTo(upper, upper_color, seg.color);
      Binding surv_in_color = CrossTo(survivors, survivor_color, seg.color);
      SortByStart(&upper_in_color);
      SortByStart(&surv_in_color);
      StructuralJoinOptions opts;  // a-d suffices for reduction
      const bool blocked = mode_ == ExecMode::kBatched;
      StructuralJoinResult joined;
      if (!seg.reversed) {
        joined = blocked ? StackTreeJoinBlocked(upper_in_color, surv_in_color,
                                                opts)
                         : StackTreeJoin(upper_in_color, surv_in_color, opts);
        survivors = std::move(joined.ancestors);
      } else {
        joined = blocked ? StackTreeJoinBlocked(surv_in_color, upper_in_color,
                                                opts)
                         : StackTreeJoin(surv_in_color, upper_in_color, opts);
        survivors = std::move(joined.descendants);
      }
      span.AddJoinPairs(joined.pairs);
      survivor_color = seg.color;
    }
    // Map survivors back to the parent's identity set BY LOGICAL INSTANCE:
    // in a redundant schema the filter branch may have matched one stored
    // copy of the parent while the output branch navigates another, and
    // the semantics of the filter is about the logical node.
    std::unordered_set<uint64_t> keep;
    auto logical_key = [&](ElemId elem) {
      const storage::ElementMeta& meta = store_->element(elem);
      return (uint64_t(meta.er_node) << 32) | meta.logical;
    };
    for (const LabelEntry& e : survivors) keep.insert(logical_key(e.elem));
    Binding reduced_parent;
    for (const LabelEntry& e : *parent) {
      if (keep.count(logical_key(e.elem))) reduced_parent.push_back(e);
    }
    span.SetCardinalityOut(reduced_parent.size());
    *parent = std::move(reduced_parent);
  } else if (reduce_parent) {
    parent->clear();
  }

  *out_color = current_color;
  return current;
}

Result<ExecResult> Executor::Execute(const QueryPlan& plan) {
  if (plan.query == nullptr) {
    return Status::InvalidArgument("plan has no query attached");
  }
  const AssociationQuery& query = *plan.query;
  auto start_time = std::chrono::steady_clock::now();

  // The attribution context lives for exactly this call; every operator
  // (and posting cursor) below charges spans and page fetches to it.
  obs::ExecStats stats(query.name);
  stats_ = &stats;
  failure_ = Status::OK();

  if (plan.statically_empty) {
    // Static prune (analysis::AnalyzeQuery, DESIGN.md §14): the result set
    // is provably empty on this schema, so no operator runs and no page is
    // fetched. The annotated span keeps the prune visible in `mctc trace`.
    {
      obs::SpanScope span(stats_, obs::StageKind::kQuery,
                          "pruned: " + plan.prune_reason);
    }
    ExecResult result;
    auto end_time = std::chrono::steady_clock::now();
    result.elapsed_seconds =
        std::chrono::duration<double>(end_time - start_time).count();
    stats_ = nullptr;
    result.trace = stats.Finish();
    return result;
  }

  const size_t n = query.nodes.size();
  std::vector<Binding> bindings(n);
  std::vector<mct::ColorId> colors(n, 0);
  std::vector<bool> evaluated(n, false);

  // Spine: root .. output.
  std::vector<bool> on_spine(n, false);
  for (int cur = query.output; cur >= 0; cur = query.nodes[cur].parent) {
    on_spine[cur] = true;
  }

  // Anchor.
  const PatternNode& root = query.nodes[0];
  const AttrPredicate* root_pred =
      root.predicate.has_value() ? &*root.predicate : nullptr;
  bindings[0] = ScanTag(plan.anchor_color, root.er_node, root_pred);
  colors[0] = plan.anchor_color;
  evaluated[0] = true;
  if (!failure_.ok()) {
    stats_ = nullptr;
    return failure_;
  }

  // Children of each pattern node, in declaration order, filter branches
  // before the spine child.
  std::vector<std::vector<int>> children(n);
  for (size_t i = 1; i < n; ++i) {
    children[query.nodes[i].parent].push_back(static_cast<int>(i));
  }
  for (auto& c : children) {
    std::stable_sort(c.begin(), c.end(), [&](int a, int b) {
      return !on_spine[a] && on_spine[b];
    });
  }

  // The edge plan for pattern node i.
  std::vector<const EdgePlan*> edge_of(n, nullptr);
  for (const EdgePlan& e : plan.edges) edge_of[e.pattern_node] = &e;

  // Depth-first evaluation; non-spine children reduce their parent.
  std::vector<int> order;
  std::vector<int> stack{0};
  while (!stack.empty()) {
    int u = stack.back();
    stack.pop_back();
    order.push_back(u);
    for (auto it = children[u].rbegin(); it != children[u].rend(); ++it) {
      stack.push_back(*it);
    }
  }
  for (int u : order) {
    if (u == 0) continue;
    const PatternNode& node = query.nodes[u];
    if (edge_of[u] == nullptr) {
      stats_ = nullptr;
      return Status::InvalidArgument(
          "plan has no edge for pattern node " + std::to_string(u) + " (" +
          store_->schema().diagram().node(node.er_node).name + ")");
    }
    int p = node.parent;
    MCTDB_CHECK(evaluated[p]);
    mct::ColorId out_color = colors[p];
    bool reduce = !on_spine[u];
    bindings[u] = EvalEdge(*edge_of[u], node, &bindings[p], &colors[p],
                           reduce, &out_color);
    colors[u] = out_color;
    evaluated[u] = true;
    if (!failure_.ok()) {
      stats_ = nullptr;
      return failure_;
    }
  }

  // If filter branches reduced ancestors of the output AFTER the output's
  // branch ran, the query's edge ordering was wrong; queries are declared
  // filters-first, and the DFS respects it, so the output binding is final.
  ExecResult result;
  const Binding& out_binding = bindings[query.output];
  result.raw_count = out_binding.size();
  {
    obs::SpanScope span(
        stats_, obs::StageKind::kDupElim,
        store_->schema().diagram().node(query.nodes[query.output].er_node)
            .name);
    span.SetCardinalityIn(out_binding.size());
    std::set<uint32_t> unique;
    for (const LabelEntry& e : out_binding) {
      unique.insert(store_->element(e.elem).logical);
    }
    result.unique_count = unique.size();
    result.logicals.assign(unique.begin(), unique.end());
    span.SetCardinalityOut(result.unique_count);
  }

  if (query.group_by.has_value()) {
    obs::SpanScope span(stats_, obs::StageKind::kGroupBy,
                        query.group_by->attr);
    span.SetCardinalityIn(result.logicals.size());
    for (uint32_t logical : result.logicals) {
      auto elems = store_->ElementsFor(
          query.nodes[query.output].er_node, logical, snapshot_);
      if (elems.empty()) continue;
      const std::string* v =
          store_->AttrValue(elems[0], query.group_by->attr, snapshot_);
      if (v != nullptr) ++result.groups[*v];
    }
    span.SetCardinalityOut(result.groups.size());
  }

  if (query.is_update()) {
    obs::SpanScope span(stats_, obs::StageKind::kUpdate,
                        query.update->attr);
    span.SetCardinalityIn(result.logicals.size());
    er::NodeId type = query.nodes[query.output].er_node;
    uint32_t name_id = store_->FindAttrName(query.update->attr);
    MCTDB_CHECK(name_id != UINT32_MAX);
    for (uint32_t logical : result.logicals) {
      std::vector<ElemId> elems = store_->ElementsFor(type, logical);
      for (ElemId elem : elems) {
        store_->UpdateAttrValue(elem, name_id, query.update->new_value);
        ++result.elements_updated;
        // ICIC/color maintenance: touch the element's label in every color
        // it participates in (the non-EN price §6.1 describes).
        for (mct::ColorId c = 0; c < store_->schema().num_colors(); ++c) {
          LabelEntry tmp;
          if (store_->Label(c, elem, &tmp)) ++result.icic_color_touches;
        }
      }
      ++result.logicals_updated;
    }
    span.SetCardinalityOut(result.elements_updated);
  }

  auto end_time = std::chrono::steady_clock::now();
  result.elapsed_seconds =
      std::chrono::duration<double>(end_time - start_time).count();
  stats_ = nullptr;
  result.page_misses = stats.page_misses();
  result.page_hits = stats.page_hits();
  result.join_pairs = stats.join_pairs();
  result.index_seeks = stats.index_seeks();
  result.trace = stats.Finish();
  result.trace.cardinality_out = result.unique_count;
  return result;
}

}  // namespace mctdb::query
