// Workload = an ER diagram + a named query set + generation parameters.
// The paper's three workload sources (§6): TPC-W (in-depth, Table 1 and
// Figs 8-10), the XMark-emulated query workloads for the ER collection, and
// the Database-Derby query set (Figs 12-14).
#pragma once

#include <string>
#include <vector>

#include "er/er_model.h"
#include "instance/logical.h"
#include "query/query_spec.h"

namespace mctdb::workload {

struct Workload {
  er::ErDiagram diagram;
  instance::GenOptions gen;
  std::vector<query::AssociationQuery> queries;
  /// Names of the queries whose metrics the figures report (the paper drops
  /// schema-indifferent queries: "4 of these 16 queries were indifferent").
  std::vector<std::string> figure_queries;

  explicit Workload(er::ErDiagram d) : diagram(std::move(d)) {}

  const query::AssociationQuery* Find(const std::string& name) const {
    for (const auto& q : queries) {
      if (q.name == name) return &q;
    }
    return nullptr;
  }
  size_t num_updates() const {
    size_t n = 0;
    for (const auto& q : queries) n += q.is_update();
    return n;
  }
};

/// TPC-W: Q1..Q13 read queries and U1..U3 updates over the Fig 1 diagram.
/// `scale` multiplies every entity count (scale 1 ~ 20k logical nodes).
Workload TpcwWorkload(double scale = 1.0);

/// XMark-emulated workload for an arbitrary diagram: 28 queries (20 read +
/// 8 update) derived from the XMark query archetypes by pattern-matching
/// the diagram's ER graph (point lookup, child step, deep chain, M:N
/// traversal, reverse context, tuple/branch, group-by, bulk/point updates).
Workload XmarkEmulatedWorkload(const er::ErDiagram& diagram);

/// The Database-Derby contest workload: 20 hand-written queries (8 updates)
/// over the Derby registrar schema.
Workload DerbyWorkload();

}  // namespace mctdb::workload
