#include "query/query_spec.h"

#include "common/logging.h"

namespace mctdb::query {

int QueryBuilder::Root(std::string_view type_name) {
  auto node = diagram_->FindNode(type_name);
  MCTDB_CHECK_MSG(node.has_value(), std::string(type_name).c_str());
  PatternNode pn;
  pn.er_node = *node;
  pn.parent = -1;
  query_.nodes.push_back(pn);
  query_.output = static_cast<int>(query_.nodes.size()) - 1;
  return query_.output;
}

int QueryBuilder::Via(int parent, const std::vector<std::string>& path_names) {
  MCTDB_CHECK(parent >= 0 &&
              parent < static_cast<int>(query_.nodes.size()));
  PatternNode pn;
  pn.parent = parent;
  pn.path_from_parent.push_back(query_.nodes[parent].er_node);
  for (const std::string& name : path_names) {
    auto node = diagram_->FindNode(name);
    MCTDB_CHECK_MSG(node.has_value(), name.c_str());
    pn.path_from_parent.push_back(*node);
  }
  MCTDB_CHECK(pn.path_from_parent.size() >= 2);
  pn.er_node = pn.path_from_parent.back();
  query_.nodes.push_back(pn);
  query_.output = static_cast<int>(query_.nodes.size()) - 1;
  return query_.output;
}

QueryBuilder& QueryBuilder::Where(int node, std::string_view attr,
                                  std::string_view value) {
  query_.nodes[node].predicate =
      AttrPredicate{std::string(attr), std::string(value)};
  return *this;
}

QueryBuilder& QueryBuilder::Output(int node) {
  query_.output = node;
  return *this;
}

QueryBuilder& QueryBuilder::Distinct() {
  query_.distinct = true;
  return *this;
}

QueryBuilder& QueryBuilder::GroupBy(int node, std::string_view attr) {
  query_.group_by = GroupBySpec{node, std::string(attr)};
  return *this;
}

QueryBuilder& QueryBuilder::Update(std::string_view attr,
                                   std::string_view value) {
  query_.update = UpdateSpec{std::string(attr), std::string(value)};
  return *this;
}

std::string CanonicalQueryText(const AssociationQuery& query) {
  std::string out;
  out.reserve(128);
  // Strings are length-prefixed so no attribute value can fake a
  // structural delimiter and collide two distinct queries onto one key.
  auto str = [&](const std::string& s) {
    out += std::to_string(s.size());
    out += ':';
    out += s;
  };
  out += "q{";
  str(query.name);
  out += ";n=";
  out += std::to_string(query.nodes.size());
  for (const PatternNode& n : query.nodes) {
    out += ";[t=";
    out += std::to_string(n.er_node);
    out += ",p=";
    out += std::to_string(n.parent);
    out += ",path=";
    for (er::NodeId id : n.path_from_parent) {
      out += std::to_string(id);
      out += '.';
    }
    if (n.predicate.has_value()) {
      out += ",pred=";
      str(n.predicate->attr);
      out += '=';
      str(n.predicate->value);
    }
    out += ']';
  }
  out += ";out=";
  out += std::to_string(query.output);
  if (query.distinct) out += ";distinct";
  if (query.group_by.has_value()) {
    out += ";group=";
    out += std::to_string(query.group_by->node);
    out += ',';
    str(query.group_by->attr);
  }
  if (query.update.has_value()) {
    out += ";update=";
    str(query.update->attr);
    out += "<-";
    str(query.update->new_value);
  }
  out += '}';
  return out;
}

}  // namespace mctdb::query
