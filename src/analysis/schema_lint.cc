#include "analysis/schema_lint.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"
#include "design/associations.h"
#include "design/recoverability.h"

namespace mctdb::analysis {

namespace {

using mct::ColorId;
using mct::Icic;
using mct::MctSchema;
using mct::OccId;
using mct::SchemaOcc;

class SchemaLinter {
 public:
  SchemaLinter(const MctSchema& schema, const SchemaLintOptions& options,
               DiagnosticReport* report)
      : schema_(schema), options_(options), report_(report) {}

  void Run() {
    CheckForests();
    CheckCoverage();
    CheckRefEdges();
    if (options_.icics == nullptr) computed_icics_ = schema_.ComputeIcics();
    CheckIcics(options_.icics != nullptr ? *options_.icics
                                         : computed_icics_);
    if (options_.claims != nullptr) CheckClaims(*options_.claims);
  }

 private:
  std::string NodeName(er::NodeId n) const {
    if (n >= schema_.diagram().num_nodes()) {
      return StringPrintf("node#%u", n);
    }
    return schema_.diagram().node(n).name;
  }

  std::string OccLoc(const SchemaOcc& o) const {
    std::string color = o.color < schema_.num_colors()
                            ? schema_.color_name(o.color)
                            : StringPrintf("color#%u", o.color);
    return StringPrintf("occ %u (%s in %s)", o.id, NodeName(o.er_node).c_str(),
                        color.c_str());
  }

  /// §2.2 well-formedness: each color's edge set must be a rooted forest
  /// with consistent bookkeeping and realizable parent links.
  void CheckForests() {
    const size_t num_nodes = schema_.diagram().num_nodes();
    const size_t num_edges = schema_.graph().num_edges();
    for (const SchemaOcc& o : schema_.occurrences()) {
      if (o.er_node >= num_nodes) {
        report_->Error("SCH003", OccLoc(o),
                       "occurrence references a nonexistent ER node type");
        continue;
      }
      if (o.color >= schema_.num_colors()) {
        report_->Error("SCH001", OccLoc(o),
                       "occurrence tagged with a nonexistent color");
        continue;
      }
      if (o.is_root()) {
        const auto& roots = schema_.roots(o.color);
        if (std::find(roots.begin(), roots.end(), o.id) == roots.end()) {
          report_->Error("SCH001", OccLoc(o),
                         "root occurrence not registered in its color's "
                         "root list");
        }
        continue;
      }
      if (o.parent >= schema_.num_occurrences()) {
        report_->Error("SCH001", OccLoc(o),
                       "parent link points at a nonexistent occurrence");
        continue;
      }
      const SchemaOcc& p = schema_.occ(o.parent);
      if (p.color != o.color) {
        report_->Error(
            "SCH001", OccLoc(o),
            StringPrintf("parent link crosses colors (%u vs %u)",
                         unsigned(p.color), unsigned(o.color)),
            "every tree lives inside one color; split the link into an "
            "ICIC or a ref edge");
      }
      if (std::find(p.children.begin(), p.children.end(), o.id) ==
          p.children.end()) {
        report_->Error("SCH001", OccLoc(o),
                       "child not registered in its parent's child list");
      }
      if (o.via_edge >= num_edges) {
        report_->Error("SCH003", OccLoc(o),
                       "parent link realizes a nonexistent ER edge");
        continue;
      }
      const er::ErEdge& e = schema_.graph().edge(o.via_edge);
      bool matches = (e.rel == p.er_node && e.node == o.er_node) ||
                     (e.node == p.er_node && e.rel == o.er_node);
      if (!matches) {
        report_->Error(
            "SCH001", OccLoc(o),
            StringPrintf("via_edge %s--%s does not connect parent '%s' to "
                         "child '%s'",
                         NodeName(e.rel).c_str(), NodeName(e.node).c_str(),
                         NodeName(p.er_node).c_str(),
                         NodeName(o.er_node).c_str()));
      }
    }
    // Acyclicity of every rooted tree: parent ids may exceed child ids
    // after AttachRoot, so walk ancestor chains with a step cap.
    for (const SchemaOcc& o : schema_.occurrences()) {
      size_t steps = 0;
      bool cyclic = false;
      for (OccId cur = o.parent;
           cur != mct::kInvalidOcc && cur < schema_.num_occurrences();
           cur = schema_.occ(cur).parent) {
        if (++steps > schema_.num_occurrences()) {
          cyclic = true;
          break;
        }
      }
      if (cyclic) {
        report_->Error("SCH002", OccLoc(o),
                       "occurrence is part of a parent-link cycle — the "
                       "color's edge set is not a tree");
        break;  // one cycle report covers all members
      }
    }
  }

  /// Orphan node types: the schema must give every ER node at least one
  /// occurrence, or its instances have nowhere to live.
  void CheckCoverage() {
    std::vector<bool> covered(schema_.diagram().num_nodes(), false);
    for (const SchemaOcc& o : schema_.occurrences()) {
      if (o.er_node < covered.size()) covered[o.er_node] = true;
    }
    for (er::NodeId n = 0; n < covered.size(); ++n) {
      if (!covered[n]) {
        report_->Error(
            "SCH004", "schema " + schema_.name(),
            StringPrintf("ER node '%s' has no occurrence in any color",
                         NodeName(n).c_str()),
            "add an occurrence (any color) or drop the node type");
      }
    }
  }

  void CheckRefEdges() {
    for (size_t i = 0; i < schema_.ref_edges().size(); ++i) {
      const mct::RefEdge& ref = schema_.ref_edges()[i];
      std::string loc = StringPrintf("ref edge %zu (@%s)", i,
                                     ref.attr_name.c_str());
      if (ref.from >= schema_.num_occurrences()) {
        report_->Error("SCH005", loc,
                       "ref edge hangs off a nonexistent occurrence");
        continue;
      }
      if (ref.er_edge >= schema_.graph().num_edges()) {
        report_->Error("SCH005", loc,
                       "ref edge stands in for a nonexistent ER edge");
        continue;
      }
      if (ref.target >= schema_.diagram().num_nodes()) {
        report_->Error("SCH005", loc,
                       "ref edge targets a nonexistent ER node type");
        continue;
      }
      const er::ErEdge& e = schema_.graph().edge(ref.er_edge);
      if (e.rel != ref.target && e.node != ref.target) {
        report_->Error(
            "SCH005", loc,
            StringPrintf("target '%s' is not an endpoint of ER edge %s--%s",
                         NodeName(ref.target).c_str(),
                         NodeName(e.rel).c_str(), NodeName(e.node).c_str()));
      }
    }
  }

  void CheckIcics(const std::vector<Icic>& icics) {
    for (size_t i = 0; i < icics.size(); ++i) {
      const Icic& icic = icics[i];
      std::string loc = StringPrintf("ICIC %zu", i);
      if (icic.er_edge >= schema_.graph().num_edges()) {
        report_->Error("SCH011", loc,
                       "constrains a nonexistent ER edge");
        continue;
      }
      const er::ErEdge& e = schema_.graph().edge(icic.er_edge);
      loc = StringPrintf("ICIC %zu (%s--%s)", i, NodeName(e.rel).c_str(),
                         NodeName(e.node).c_str());
      for (ColorId c : icic.colors) {
        if (c >= schema_.num_colors()) {
          report_->Error(
              "SCH010", loc,
              StringPrintf("references nonexistent color %u (schema has "
                           "%zu colors)",
                           unsigned(c), schema_.num_colors()),
              "drop the dangling color or add the missing tree");
        }
      }
      std::set<ColorId> realization_colors;
      for (OccId r : icic.realizations) {
        if (r >= schema_.num_occurrences()) {
          report_->Error("SCH011", loc,
                         StringPrintf("realization references nonexistent "
                                      "occurrence %u",
                                      r));
          continue;
        }
        const SchemaOcc& o = schema_.occ(r);
        if (o.is_root() || o.via_edge != icic.er_edge) {
          report_->Error(
              "SCH011", loc,
              StringPrintf("occurrence %u does not realize the constrained "
                           "edge",
                           r));
          continue;
        }
        realization_colors.insert(o.color);
      }
      if (realization_colors.size() < 2) {
        report_->Error(
            "SCH012", loc,
            StringPrintf("constrains realizations in %zu distinct color(s); "
                         "an inter-color constraint needs at least 2",
                         realization_colors.size()),
            "single-color realizations need no ICIC — remove it");
      }
    }
    CheckIcicAcyclicity(icics);
  }

  /// SCH013: orient each constrained edge by its realized parent->child
  /// direction over node types; edges realized in both directions impose
  /// no net orientation and are skipped. The remaining arcs must be
  /// acyclic, or ICIC repair has no topological order.
  void CheckIcicAcyclicity(const std::vector<Icic>& icics) {
    const size_t num_nodes = schema_.diagram().num_nodes();
    // arc: parent type -> child type, one per strictly oriented edge.
    std::map<er::EdgeId, std::pair<std::set<std::pair<er::NodeId, er::NodeId>>,
                                   bool>>
        per_edge;  // (directions seen, any invalid)
    for (const Icic& icic : icics) {
      for (OccId r : icic.realizations) {
        if (r >= schema_.num_occurrences()) continue;
        const SchemaOcc& o = schema_.occ(r);
        if (o.is_root() || o.parent >= schema_.num_occurrences()) continue;
        const SchemaOcc& p = schema_.occ(o.parent);
        if (p.er_node >= num_nodes || o.er_node >= num_nodes) continue;
        per_edge[icic.er_edge].first.insert({p.er_node, o.er_node});
      }
    }
    std::vector<std::vector<er::NodeId>> adj(num_nodes);
    std::map<std::pair<er::NodeId, er::NodeId>, er::EdgeId> arc_edge;
    for (const auto& [edge, info] : per_edge) {
      const auto& dirs = info.first;
      if (dirs.size() != 1) continue;  // both orientations (or none): no arc
      auto [from, to] = *dirs.begin();
      adj[from].push_back(to);
      arc_edge[{from, to}] = edge;
    }
    // Iterative DFS cycle detection with path recovery.
    std::vector<int> state(num_nodes, 0);  // 0 white, 1 gray, 2 black
    std::vector<er::NodeId> path;
    for (er::NodeId start = 0; start < num_nodes; ++start) {
      if (state[start] != 0) continue;
      if (FindCycle(start, adj, &state, &path)) {
        std::string cycle;
        for (er::NodeId n : path) {
          if (!cycle.empty()) cycle += " -> ";
          cycle += NodeName(n);
        }
        cycle += " -> " + NodeName(path.front());
        report_->Error(
            "SCH013", "schema " + schema_.name(),
            "cyclic ICIC dependency: " + cycle,
            "break the cycle by realizing one edge in a single color or "
            "as a ref edge");
        return;  // one cycle is enough evidence
      }
    }
  }

  bool FindCycle(er::NodeId start,
                 const std::vector<std::vector<er::NodeId>>& adj,
                 std::vector<int>* state, std::vector<er::NodeId>* path) {
    struct Frame {
      er::NodeId node;
      size_t next = 0;
    };
    std::vector<Frame> stack{{start, 0}};
    (*state)[start] = 1;
    path->assign(1, start);
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next < adj[f.node].size()) {
        er::NodeId to = adj[f.node][f.next++];
        if ((*state)[to] == 1) {
          // Trim the recorded path to the cycle itself.
          auto it = std::find(path->begin(), path->end(), to);
          path->erase(path->begin(), it);
          return true;
        }
        if ((*state)[to] == 0) {
          (*state)[to] = 1;
          stack.push_back({to, 0});
          path->push_back(to);
        }
      } else {
        (*state)[f.node] = 2;
        stack.pop_back();
        path->pop_back();
      }
    }
    return false;
  }

  /// Re-derive NN/EN/AR/DR from the association graph and flag any
  /// property the schema advertises but does not hold.
  void CheckClaims(const NormalFormClaims& claims) {
    std::string loc = "schema " + schema_.name();
    std::string violation;
    if (claims.node_normal && !schema_.IsNodeNormal(&violation)) {
      report_->Error("SCH020", loc,
                     "claims node normal form but is not: " + violation);
    }
    if (claims.edge_normal && !schema_.IsEdgeNormal(&violation)) {
      report_->Error("SCH021", loc,
                     "claims edge normal form but is not: " + violation);
    }
    if (claims.association_recoverable &&
        !design::IsAssociationRecoverable(schema_)) {
      report_->Error(
          "SCH022", loc,
          "claims association recoverability but some ER edge has no "
          "structural realization (or a node type is uncovered)");
    }
    if (claims.fully_direct_recoverable) {
      auto paths = design::EnumerateEligiblePaths(schema_.graph());
      design::RecoverabilityReport rec =
          design::AnalyzeRecoverability(schema_, paths);
      if (!rec.fully_direct()) {
        report_->Error(
            "SCH023", loc,
            StringPrintf("claims full direct recoverability but only "
                         "%zu/%zu eligible paths are direct",
                         rec.directly_recoverable, rec.eligible_paths));
      }
    }
  }

  const MctSchema& schema_;
  const SchemaLintOptions& options_;
  DiagnosticReport* report_;
  std::vector<Icic> computed_icics_;
};

}  // namespace

DiagnosticReport LintSchema(const MctSchema& schema,
                            const SchemaLintOptions& options) {
  DiagnosticReport report(options.max_diagnostics);
  SchemaLinter linter(schema, options, &report);
  linter.Run();
  return report;
}

}  // namespace mctdb::analysis
