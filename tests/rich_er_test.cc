#include "er/rich_er.h"

#include <gtest/gtest.h>

#include "design/algorithm_dumc.h"
#include "design/recoverability.h"

namespace mctdb::er {
namespace {

TEST(RichErTest, BinaryPassesThrough) {
  RichErDiagram rich;
  rich.name = "t";
  rich.entities = {{"a", {{"id", AttrType::kString, true, false, {}}}},
                   {"b", {}}};
  RichRelationship r;
  r.name = "r";
  r.endpoints = {{"a", "", Participation::kMany, Totality::kPartial},
                 {"b", "", Participation::kOne, Totality::kTotal}};
  rich.relationships.push_back(r);
  auto simple = Simplify(rich);
  ASSERT_TRUE(simple.ok()) << simple.status().ToString();
  EXPECT_EQ(simple->num_entities(), 2u);
  EXPECT_EQ(simple->num_relationships(), 1u);
  const ErNode& rel = simple->node(*simple->FindNode("r"));
  EXPECT_EQ(rel.endpoints[0].participation, Participation::kMany);
  EXPECT_EQ(rel.endpoints[1].totality, Totality::kTotal);
}

TEST(RichErTest, CompositeAttributesFlatten) {
  RichErDiagram rich;
  rich.name = "t";
  RichEntity person;
  person.name = "person";
  RichAttribute address;
  address.name = "address";
  address.components = {
      {"street", AttrType::kString, false, false, {}},
      {"zip", AttrType::kInt, false, false, {}},
  };
  person.attributes = {{"id", AttrType::kString, true, false, {}}, address};
  rich.entities.push_back(person);
  SimplifyReport report;
  auto simple = Simplify(rich, &report);
  ASSERT_TRUE(simple.ok());
  EXPECT_EQ(report.composite_flattened, 1u);
  const ErNode& p = simple->node(*simple->FindNode("person"));
  ASSERT_EQ(p.attributes.size(), 3u);
  EXPECT_EQ(p.attributes[1].name, "address_street");
  EXPECT_EQ(p.attributes[2].name, "address_zip");
  EXPECT_EQ(p.attributes[2].type, AttrType::kInt);
}

TEST(RichErTest, MultivaluedBecomesSatelliteEntity) {
  RichErDiagram rich;
  rich.name = "t";
  RichEntity person;
  person.name = "person";
  person.attributes = {{"id", AttrType::kString, true, false, {}},
                       {"phone", AttrType::kString, false, true, {}}};
  rich.entities.push_back(person);
  SimplifyReport report;
  auto simple = Simplify(rich, &report);
  ASSERT_TRUE(simple.ok()) << simple.status().ToString();
  EXPECT_EQ(report.multivalued_extracted, 1u);
  auto sat = simple->FindNode("person_phone");
  ASSERT_TRUE(sat.has_value());
  auto rel = simple->FindNode("has_person_phone");
  ASSERT_TRUE(rel.has_value());
  const ErNode& r = simple->node(*rel);
  // person 1:N person_phone, total on the satellite.
  EXPECT_EQ(r.endpoints[0].participation, Participation::kMany);
  EXPECT_EQ(r.endpoints[1].totality, Totality::kTotal);
}

TEST(RichErTest, TernaryDecomposes) {
  // supply(supplier, part, project) — the textbook ternary.
  RichErDiagram rich;
  rich.name = "t";
  rich.entities = {{"supplier", {}}, {"part", {}}, {"project", {}}};
  RichRelationship supply;
  supply.name = "supply";
  supply.endpoints = {{"supplier", "", Participation::kMany, {}},
                      {"part", "", Participation::kMany, {}},
                      {"project", "", Participation::kMany, {}}};
  supply.attributes = {{"qty", AttrType::kInt, false, false, {}}};
  rich.relationships.push_back(supply);
  SimplifyReport report;
  auto simple = Simplify(rich, &report);
  ASSERT_TRUE(simple.ok()) << simple.status().ToString();
  EXPECT_EQ(report.nary_decomposed, 1u);
  // supply reified as an entity with the qty attribute + 3 binary rels.
  const ErNode& reified = simple->node(*simple->FindNode("supply"));
  EXPECT_TRUE(reified.is_entity());
  EXPECT_EQ(simple->num_relationships(), 3u);
  ErGraph g(*simple);
  EXPECT_TRUE(g.IsForest());
}

TEST(RichErTest, RecursiveRelationshipGetsRoles) {
  // supervision(employee supervisor, employee supervisee).
  RichErDiagram rich;
  rich.name = "t";
  rich.entities = {{"employee", {{"id", AttrType::kString, true, false, {}}}}};
  RichRelationship sup;
  sup.name = "supervision";
  sup.endpoints = {{"employee", "supervisor", Participation::kMany, {}},
                   {"employee", "supervisee", Participation::kOne, {}}};
  rich.relationships.push_back(sup);
  SimplifyReport report;
  auto simple = Simplify(rich, &report);
  ASSERT_TRUE(simple.ok()) << simple.status().ToString();
  EXPECT_EQ(report.recursive_decomposed, 1u);
  EXPECT_TRUE(simple->FindNode("supervision_supervisor").has_value());
  EXPECT_TRUE(simple->FindNode("supervision_supervisee").has_value());
  EXPECT_TRUE(simple->Validate().ok());
}

TEST(RichErTest, SimplifiedDiagramIsDesignable) {
  // End to end: rich -> simplified -> DUMC satisfies Theorem 5.2.
  RichErDiagram rich;
  rich.name = "company";
  rich.entities = {
      {"employee",
       {{"id", AttrType::kString, true, false, {}},
        {"skill", AttrType::kString, false, true, {}}}},
      {"department", {{"id", AttrType::kString, true, false, {}}}},
      {"project", {{"id", AttrType::kString, true, false, {}}}},
  };
  RichRelationship works;
  works.name = "works_on";
  works.endpoints = {{"employee", "", Participation::kMany, {}},
                     {"project", "", Participation::kMany, {}},
                     {"department", "", Participation::kMany, {}}};
  rich.relationships.push_back(works);
  RichRelationship managed;
  managed.name = "manages";
  managed.endpoints = {{"department", "", Participation::kOne, {}},
                       {"employee", "", Participation::kOne, {}}};
  rich.relationships.push_back(managed);

  auto simple = Simplify(rich);
  ASSERT_TRUE(simple.ok()) << simple.status().ToString();
  ErGraph graph(*simple);
  mct::MctSchema dr = design::AlgorithmDumc(graph);
  EXPECT_TRUE(dr.IsNodeNormal());
  auto report = design::AnalyzeRecoverability(
      dr, design::EnumerateEligiblePaths(graph));
  EXPECT_TRUE(report.fully_direct());
}

TEST(RichErTest, ErrorsSurfaceCleanly) {
  RichErDiagram rich;
  rich.name = "t";
  rich.entities = {{"a", {}}};
  RichRelationship r;
  r.name = "r";
  r.endpoints = {{"a", "", Participation::kOne, {}}};
  rich.relationships.push_back(r);
  EXPECT_TRUE(Simplify(rich).status().IsInvalidArgument());

  rich.relationships[0].endpoints.push_back(
      {"ghost", "", Participation::kOne, {}});
  EXPECT_TRUE(Simplify(rich).status().IsInvalidArgument());
}

}  // namespace
}  // namespace mctdb::er
