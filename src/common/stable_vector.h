// StableVector<T>: an append-only sequence whose element references stay
// valid forever and whose readers never block.
//
// The write path (DESIGN.md §13) appends elements, attribute vectors, and
// dictionary strings to a store while snapshot readers keep scanning it.
// std::vector cannot serve that role: push_back reallocates and invalidates
// every concurrent reader's reference. StableVector stores elements in
// fixed-size chunks that are never moved; only the small chunk-pointer
// table grows, and it is republished atomically (the superseded tables are
// retired, not freed, so a reader holding the old table stays safe).
//
// Concurrency contract: ONE writer (external synchronization), any number
// of readers. A reader must only access indexes below a size() it observed:
// the writer constructs the element fully, then publishes the new size with
// a release store, so size() (acquire) is the visibility fence.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

namespace mctdb {

template <typename T>
class StableVector {
 public:
  static constexpr size_t kChunkBits = 9;  // 512 elements per chunk
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;

  StableVector() = default;
  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;

  size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  const T& operator[](size_t i) const { return *Slot(i); }
  T& operator[](size_t i) { return *Slot(i); }
  const T& back() const { return (*this)[size() - 1]; }

  /// Writer-only. Returns a reference that stays valid for the container's
  /// lifetime.
  T& push_back(T value) {
    T& slot = AppendSlot();
    slot = std::move(value);
    Publish();
    return slot;
  }
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    T& slot = AppendSlot();
    slot = T(std::forward<Args>(args)...);
    Publish();
    return slot;
  }

  /// Index-based iteration (enough for range-for over a quiescent or
  /// snapshot-bounded container).
  class const_iterator {
   public:
    const_iterator(const StableVector* v, size_t i) : v_(v), i_(i) {}
    const T& operator*() const { return (*v_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const StableVector* v_;
    size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }

 private:
  struct Table {
    std::vector<T*> chunks;
  };

  const T* Slot(size_t i) const {
    const Table* t = table_.load(std::memory_order_acquire);
    return &t->chunks[i >> kChunkBits][i & (kChunkSize - 1)];
  }
  T* Slot(size_t i) {
    return const_cast<T*>(static_cast<const StableVector*>(this)->Slot(i));
  }

  T& AppendSlot() {
    size_t i = size_.load(std::memory_order_relaxed);  // single writer
    size_t chunk = i >> kChunkBits;
    Table* t = table_.load(std::memory_order_relaxed);
    if (t == nullptr || chunk >= t->chunks.size()) {
      chunk_storage_.push_back(std::make_unique<T[]>(kChunkSize));
      auto grown = std::make_unique<Table>();
      if (t != nullptr) grown->chunks = t->chunks;
      grown->chunks.push_back(chunk_storage_.back().get());
      table_.store(grown.get(), std::memory_order_release);
      retired_.push_back(std::move(grown));
      t = retired_.back().get();
    }
    return t->chunks[chunk][i & (kChunkSize - 1)];
  }

  void Publish() {
    size_.store(size_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  std::atomic<size_t> size_{0};
  std::atomic<Table*> table_{nullptr};
  /// Every table ever published, newest last; old tables stay alive for
  /// readers that loaded them before a growth step.
  std::vector<std::unique_ptr<Table>> retired_;
  std::vector<std::unique_ptr<T[]>> chunk_storage_;
};

}  // namespace mctdb
