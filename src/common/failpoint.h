// Failpoints: named fault-injection sites for chaos testing.
//
// Production code marks a fallible seam with a call like
//
//   switch (MCTDB_FAILPOINT("pager.read")) {
//     case failpoint::Fault::kError:    ... inject a read fault ...
//     case failpoint::Fault::kTruncate: ... behave as if bytes are missing ...
//     case failpoint::Fault::kNone:     break;
//   }
//
// and tests (or the MCTDB_FAILPOINTS environment variable, parsed once at
// startup) arm the site with an action:
//
//   MCTDB_FAILPOINTS="pager.read=err(0.01);persist.load=trunc"
//
// Spec grammar: `name=action` pairs separated by ';'. Actions:
//   err[(p)]    with probability p (default 1.0) the site sees kError
//   trunc[(p)]  with probability p (default 1.0) the site sees kTruncate
//   enospc[(p)] with probability p the site sees kEnospc — the errno-faithful
//               "No space left on device" fault; disk-fault sites map it to
//               the exact status a real ENOSPC write/fsync would produce
//   eio[(p)]    with probability p the site sees kEio — errno-faithful EIO
//               ("Input/output error"), the unrecoverable media fault
//   delay(ms)   sleep ms milliseconds inside Evaluate, then report kNone
//   panic       abort the process at the site (crash-safety testing)
//   off         explicitly disarm the site
//
// What kError/kTruncate *mean* is defined by each site and documented in
// the failpoint catalog (DESIGN.md §12) — e.g. at "pager.read" kError means
// "the read transferred corrupt bytes", which the page checksum then
// catches, exercising the real recovery path rather than a shortcut.
//
// Cost when unarmed: one relaxed atomic load (the MCTDB_FAILPOINT macro
// checks a global armed-site count before touching the registry). All
// registry operations are thread-safe; Evaluate takes a mutex only when at
// least one site is armed.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace mctdb::failpoint {

/// What an armed failpoint tells its site to do. Delays and panics are
/// executed inside Evaluate itself; only the faults that need site-specific
/// semantics are returned. kEnospc/kEio are errno-faithful disk faults:
/// sites that model real I/O surface them as the status a genuine
/// ENOSPC/EIO from the kernel would produce (and degrade accordingly —
/// ENOSPC is re-probeable once space recovers, EIO is sticky).
enum class Fault { kNone = 0, kError, kTruncate, kEnospc, kEio };

namespace internal {
extern std::atomic<int> g_armed_count;
/// Slow path: look up `name` in the registry, roll the probability dice,
/// perform delay/panic actions, bump the hit counter. Never called while
/// no site is armed.
Fault EvaluateSlow(std::string_view name);
}  // namespace internal

/// True iff at least one failpoint is currently armed.
inline bool AnyArmed() {
  return internal::g_armed_count.load(std::memory_order_relaxed) > 0;
}

/// Evaluate the named site: kNone unless armed and the dice say otherwise.
inline Fault Evaluate(std::string_view name) {
  if (!AnyArmed()) return Fault::kNone;
  return internal::EvaluateSlow(name);
}

/// Parse a spec string (see grammar above) and arm/disarm the named sites.
/// Sites not mentioned keep their current configuration. Returns false and
/// sets *error on a malformed spec (registry unchanged in that case).
bool Configure(std::string_view spec, std::string* error);

/// Arm a single site from an action string, e.g. Arm("pager.read",
/// "err(0.5)"). Returns false and sets *error on a malformed action.
bool Arm(std::string_view name, std::string_view action, std::string* error);

/// Disarm one site / all sites.
void Disarm(std::string_view name);
void DisarmAll();

/// How many times the named site evaluated to a non-kNone fault (delays
/// count too). For test assertions and the chaos-CI sanity check.
uint64_t HitCount(std::string_view name);

/// Current action string for `name` ("" if unarmed). Used by FailpointGuard
/// to restore prior state.
std::string CurrentAction(std::string_view name);

/// Observer invoked (with the site name) every time an armed site fires —
/// after the hit is counted, before the action executes, so even a `panic`
/// site's last act is observable. The flight recorder installs one; nullptr
/// uninstalls. The observer must be cheap and must not evaluate failpoints.
using HitObserver = void (*)(std::string_view name);
void SetHitObserver(HitObserver observer);

/// RAII guard for tests: arms `name` with `action` on construction and
/// restores the site's *previous* configuration on destruction (it does not
/// blanket-disarm, so an environment-armed chaos spec survives test guards).
/// Malformed actions abort via MCTDB_CHECK — guards are test-only.
class FailpointGuard {
 public:
  FailpointGuard(std::string_view name, std::string_view action);
  ~FailpointGuard();

  FailpointGuard(const FailpointGuard&) = delete;
  FailpointGuard& operator=(const FailpointGuard&) = delete;

 private:
  std::string name_;
  std::string previous_;  // previous action string, "" = was unarmed
};

}  // namespace mctdb::failpoint

/// The site marker. Evaluates to failpoint::Fault; one relaxed atomic load
/// when nothing is armed anywhere.
#define MCTDB_FAILPOINT(name) (::mctdb::failpoint::Evaluate(name))
