// Algorithm MC (paper Fig 7): translate a simplified ER graph into an MCT
// schema satisfying node normal form, edge normal form, and association
// recoverability (Theorem 5.1).
//
// Sketch, faithful to the figure:
//  1. Edges incident on relationship nodes are oriented by participation
//     (MANY participation => directed entity -> relationship); the rest stay
//     undirected. (This lives in er::ErEdge::directed().)
//  2. Pick an unprocessed node from a source SCC of the *residual* graph
//     (the uncolored edges) and open a new color with it as start node.
//  3. Depth-first traverse colorable edges from the one side to the many
//     side, coloring nodes and edges. An edge is colorable iff it is not yet
//     colored (in any color — this yields EN) and its far end either lacks
//     the current color, or is a current root other than the start node (in
//     which case the two trees merge, Fig 7 step 4).
//  4. While some unprocessed source node still has a colorable edge, add it
//     as a further root of the *same* color and continue (a color is a
//     forest).
//  5. Repeat from 2 until every edge is colored.
//
// Color frugality: start nodes are chosen to maximize the number of
// uncolored edges reachable, which keeps the color count at the low end
// (TPC-W: 2 colors, matching the paper's EN schema).
#pragma once

#include <string>

#include "design/constraints.h"
#include "er/er_graph.h"
#include "mct/mct_schema.h"

namespace mctdb::design {

struct McOptions {
  /// AF mode: stop after the first color completes; remaining edges are
  /// left uncolored for the caller to capture as id/idref edges.
  bool single_color = false;
  /// Optional forced start node for the first color (kInvalidNode = pick by
  /// heuristic). Used by DUMC to diversify runs.
  er::NodeId first_start = er::kInvalidNode;
  /// Instance-level disjointness constraints (§3.2 / future work): edges
  /// covered by one constraint may share a color through a second
  /// occurrence of the shared node, yielding fewer colors. The result then
  /// satisfies IsNodeNormalUnder(schema, *constraints) instead of plain
  /// node normal form.
  const ConstraintSet* constraints = nullptr;
};

/// Runs Algorithm MC. The result references `graph`, which must outlive it.
mct::MctSchema AlgorithmMc(const er::ErGraph& graph,
                           std::string schema_name = "EN",
                           const McOptions& options = {});

}  // namespace mctdb::design
