// Posting lists of interval labels, the storage representation behind
// structural joins [Al-Khalifa et al., ICDE'02]: for each (color, element
// tag) the store keeps the tag's elements as (start, end, level) records in
// document order, packed into 8 KB pages and scanned through the buffer
// pool.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/exec_stats.h"
#include "storage/pager.h"

namespace mctdb::storage {

using ElemId = uint32_t;
inline constexpr ElemId kInvalidElem = 0xFFFFFFFFu;

/// One posting record: an element's interval label within one color.
/// 20 bytes; ~409 records per 8 KB page.
struct LabelEntry {
  ElemId elem = kInvalidElem;
  uint32_t start = 0;
  uint32_t end = 0;
  uint16_t level = 0;
  /// Set when this placement is a redundant copy (non-NN schemas); results
  /// produced through copies may need duplicate elimination.
  uint16_t is_copy = 0;
  /// Logical instance id (er-node-scoped), used for duplicate elimination.
  uint32_t logical = 0;

  /// Interval containment: is `this` a proper ancestor of `d`?
  bool Contains(const LabelEntry& d) const {
    return start < d.start && d.end < end;
  }
};
static_assert(sizeof(LabelEntry) == 20);

inline constexpr size_t kEntriesPerPage = kPageSize / sizeof(LabelEntry);

/// Per-page interval summary, the persistent posting index: the first
/// entry's start and the largest end on the page. Starts are strictly
/// increasing within one posting list (document pre-order), so the
/// summaries support both a binary-search front seek to the first
/// qualifying label and mid-scan page skips — a page whose summary proves
/// no entry can satisfy a scan's bounds is never fetched.
struct PostingPageSummary {
  uint32_t first_start = 0;
  uint32_t max_end = 0;
};

/// Qualification bounds for an index-assisted posting scan. Each bound is
/// a NECESSARY condition for an entry to participate in the structural
/// join that requested the scan, so skipping pages (or entries) that a
/// bound rules out can never change a join result:
///   * descendant candidates of a binding need start in
///     (min bound start, max bound end) — start_gt / start_lt;
///   * ancestor candidates need start < max bound start and
///     end > min bound end — start_lt / end_gt.
/// Bounds are hints at PAGE granularity: a scan may still return entries
/// that fail them (the joins ignore non-matching entries anyway).
struct ScanBounds {
  uint32_t start_gt = 0;           ///< keep entries with start > start_gt
  uint32_t start_lt = UINT32_MAX;  ///< keep entries with start < start_lt
  uint32_t end_gt = 0;             ///< keep entries with end > end_gt
};

/// Page-set descriptor of one posting list.
struct PostingMeta {
  std::vector<PageId> pages;
  size_t count = 0;
  /// One summary per page (parallel to `pages`). Built by PostingWriter
  /// and persisted in the store file's own-checksummed "postidx" section;
  /// may be empty for hand-built metas, in which case scans degrade to
  /// plain sequential reads.
  std::vector<PostingPageSummary> summaries;

  size_t num_pages() const { return pages.size(); }
  bool has_index() const { return summaries.size() == pages.size(); }
};

/// Append-only builder; records must arrive in document (start) order.
class PostingWriter {
 public:
  explicit PostingWriter(Pager* pager) : pager_(pager) {}

  void Append(const LabelEntry& entry);
  /// Flushes the tail page and returns the descriptor.
  PostingMeta Finish();

 private:
  Pager* pager_;
  PostingMeta meta_;
  char buffer_[kPageSize];
  size_t in_buffer_ = 0;
  /// Summary of the page being buffered, flushed alongside it.
  PostingPageSummary page_summary_{};
};

/// Sequential scan of a posting list through a page cache (every page
/// touch is a pool fetch, so misses show up in the stats). Holds at most
/// one page pinned at a time; the destructor releases the last pin, so a
/// cursor works unchanged over the concurrent ShardedBufferPool.
///
/// When `stats` is given, every page fetch (and its hit/miss outcome) is
/// charged to it — this is how a query's I/O is attributed to exactly
/// that query even on a pool shared by concurrent sessions.
///
/// Error handling: a page fetch that fails (DataLoss surviving the pool's
/// quarantine) ends the scan — Next returns false and the failure is
/// latched on status(). Callers distinguishing "end of list" from "list
/// unreadable" must check status() after the scan; query-path callers
/// propagate it so storage corruption degrades to a failed query.
class PostingCursor {
 public:
  PostingCursor(PageCache* pool, const PostingMeta* meta,
                obs::ExecStats* stats = nullptr)
      : pool_(pool), meta_(meta), stats_(stats) {}
  ~PostingCursor() { Release(); }

  PostingCursor(const PostingCursor&) = delete;
  PostingCursor& operator=(const PostingCursor&) = delete;
  /// Movable: the pin travels with the cursor, so exactly one of the two
  /// objects releases it.
  PostingCursor(PostingCursor&& other) noexcept
      : pool_(other.pool_), meta_(other.meta_), stats_(other.stats_),
        index_(other.index_), current_page_(other.current_page_),
        current_page_index_(other.current_page_index_),
        status_(std::move(other.status_)) {
    other.current_page_ = nullptr;
    other.current_page_index_ = SIZE_MAX;
  }
  PostingCursor& operator=(PostingCursor&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      meta_ = other.meta_;
      stats_ = other.stats_;
      index_ = other.index_;
      current_page_ = other.current_page_;
      current_page_index_ = other.current_page_index_;
      status_ = std::move(other.status_);
      other.current_page_ = nullptr;
      other.current_page_index_ = SIZE_MAX;
    }
    return *this;
  }

  /// Returns false at end of list — or on a page fetch failure, which
  /// also latches status(). Once failed, further Next calls keep
  /// returning false until Reset.
  bool Next(LabelEntry* out);
  /// Block-at-a-time read: yields the remaining entries of the current
  /// page as one zero-copy span into the pinned frame (one pool fetch and
  /// no per-entry memcpy per page). The span stays valid until the next
  /// cursor call. With bounds applied (and an indexed meta), pages the
  /// summaries prove non-qualifying are skipped without a fetch, and the
  /// scan front-seeks past the prefix below start_gt. Next() and NextSpan
  /// may be interleaved but bounds only take effect on page boundaries.
  bool NextSpan(const LabelEntry** data, size_t* count);
  /// Installs index-assisted scan bounds. Call before the first read;
  /// a meta without summaries ignores them (plain sequential scan).
  void ApplyBounds(const ScanBounds& bounds) { bounds_ = bounds; }
  void Reset() {
    Release();
    index_ = 0;
    status_ = Status::OK();
  }
  size_t remaining() const { return meta_->count - index_; }
  /// OK unless a page fetch failed during the scan.
  const Status& status() const { return status_; }

 private:
  void Release();
  /// Advances index_ past pages the summaries rule out under bounds_,
  /// charging one index seek per contiguous skip run. Returns false when
  /// the early-stop bound proves the rest of the list non-qualifying.
  bool SkipRuledOutPages();

  PageCache* pool_;
  const PostingMeta* meta_;
  obs::ExecStats* stats_ = nullptr;
  size_t index_ = 0;
  ScanBounds bounds_{};
  const char* current_page_ = nullptr;
  size_t current_page_index_ = SIZE_MAX;
  Status status_;
};

/// A cache-resident column block of decoded interval labels in
/// structure-of-arrays layout: the blocked joins stream their inputs
/// through these, touching only the start/end/level columns on the
/// comparison-heavy paths. Sized to one posting page (~8 KB of columns),
/// so a block stays L1/L2 resident while a join works through it.
struct LabelBlock {
  static constexpr size_t kCapacity = kEntriesPerPage;
  size_t size = 0;
  uint32_t start[kCapacity];
  uint32_t end[kCapacity];
  uint16_t level[kCapacity];
  ElemId elem[kCapacity];
  uint16_t is_copy[kCapacity];
  uint32_t logical[kCapacity];

  void Clear() { size = 0; }
  /// Decodes `n` consecutive entries (n <= kCapacity) into the columns.
  void Fill(const LabelEntry* entries, size_t n) {
    size = n;
    for (size_t i = 0; i < n; ++i) {
      start[i] = entries[i].start;
      end[i] = entries[i].end;
      level[i] = entries[i].level;
      elem[i] = entries[i].elem;
      is_copy[i] = entries[i].is_copy;
      logical[i] = entries[i].logical;
    }
  }
  /// Reassembles one row (for outputs that need the full record).
  LabelEntry Get(size_t i) const {
    LabelEntry e;
    e.elem = elem[i];
    e.start = start[i];
    e.end = end[i];
    e.level = level[i];
    e.is_copy = is_copy[i];
    e.logical = logical[i];
    return e;
  }
};

/// Reads a whole posting list into memory (through the pool), charging
/// `stats` when given. A fetch failure mid-scan is reported through
/// `out_status` (the returned vector holds the entries read so far); when
/// `out_status` is null a failure aborts, matching the convenience Fetch
/// contract for callers on storage they trust.
std::vector<LabelEntry> ReadAll(PageCache* pool, const PostingMeta& meta,
                                obs::ExecStats* stats = nullptr,
                                Status* out_status = nullptr);

}  // namespace mctdb::storage
