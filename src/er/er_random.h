// Random simplified-ER-diagram generator for property tests (Theorems 4.1,
// 5.1, 5.2 sweeps) and for the algorithm-scaling ablation benches.
#pragma once

#include "common/random.h"
#include "er/er_model.h"

namespace mctdb::er {

struct RandomErOptions {
  size_t num_entities = 8;
  size_t num_relationships = 10;
  /// Probability weights of each relationship cardinality class.
  double p_many_many = 0.2;
  double p_one_one = 0.2;  // remainder is 1:N
  /// Probability that a relationship endpoint is a lower-order relationship
  /// (higher-order relationship types, §4.1 footnote).
  double p_higher_order = 0.0;
  /// Probability a 1:N endpoint's many side is totally participating.
  double p_total = 0.3;
  /// If true, every node is connected to node 0's component when possible.
  bool ensure_connected = true;
};

/// Generates a valid simplified ER diagram. Deterministic given `rng` state.
ErDiagram GenerateRandomEr(Rng* rng, const RandomErOptions& options);

}  // namespace mctdb::er
