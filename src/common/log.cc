#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <utility>

#include "common/string_util.h"

namespace mctdb::logging {

namespace {

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += char(c);
        }
    }
  }
  out += '"';
  return out;
}

std::atomic<int> g_min_level{-1};  // -1 = not yet initialized from env

int InitMinLevelFromEnv() {
  Level level = Level::kWarn;
  if (const char* env = std::getenv("MCTDB_LOG_LEVEL")) {
    level = ParseLevel(env, Level::kWarn);
  }
  int as_int = static_cast<int>(level);
  int expected = -1;
  g_min_level.compare_exchange_strong(expected, as_int);
  return g_min_level.load(std::memory_order_relaxed);
}

std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

Sink& SinkSlot() {
  static Sink* sink = new Sink();
  return *sink;
}

}  // namespace

const char* ToString(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "unknown";
}

Level ParseLevel(std::string_view s, Level fallback) {
  std::string lower = ToLower(s);
  if (lower == "debug") return Level::kDebug;
  if (lower == "info") return Level::kInfo;
  if (lower == "warn" || lower == "warning") return Level::kWarn;
  if (lower == "error") return Level::kError;
  if (lower == "off" || lower == "none") return Level::kOff;
  return fallback;
}

Field::Field(std::string_view k, std::string_view v)
    : key(k), value(JsonQuote(v)) {}
Field::Field(std::string_view k, const char* v)
    : key(k), value(JsonQuote(v == nullptr ? "" : v)) {}
Field::Field(std::string_view k, const std::string& v)
    : key(k), value(JsonQuote(v)) {}
Field::Field(std::string_view k, double v) : key(k) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  value = buf;
}
Field::Field(std::string_view k, bool v)
    : key(k), value(v ? "true" : "false") {}
Field::Field(std::string_view k, uint64_t v)
    : key(k), value(std::to_string(v)) {}
Field::Field(std::string_view k, int64_t v)
    : key(k), value(std::to_string(v)) {}

Level MinLevel() {
  int v = g_min_level.load(std::memory_order_relaxed);
  if (v < 0) v = InitMinLevelFromEnv();
  return static_cast<Level>(v);
}

void SetMinLevel(Level level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

std::string FormatLine(Level level, std::string_view component,
                       std::string_view message,
                       const std::vector<Field>& fields,
                       int64_t unix_nanos) {
  std::time_t secs = static_cast<std::time_t>(unix_nanos / 1000000000);
  int millis = static_cast<int>((unix_nanos / 1000000) % 1000);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char ts[64];
  std::snprintf(ts, sizeof(ts), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
  std::string out = "{\"ts\":\"";
  out += ts;
  out += "\",\"level\":\"";
  out += ToString(level);
  out += "\",\"component\":";
  out += JsonQuote(component);
  out += ",\"msg\":";
  out += JsonQuote(message);
  for (const Field& f : fields) {
    out += ',';
    out += JsonQuote(f.key);
    out += ':';
    out += f.value;
  }
  out += '}';
  return out;
}

void Log(Level level, std::string_view component, std::string_view message,
         std::vector<Field> fields) {
  if (!Enabled(level) || level == Level::kOff) return;
  int64_t nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  std::string line = FormatLine(level, component, message, fields, nanos);
  std::lock_guard<std::mutex> lock(SinkMutex());
  const Sink& sink = SinkSlot();
  if (sink) {
    sink(line);
  } else {
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace mctdb::logging
