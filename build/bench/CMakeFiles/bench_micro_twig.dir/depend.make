# Empty dependencies file for bench_micro_twig.
# This may be replaced when dependencies are built.
