// ThreadPool: a fixed-size worker pool over a BoundedQueue of closures.
// Destruction drains every queued task before joining, so work submitted
// from inside a running task (continuation-style scheduling, as the mctsvc
// session strands do) is always executed.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"

namespace mctdb {

class ThreadPool {
 public:
  struct Options {
    size_t num_threads = 4;
    /// Queue bound for TrySubmit/Submit; 0 = unbounded.
    size_t max_queue = 0;
    /// Start with the workers parked; Resume() releases them. Lets an
    /// embedder stage a batch of work deterministically before execution.
    bool start_paused = false;
  };

  explicit ThreadPool(size_t num_threads)
      : ThreadPool(Options{num_threads, 0, false}) {}
  explicit ThreadPool(const Options& options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn`; blocks while a bounded queue is full. Returns false
  /// only after shutdown began.
  bool Submit(std::function<void()> fn);
  /// Non-blocking enqueue; false when the queue is full or shut down.
  bool TrySubmit(std::function<void()> fn);

  /// Releases workers of a start_paused pool (idempotent).
  void Resume();

  size_t num_threads() const { return workers_.size(); }
  size_t queue_depth() const { return queue_.size(); }

 private:
  void WorkerLoop();

  BoundedQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace mctdb
