// Rendering MCT schemas as conventional schema artifacts:
//   * a DTD-like content-model listing per color (element declarations with
//     ?, *, + occurrence markers and idref attributes), and
//   * a GraphViz dot rendering of the colored forests (one cluster per
//     color, ICIC-constrained edges dashed) — handy for eyeballing our
//     regenerated Fig 5.
#pragma once

#include <string>

#include "mct/mct_schema.h"

namespace mctdb::mct {

/// DTD-flavored text: one ELEMENT declaration per occurrence's content
/// model per color, ATTLIST lines for keys, data attributes and idrefs.
std::string ExportDtd(const MctSchema& schema);

/// GraphViz source: subgraph cluster per color; nodes labeled with the ER
/// type; edges labeled with occurrence cardinality; ref edges dotted.
std::string ExportDot(const MctSchema& schema);

}  // namespace mctdb::mct
