file(REMOVE_RECURSE
  "CMakeFiles/planner_collection_test.dir/planner_collection_test.cc.o"
  "CMakeFiles/planner_collection_test.dir/planner_collection_test.cc.o.d"
  "planner_collection_test"
  "planner_collection_test.pdb"
  "planner_collection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_collection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
