#include "instance/xml_export.h"

#include <gtest/gtest.h>

#include "design/designer.h"
#include "instance/materialize.h"
#include "workload/workload.h"
#include "xml/xml_io.h"

namespace mctdb::instance {
namespace {

using design::Strategy;

struct Fixture {
  workload::Workload w = workload::TpcwWorkload(0.03);
  er::ErGraph graph{w.diagram};
  design::Designer designer{graph};
  LogicalInstance logical = GenerateInstance(graph, w.gen);

  std::unique_ptr<storage::MctStore> Store(Strategy s) {
    schema = std::make_unique<mct::MctSchema>(designer.Design(s));
    return Materialize(logical, *schema);
  }
  std::unique_ptr<mct::MctSchema> schema;
};

TEST(XmlExportTest, ExportsEveryElementOfColorOnce) {
  Fixture f;
  auto store = f.Store(Strategy::kEn);
  for (mct::ColorId c = 0; c < f.schema->num_colors(); ++c) {
    auto doc = ExportColorXml(*store, c);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_EQ((*doc)->SubtreeSize() - 1, store->ColorEntries(c).size());
  }
}

TEST(XmlExportTest, SharedNodeIdsAppearInBothColors) {
  Fixture f;
  auto store = f.Store(Strategy::kEn);
  ASSERT_EQ(f.schema->num_colors(), 2u);
  auto blue = ExportColorXml(*store, 0);
  auto red = ExportColorXml(*store, 1);
  ASSERT_TRUE(blue.ok() && red.ok());
  // Collect _nid sets; an address element must appear in both documents
  // with the same node id (stored once, two colors).
  std::set<std::string> blue_ids, red_ids;
  std::function<void(const xml::XmlNode&, std::set<std::string>*)> collect =
      [&](const xml::XmlNode& n, std::set<std::string>* out) {
        if (n.tag() == "address") {
          const std::string* id = n.FindAttr("_nid");
          ASSERT_NE(id, nullptr);
          out->insert(*id);
        }
        for (const auto& ch : n.children()) collect(*ch, out);
      };
  collect(**blue, &blue_ids);
  collect(**red, &red_ids);
  EXPECT_FALSE(blue_ids.empty());
  EXPECT_EQ(blue_ids, red_ids);
}

TEST(XmlExportTest, DigestMatchesBetweenStoreAndDocument) {
  Fixture f;
  auto store = f.Store(Strategy::kDr);
  for (mct::ColorId c = 0; c < f.schema->num_colors(); ++c) {
    auto doc = ExportColorXml(*store, c);
    ASSERT_TRUE(doc.ok());
    ColorDigest from_doc = DigestXml(**doc);
    ColorDigest from_store = DigestColor(*store, c);
    EXPECT_EQ(from_doc.elements, from_store.elements) << "color " << c;
    EXPECT_EQ(from_doc.attributes, from_store.attributes);
    EXPECT_EQ(from_doc.max_depth, from_store.max_depth);
    EXPECT_EQ(from_doc.shape_hash, from_store.shape_hash);
  }
}

TEST(XmlExportTest, WriteParseRoundTripPreservesDigest) {
  Fixture f;
  auto store = f.Store(Strategy::kAf);
  auto doc = ExportColorXml(*store, 0);
  ASSERT_TRUE(doc.ok());
  std::string text = xml::WriteXml(**doc);
  auto reparsed = xml::ParseXml(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ColorDigest a = DigestXml(**doc);
  ColorDigest b = DigestXml(**reparsed);
  EXPECT_EQ(a.elements, b.elements);
  EXPECT_EQ(a.shape_hash, b.shape_hash);
}

TEST(XmlExportTest, ShallowDocumentHasIdrefs) {
  Fixture f;
  auto store = f.Store(Strategy::kShallow);
  auto doc = ExportColorXml(*store, 0);
  ASSERT_TRUE(doc.ok());
  std::string text = xml::WriteXml(**doc, {.pretty = false, .header = false});
  EXPECT_NE(text.find("_idref=\""), std::string::npos);
}

TEST(XmlExportTest, BadColorRejected) {
  Fixture f;
  auto store = f.Store(Strategy::kAf);
  EXPECT_TRUE(ExportColorXml(*store, 7).status().IsInvalidArgument());
}

}  // namespace
}  // namespace mctdb::instance
