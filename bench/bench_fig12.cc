// Fig 12 reproduction: geometric mean of the number of structural joins per
// diagram (ER1..ER10, Derby, TPC-W) per schema (DEEP, AF, SHALLOW, EN,
// MCMR, DR; UNDR excluded exactly as in the paper — "there were too many
// subjective ways in which to unnormalize each schema").
#include "er/er_catalog.h"

#include "bench/bench_util.h"

using namespace mctdb;
using namespace mctdb::bench;

namespace {

std::vector<workload::Workload> CollectionWorkloads() {
  std::vector<workload::Workload> out;
  for (const er::ErDiagram& d : er::EvaluationCollection()) {
    if (d.name() == "Derby") {
      out.push_back(workload::DerbyWorkload());
    } else if (d.name() == "TPC-W") {
      out.push_back(workload::TpcwWorkload(0.01));
    } else {
      out.push_back(workload::XmarkEmulatedWorkload(d));
    }
  }
  return out;
}

const std::vector<design::Strategy> kFigureStrategies = {
    design::Strategy::kDeep, design::Strategy::kAf,
    design::Strategy::kShallow, design::Strategy::kEn,
    design::Strategy::kMcmr, design::Strategy::kDr};

void PrintGrid(const char* title,
               double (*metric)(const workload::CollectionCell&)) {
  std::printf("%s\n\n%-8s", title, "");
  for (design::Strategy s : kFigureStrategies) {
    std::printf("%9s", design::ToString(s));
  }
  std::printf("\n");
  PrintRule(8 + 9 * kFigureStrategies.size());
  auto cells =
      workload::AnalyzeCollection(CollectionWorkloads(), kFigureStrategies);
  size_t per_row = kFigureStrategies.size();
  for (size_t i = 0; i < cells.size(); i += per_row) {
    std::printf("%-8s", cells[i].diagram.c_str());
    for (size_t j = 0; j < per_row; ++j) {
      std::printf("%9.2f", metric(cells[i + j]));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  PrintGrid(
      "=== Fig 12: Geometric mean of number of structural joins, ER "
      "collection ===",
      [](const workload::CollectionCell& c) {
        return c.gmean_structural_joins;
      });
  return 0;
}
