# Empty dependencies file for mctdb_design.
# This may be replaced when dependencies are built.
