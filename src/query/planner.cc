#include "query/planner.h"

#include <algorithm>
#include <functional>
#include <optional>

#include "analysis/plan_verify.h"
#include "analysis/query_analyze.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace mctdb::query {

namespace {

using mct::MctSchema;
using mct::OccId;
using mct::SchemaOcc;

/// One matched occurrence chain for a (sub)path: the sequence of
/// occurrences, top (tree-ancestor) first.
using OccChain = std::vector<OccId>;

/// Is the parent->child occurrence link a fan-out step (one parent
/// instance, many child instances)?
bool IsFanOutLink(const MctSchema& schema, OccId child) {
  const SchemaOcc& c = schema.occ(child);
  const er::ErEdge& e = schema.graph().edge(c.via_edge);
  return c.er_node == e.rel && e.participation == er::Participation::kMany;
}

/// Is it a reverse step (the same child instance shared by many parents —
/// placements duplicate it)?
bool IsReverseLink(const MctSchema& schema, OccId child) {
  const SchemaOcc& c = schema.occ(child);
  const er::ErEdge& e = schema.graph().edge(c.via_edge);
  return c.er_node == e.node && e.participation == er::Participation::kMany;
}

/// Fan-out step strictly above a reverse step within the link sequence =>
/// one logical pair can appear as several element pairs.
bool HasFanOutAboveReverse(const MctSchema& schema,
                           const std::vector<OccId>& links) {
  bool fan_out_seen = false;
  for (OccId link : links) {
    if (IsFanOutLink(schema, link)) fan_out_seen = true;
    if (IsReverseLink(schema, link) && fan_out_seen) return true;
  }
  return false;
}

/// Root-path links of an occurrence (top-down order).
std::vector<OccId> RootPathLinks(const MctSchema& schema, OccId occ) {
  std::vector<OccId> links;
  for (OccId cur = occ; !schema.occ(cur).is_root();
       cur = schema.occ(cur).parent) {
    links.push_back(cur);
  }
  std::reverse(links.begin(), links.end());
  return links;
}

/// All occurrence chains in `color` matching `path` (a node-id sequence)
/// downward from its first element. Chain tops must be root or *clean*
/// occurrences: the materializer completes every logical instance exactly
/// there, so those are the placements guaranteed to cover every
/// association pair (graft/copy occurrences only cover the instances their
/// parent context reaches, and a join anchored at one could silently miss
/// pairs).
std::vector<OccChain> FindChains(const MctSchema& schema, mct::ColorId color,
                                 const er::NodeId* path, size_t len) {
  std::vector<OccChain> out;
  for (const SchemaOcc& o : schema.occurrences()) {
    if (o.color != color || o.er_node != path[0]) continue;
    if (!o.is_root() && !schema.IsCleanOcc(o.id)) continue;
    // DFS over matching children (duplicated occurrences can branch).
    struct Frame {
      OccId occ;
      size_t depth;
    };
    std::vector<OccId> chain{o.id};
    std::vector<Frame> stack{{o.id, 0}};
    // Simple recursive expansion via explicit lambda.
    std::function<void(OccId, size_t)> walk = [&](OccId occ, size_t depth) {
      if (depth + 1 == len) {
        out.push_back(chain);
        return;
      }
      for (OccId child : schema.occ(occ).children) {
        if (schema.occ(child).er_node == path[depth + 1]) {
          chain.push_back(child);
          walk(child, depth + 1);
          chain.pop_back();
        }
      }
    };
    walk(o.id, 0);
  }
  return out;
}

/// Does every ancestor-descendant (top_tag, bottom_tag) occurrence pair in
/// `color` connect via exactly `path`? If yes, a single a-d axis step is
/// unambiguous.
bool AdStepUnambiguous(const MctSchema& schema, mct::ColorId color,
                       const er::NodeId* path, size_t len) {
  er::NodeId top = path[0], bottom = path[len - 1];
  for (const SchemaOcc& ob : schema.occurrences()) {
    if (ob.color != color || ob.er_node != bottom) continue;
    // Walk up; every `top` ancestor must be exactly `len-1` links away with
    // matching intermediate types.
    std::vector<er::NodeId> up{ob.er_node};
    for (OccId cur = ob.parent; cur != mct::kInvalidOcc;
         cur = schema.occ(cur).parent) {
      up.push_back(schema.occ(cur).er_node);
      if (schema.occ(cur).er_node == top) {
        if (up.size() != len) return false;
        for (size_t i = 0; i < len; ++i) {
          if (up[len - 1 - i] != path[i]) return false;
        }
      }
    }
  }
  return true;
}

struct Candidate {
  mct::ColorId color;
  size_t path_end;  // index into the edge path (inclusive)
  bool reversed;
  bool unambiguous;
  bool dup_risk;
};

class EdgePlanner {
 public:
  EdgePlanner(const MctSchema& schema, const PatternNode& node)
      : schema_(schema), path_(node.path_from_parent) {}

  Result<EdgePlan> Plan(int pattern_node_index,
                        std::optional<mct::ColorId> incoming_color,
                        bool* edge_dup_risk,
                        mct::ColorId* out_color) {
    EdgePlan plan;
    plan.pattern_node = pattern_node_index;
    size_t pos = 0;
    std::optional<mct::ColorId> prev_color = incoming_color;
    while (pos + 1 < path_.size()) {
      std::optional<Candidate> best = BestCandidate(pos, prev_color);
      if (!best.has_value()) {
        // Value join: the single edge must be covered by a ref edge.
        er::EdgeId eid = EdgeBetween(path_[pos], path_[pos + 1]);
        bool has_ref = false;
        for (const mct::RefEdge& ref : schema_.ref_edges()) {
          if (ref.er_edge == eid) has_ref = true;
        }
        if (!has_ref) {
          return Status::InvalidArgument(StringPrintf(
              "edge %u-%u neither structural nor ref in schema %s",
              path_[pos], path_[pos + 1], schema_.name().c_str()));
        }
        Segment seg;
        seg.kind = SegmentKind::kValueJoin;
        seg.from_index = pos;
        seg.to_index = pos + 1;
        seg.ref_edge = eid;
        plan.segments.push_back(seg);
        ++pos;
        // A value join re-anchors by value; no crossing is charged and the
        // previous color no longer binds the next segment.
        prev_color.reset();
        continue;
      }
      Segment seg;
      seg.kind = best->unambiguous ? SegmentKind::kAncDesc
                                   : SegmentKind::kStepChain;
      seg.color = best->color;
      seg.from_index = pos;
      seg.to_index = best->path_end;
      seg.reversed = best->reversed;
      seg.num_structural_joins =
          best->unambiguous ? 1 : best->path_end - pos;
      seg.dup_risk = best->dup_risk;
      *edge_dup_risk |= best->dup_risk;
      if (prev_color.has_value() && *prev_color != best->color) {
        ++plan.color_crossings;
      }
      prev_color = best->color;
      plan.segments.push_back(seg);
      pos = best->path_end;
    }
    if (prev_color.has_value()) *out_color = *prev_color;
    return plan;
  }

  /// Color of the first structural segment (for the anchor scan).
  std::optional<mct::ColorId> FirstStructuralColor(const EdgePlan& plan) {
    for (const Segment& seg : plan.segments) {
      if (seg.kind != SegmentKind::kValueJoin) return seg.color;
    }
    return std::nullopt;
  }

 private:
  er::EdgeId EdgeBetween(er::NodeId a, er::NodeId b) const {
    for (er::EdgeId eid : schema_.graph().incident(a)) {
      const er::ErEdge& e = schema_.graph().edge(eid);
      if (e.other(a) == b) return eid;
    }
    MCTDB_CHECK_MSG(false, "path nodes not adjacent in ER graph");
    return er::kInvalidEdge;
  }

  std::optional<Candidate> BestCandidate(
      size_t pos, std::optional<mct::ColorId> prev_color) const {
    std::optional<Candidate> best;
    for (size_t end = path_.size() - 1; end > pos; --end) {
      size_t len = end - pos + 1;
      std::vector<er::NodeId> forward(path_.begin() + pos,
                                      path_.begin() + end + 1);
      std::vector<er::NodeId> backward(forward.rbegin(), forward.rend());
      for (mct::ColorId c = 0; c < schema_.num_colors(); ++c) {
        for (bool reversed : {false, true}) {
          const auto& p = reversed ? backward : forward;
          auto chains = FindChains(schema_, c, p.data(), len);
          if (chains.empty()) continue;
          Candidate cand;
          cand.color = c;
          cand.path_end = end;
          cand.reversed = reversed;
          cand.unambiguous = AdStepUnambiguous(schema_, c, p.data(), len);
          // Duplicate risk: several matched chains, a fan-out-above-reverse
          // inside any chain, or on the chain top's own root path.
          cand.dup_risk = chains.size() > 1;
          for (const OccChain& chain : chains) {
            std::vector<OccId> links(chain.begin() + 1, chain.end());
            std::vector<OccId> context = RootPathLinks(schema_, chain[0]);
            context.insert(context.end(), links.begin(), links.end());
            cand.dup_risk |= HasFanOutAboveReverse(schema_, context);
          }
          if (Better(cand, best, prev_color)) best = cand;
        }
      }
      if (best.has_value()) return best;  // longest-first: stop at this end
    }
    return best;
  }

  bool Better(const Candidate& cand, const std::optional<Candidate>& best,
              std::optional<mct::ColorId> prev_color) const {
    if (!best.has_value()) return true;
    // Same length by construction; prefer unambiguous, then color
    // continuity, then fewer duplicates, then forward, then lower color.
    auto rank = [&](const Candidate& x) {
      int r = 0;
      if (x.unambiguous) r += 8;
      if (prev_color.has_value() && x.color == *prev_color) r += 4;
      if (!x.dup_risk) r += 2;
      if (!x.reversed) r += 1;
      return r;
    };
    int rc = rank(cand), rb = rank(*best);
    if (rc != rb) return rc > rb;
    return cand.color < best->color;
  }

  const MctSchema& schema_;
  const std::vector<er::NodeId>& path_;
};

}  // namespace

const char* ToString(SegmentKind k) {
  switch (k) {
    case SegmentKind::kAncDesc:
      return "anc-desc";
    case SegmentKind::kStepChain:
      return "step-chain";
    case SegmentKind::kValueJoin:
      return "value-join";
  }
  return "?";
}

PlanStats QueryPlan::Stats() const {
  PlanStats st;
  for (const EdgePlan& edge : edges) {
    st.color_crossings += edge.color_crossings;
    for (const Segment& seg : edge.segments) {
      if (seg.kind == SegmentKind::kValueJoin) {
        ++st.value_joins;
      } else {
        st.structural_joins += seg.num_structural_joins;
      }
    }
  }
  if (needs_dup_elim) ++st.dup_elims;
  if (needs_group_by) ++st.group_bys;
  if (dup_update_risk) ++st.dup_updates;
  return st;
}

std::string QueryPlan::DebugString() const {
  std::string out = StringPrintf("Plan(%s on %s): anchor color %u\n",
                                 query->name.c_str(), schema->name().c_str(),
                                 unsigned(anchor_color));
  const er::ErDiagram& d = schema->diagram();
  for (const EdgePlan& edge : edges) {
    const PatternNode& node = query->nodes[edge.pattern_node];
    out += "  -> " + d.node(node.er_node).name + ":";
    for (const Segment& seg : edge.segments) {
      if (seg.kind == SegmentKind::kValueJoin) {
        out += " [value-join]";
      } else {
        out += StringPrintf(
            " [%s %s %s joins=%zu%s]", ToString(seg.kind),
            schema->color_name(seg.color).c_str(),
            seg.reversed ? "rev" : "fwd", seg.num_structural_joins,
            seg.dup_risk ? " dup" : "");
      }
    }
    if (edge.color_crossings > 0) {
      out += StringPrintf(" crossings=%zu", edge.color_crossings);
    }
    out += "\n";
  }
  PlanStats st = Stats();
  out += StringPrintf(
      "  stats: sj=%zu vj=%zu cc=%zu dup=%zu grp=%zu dupupd=%zu\n",
      st.structural_joins, st.value_joins, st.color_crossings, st.dup_elims,
      st.group_bys, st.dup_updates);
  return out;
}

Result<QueryPlan> PlanQuery(const AssociationQuery& query,
                            const mct::MctSchema& schema) {
  // Static analysis first: fatal findings (unknown types, malformed
  // references, unrecoverable edges — QRY001/002/006) mean no plan exists,
  // and the analyzer's report beats the first error the planner would
  // stumble on. Emptiness findings ride on the plan for the executor's
  // zero-I/O short-circuit.
  analysis::QueryAnalysis verdict = analysis::AnalyzeQuery(query, schema);
  if (verdict.fatal()) {
    return Status::InvalidArgument("query rejected by static analysis:\n" +
                                   verdict.report.ToText());
  }

  QueryPlan plan;
  plan.query = &query;
  plan.schema = &schema;
  plan.statically_empty = verdict.statically_empty;
  plan.prune_reason = verdict.empty_reason;
  for (const analysis::Diagnostic& d : verdict.report.diagnostics()) {
    if (std::find(plan.analysis_codes.begin(), plan.analysis_codes.end(),
                  d.code) == plan.analysis_codes.end()) {
      plan.analysis_codes.push_back(d.code);
    }
  }
  bool any_dup_risk = false;

  // Per-pattern-node color context: the color its binding is labeled in
  // after its edge plan runs.
  std::vector<std::optional<mct::ColorId>> node_color(query.nodes.size());

  for (size_t i = 0; i < query.nodes.size(); ++i) {
    const PatternNode& node = query.nodes[i];
    if (node.parent < 0) {
      // Anchor: color chosen after its first outgoing edge is planned; put
      // a placeholder for now.
      continue;
    }
    EdgePlanner planner(schema, node);
    bool edge_dup = false;
    mct::ColorId out_color = 0;
    std::optional<mct::ColorId> incoming = node_color[node.parent];
    MCTDB_ASSIGN_OR_RETURN(
        EdgePlan edge,
        planner.Plan(static_cast<int>(i), incoming, &edge_dup, &out_color));
    any_dup_risk |= edge_dup;
    // Anchor scan color = first structural segment's color of the first
    // edge from the root.
    if (node.parent == 0 && !node_color[0].has_value()) {
      auto first = planner.FirstStructuralColor(edge);
      node_color[0] = first.value_or(0);
      plan.anchor_color = *node_color[0];
      // Charge a crossing if the first segment had assumed a different
      // incoming color — cannot happen since incoming was unset.
    }
    node_color[i] = out_color;
    plan.edges.push_back(std::move(edge));
  }
  if (query.nodes.size() == 1) {
    // Anchor in the first color that actually holds the tag.
    mct::ColorId anchor = 0;
    for (mct::ColorId c = 0; c < schema.num_colors(); ++c) {
      if (schema.FindOcc(c, query.nodes[0].er_node) != mct::kInvalidOcc) {
        anchor = c;
        break;
      }
    }
    node_color[0] = anchor;
    plan.anchor_color = anchor;
    // Single-node queries are schema-indifferent except for copy dups.
    for (const SchemaOcc& o : schema.occurrences()) {
      if (o.er_node != query.nodes[0].er_node) continue;
      any_dup_risk |=
          HasFanOutAboveReverse(schema, RootPathLinks(schema, o.id));
    }
    // Several occurrences in one color also duplicate a bare tag scan.
    for (mct::ColorId c = 0; c < schema.num_colors(); ++c) {
      size_t occs = 0;
      for (const SchemaOcc& o : schema.occurrences()) {
        if (o.er_node == query.nodes[0].er_node && o.color == c) ++occs;
      }
      if (c == plan.anchor_color && occs > 1) any_dup_risk = true;
    }
  }

  plan.needs_dup_elim = any_dup_risk && (query.distinct || query.is_update());
  plan.dup_update_risk = any_dup_risk && query.is_update();
  if (query.group_by.has_value()) {
    // Group-by is free when the grouping parent structurally nests the
    // output in one forward segment ("groupings by value" otherwise).
    plan.needs_group_by = true;
    if (!plan.edges.empty()) {
      const EdgePlan& last = plan.edges.back();
      if (last.segments.size() == 1 &&
          last.segments[0].kind != SegmentKind::kValueJoin &&
          !last.segments[0].reversed && last.color_crossings == 0) {
        plan.needs_group_by = false;
      }
    }
  }
#ifndef NDEBUG
  // Debug self-check: every plan the planner emits must pass the static
  // verifier. A diagnostic here is a planner bug, not a user error.
  {
    analysis::DiagnosticReport report = analysis::VerifyPlan(plan);
    MCTDB_CHECK_MSG(!report.has_errors(),
                    ("planner emitted a plan the verifier rejects:\n" +
                     report.ToText())
                        .c_str());
  }
#endif
  return plan;
}

}  // namespace mctdb::query
