#include "analysis/plan_verify.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"

namespace mctdb::analysis {

namespace {

using mct::MctSchema;
using mct::OccId;
using query::AssociationQuery;
using query::EdgePlan;
using query::PatternNode;
using query::QueryPlan;
using query::Segment;
using query::SegmentKind;

/// Does any occurrence chain in `color` match `types` downward from its
/// first element? (Static non-emptiness of a structural segment: a chain
/// the planner committed to must exist somewhere in the color's forest.)
bool ChainExists(const MctSchema& schema, mct::ColorId color,
                 const std::vector<er::NodeId>& types) {
  struct Frame {
    OccId occ;
    size_t depth;
  };
  for (const mct::SchemaOcc& o : schema.occurrences()) {
    if (o.color != color || o.er_node != types[0]) continue;
    std::vector<Frame> stack{{o.id, 0}};
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      if (f.depth + 1 == types.size()) return true;
      for (OccId child : schema.occ(f.occ).children) {
        if (schema.occ(child).er_node == types[f.depth + 1]) {
          stack.push_back({child, f.depth + 1});
        }
      }
    }
  }
  return false;
}

class PlanVerifier {
 public:
  PlanVerifier(const QueryPlan& plan, DiagnosticReport* report)
      : plan_(plan), report_(report) {}

  void Run() {
    if (plan_.query == nullptr || plan_.schema == nullptr) {
      report_->Error("PLN001", "plan",
                     plan_.query == nullptr
                         ? "plan is not bound to a query"
                         : "plan is not bound to a schema");
      return;
    }
    query_ = plan_.query;
    schema_ = plan_.schema;
    if (query_->nodes.empty()) {
      report_->Error("PLN002", Loc(), "query has no pattern nodes");
      return;
    }
    CheckPattern();
    CheckEdgeSet();
    CheckAnchor();
    for (const EdgePlan& edge : plan_.edges) CheckEdge(edge);
  }

 private:
  std::string Loc() const {
    return StringPrintf("%s on %s", query_->name.c_str(),
                        schema_->name().c_str());
  }
  std::string EdgeLoc(const EdgePlan& edge) const {
    return StringPrintf("%s on %s edge->%d", query_->name.c_str(),
                        schema_->name().c_str(), edge.pattern_node);
  }
  std::string TypeName(er::NodeId n) const {
    return n < schema_->diagram().num_nodes()
               ? schema_->diagram().node(n).name
               : StringPrintf("node#%u", n);
  }

  /// Pattern-node parent chains must all reach a root without escaping the
  /// node array or looping.
  void CheckPattern() {
    const auto& nodes = query_->nodes;
    for (size_t i = 0; i < nodes.size(); ++i) {
      size_t steps = 0;
      int cur = static_cast<int>(i);
      bool broken = false;
      while (cur >= 0) {
        if (static_cast<size_t>(cur) >= nodes.size() ||
            ++steps > nodes.size()) {
          broken = true;
          break;
        }
        cur = nodes[cur].parent;
      }
      if (broken) {
        report_->Error(
            "PLN003", Loc(),
            StringPrintf("pattern node %zu has a broken or cyclic parent "
                         "chain — the operator is unreachable from the "
                         "anchor",
                         i));
      }
    }
  }

  /// One edge plan per non-root pattern node, in range, no duplicates, no
  /// non-root node left uncovered (an uncovered node's operator would
  /// never run).
  void CheckEdgeSet() {
    const auto& nodes = query_->nodes;
    std::vector<bool> covered(nodes.size(), false);
    for (const EdgePlan& edge : plan_.edges) {
      if (edge.pattern_node < 0 ||
          static_cast<size_t>(edge.pattern_node) >= nodes.size()) {
        report_->Error("PLN002", Loc(),
                       StringPrintf("edge plan targets nonexistent pattern "
                                    "node %d",
                                    edge.pattern_node));
        continue;
      }
      if (nodes[edge.pattern_node].parent < 0) {
        report_->Error("PLN002", Loc(),
                       StringPrintf("edge plan targets the anchor node %d",
                                    edge.pattern_node));
        continue;
      }
      if (covered[edge.pattern_node]) {
        report_->Error("PLN002", Loc(),
                       StringPrintf("pattern node %d has two edge plans",
                                    edge.pattern_node));
        continue;
      }
      covered[edge.pattern_node] = true;
    }
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].parent >= 0 && !covered[i]) {
        report_->Error(
            "PLN003", Loc(),
            StringPrintf("pattern node %zu has no edge plan — its subtree "
                         "is unreachable",
                         i),
            "re-plan the query; every non-root node needs an edge plan");
      }
    }
  }

  void CheckAnchor() {
    if (plan_.anchor_color >= schema_->num_colors()) {
      report_->Error("PLN007", Loc(),
                     StringPrintf("anchor color %u does not exist (schema "
                                  "has %zu colors)",
                                  unsigned(plan_.anchor_color),
                                  schema_->num_colors()));
      return;
    }
    // Find the root pattern node; CheckPattern reports broken chains.
    for (const PatternNode& node : query_->nodes) {
      if (node.parent >= 0) continue;
      if (schema_->FindOcc(plan_.anchor_color, node.er_node) ==
          mct::kInvalidOcc) {
        report_->Error(
            "PLN010", Loc(),
            StringPrintf("anchor scan for '%s' in color %s can never "
                         "match: the tag has no occurrence there",
                         TypeName(node.er_node).c_str(),
                         schema_->color_name(plan_.anchor_color).c_str()),
            "anchor in a color that holds the tag");
      }
      break;
    }
  }

  void CheckEdge(const EdgePlan& edge) {
    if (edge.pattern_node < 0 ||
        static_cast<size_t>(edge.pattern_node) >= query_->nodes.size()) {
      return;  // PLN002 already reported by CheckEdgeSet
    }
    const PatternNode& node = query_->nodes[edge.pattern_node];
    const std::vector<er::NodeId>& path = node.path_from_parent;
    if (path.size() < 2) {
      report_->Error("PLN002", EdgeLoc(edge),
                     "non-root pattern node carries no association path");
      return;
    }
    if (edge.segments.empty()) {
      report_->Error("PLN005", EdgeLoc(edge),
                     "edge plan has no segments: the path is uncovered");
      return;
    }
    size_t pos = 0;
    for (size_t s = 0; s < edge.segments.size(); ++s) {
      const Segment& seg = edge.segments[s];
      std::string loc =
          StringPrintf("%s segment %zu", EdgeLoc(edge).c_str(), s);
      if (seg.from_index >= seg.to_index || seg.to_index >= path.size()) {
        report_->Error(
            "PLN004", loc,
            StringPrintf("interval [%zu, %zu] violates the structural-join "
                         "precondition for a path of %zu nodes",
                         seg.from_index, seg.to_index, path.size()));
        return;  // downstream positions are meaningless now
      }
      if (seg.from_index != pos) {
        report_->Error(
            "PLN005", loc,
            StringPrintf("segment starts at path index %zu but the previous "
                         "segment ended at %zu (%s)",
                         seg.from_index, pos,
                         seg.from_index > pos ? "gap" : "overlap"));
        return;
      }
      pos = seg.to_index;
      size_t span = seg.to_index - seg.from_index;
      switch (seg.kind) {
        case SegmentKind::kValueJoin:
          CheckValueJoin(seg, path, span, loc);
          break;
        case SegmentKind::kAncDesc:
        case SegmentKind::kStepChain:
          CheckStructural(seg, path, span, loc);
          break;
      }
    }
    if (pos != path.size() - 1) {
      report_->Error(
          "PLN005", EdgeLoc(edge),
          StringPrintf("segments cover path indices [0, %zu] of [0, %zu]: "
                       "the tail of the association is uncovered",
                       pos, path.size() - 1));
    }
  }

  void CheckValueJoin(const Segment& seg,
                      const std::vector<er::NodeId>& path, size_t span,
                      const std::string& loc) {
    // PLN013: the join's operands are the posting lists of the two path
    // endpoints. If they name the same ER type the executor would hash and
    // probe ONE posting list against itself — a degenerate self-join that
    // silently matches every instance to itself — and if the registered
    // ref edge connects a different pair of types, the probe keys and the
    // idref values belong to unrelated domains.
    if (seg.from_index < path.size() && seg.to_index < path.size()) {
      er::NodeId a = path[seg.from_index];
      er::NodeId b = path[seg.to_index];
      if (a == b) {
        report_->Error(
            "PLN013", loc,
            StringPrintf("value join operands reference the same posting "
                         "list (type %u on both sides): a self-join can "
                         "only produce identity matches",
                         a),
            "join two distinct path endpoints");
      } else if (seg.ref_edge < schema_->graph().num_edges()) {
        const er::ErEdge& e = schema_->graph().edge(seg.ref_edge);
        bool connects = (e.rel == a && e.node == b) ||
                        (e.rel == b && e.node == a);
        if (!connects) {
          report_->Error(
              "PLN013", loc,
              StringPrintf("value join covers path step %u-%u but its ref "
                           "edge %u connects %u-%u",
                           a, b, seg.ref_edge, e.rel, e.node),
              "use the ref edge registered for the covered ER edge");
        }
      }
    }
    if (span != 1) {
      report_->Error(
          "PLN006", loc,
          StringPrintf("value join spans %zu path steps; its arity is "
                       "exactly one ER edge",
                       span));
    }
    if (seg.num_structural_joins != 0) {
      report_->Error("PLN006", loc,
                     StringPrintf("value join claims %zu structural joins",
                                  seg.num_structural_joins));
    }
    for (const mct::RefEdge& ref : schema_->ref_edges()) {
      if (ref.er_edge == seg.ref_edge) return;
    }
    report_->Error(
        "PLN009", loc,
        StringPrintf("value join on ER edge %u, but the schema has no "
                     "id/idref ref edge for it",
                     seg.ref_edge),
        "realize the edge structurally or add the ref edge");
  }

  void CheckStructural(const Segment& seg,
                       const std::vector<er::NodeId>& path, size_t span,
                       const std::string& loc) {
    if (seg.kind == SegmentKind::kAncDesc && seg.num_structural_joins != 1) {
      report_->Error(
          "PLN006", loc,
          StringPrintf("ancestor-descendant segment claims %zu structural "
                       "joins; a single a-d step is exactly one",
                       seg.num_structural_joins));
    }
    if (seg.kind == SegmentKind::kStepChain &&
        seg.num_structural_joins != span) {
      report_->Error(
          "PLN006", loc,
          StringPrintf("step chain over %zu path steps claims %zu "
                       "structural joins; a parent-child chain needs one "
                       "join per step",
                       span, seg.num_structural_joins));
    }
    if (seg.color >= schema_->num_colors()) {
      report_->Error(
          "PLN007", loc,
          StringPrintf("segment runs in nonexistent color %u (schema has "
                       "%zu colors)",
                       unsigned(seg.color), schema_->num_colors()));
      return;
    }
    // Statically-empty color predicate: every tag on the sub-path must
    // occur in the segment's color, and the (possibly reversed) chain must
    // exist in that color's forest.
    std::vector<er::NodeId> types(path.begin() + seg.from_index,
                                  path.begin() + seg.to_index + 1);
    if (seg.reversed) std::reverse(types.begin(), types.end());
    for (er::NodeId t : types) {
      if (schema_->FindOcc(seg.color, t) == mct::kInvalidOcc) {
        report_->Error(
            "PLN008", loc,
            StringPrintf("color predicate can never match: tag '%s' has no "
                         "occurrence in color %s",
                         TypeName(t).c_str(),
                         schema_->color_name(seg.color).c_str()),
            "run the segment in a color that realizes the sub-path");
        return;
      }
    }
    if (!ChainExists(*schema_, seg.color, types)) {
      report_->Error(
          "PLN008", loc,
          StringPrintf("color predicate can never match: color %s holds "
                       "the tags but no occurrence chain realizes the "
                       "sub-path",
                       schema_->color_name(seg.color).c_str()),
          "run the segment in a color that realizes the sub-path");
    }
  }

  const QueryPlan& plan_;
  DiagnosticReport* report_;
  const AssociationQuery* query_ = nullptr;
  const MctSchema* schema_ = nullptr;
};

}  // namespace

DiagnosticReport VerifyPlan(const QueryPlan& plan,
                            const PlanVerifyOptions& options) {
  DiagnosticReport report(options.max_diagnostics);
  PlanVerifier verifier(plan, &report);
  verifier.Run();
  return report;
}

DiagnosticReport VerifyUpdate(const MctSchema& schema,
                              const storage::UpdateOp& op) {
  DiagnosticReport report;
  Status s = storage::VerifyUpdateOp(schema, op);
  if (s.ok()) return report;
  std::string loc = std::string("update/") +
                    storage::UpdateKindName(op.kind);
  if (s.IsNotSupported()) {
    report.Error("PLN012", loc, s.message(),
                 "insert under a target type the schema places the subtree "
                 "beneath, or re-run against a schema variant that does");
  } else {
    report.Error("PLN011", loc, s.message(),
                 "fix the op's target/attribute/subtree and resubmit");
  }
  return report;
}

}  // namespace mctdb::analysis
