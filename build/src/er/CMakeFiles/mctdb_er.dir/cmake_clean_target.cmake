file(REMOVE_RECURSE
  "libmctdb_er.a"
)
