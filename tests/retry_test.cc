#include "common/retry.h"

#include <gtest/gtest.h>

#include <chrono>

namespace mctdb {
namespace {

RetryPolicy FastPolicy(int attempts) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.initial_backoff = std::chrono::microseconds(1);
  p.max_backoff = std::chrono::microseconds(10);
  return p;
}

TEST(RetryTest, FirstTrySuccessNeedsNoRetries) {
  uint64_t retries = 0;
  Status s = RetryWithBackoff(
      FastPolicy(4), [] { return Status::OK(); }, &retries);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(retries, 0u);
}

TEST(RetryTest, TransientFailureRecovers) {
  int calls = 0;
  uint64_t retries = 0;
  Status s = RetryWithBackoff(
      FastPolicy(4),
      [&] {
        ++calls;
        return calls < 3 ? Status::DataLoss("flaky") : Status::OK();
      },
      &retries);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(RetryTest, ExhaustionReturnsLastError) {
  int calls = 0;
  uint64_t retries = 0;
  Status s = RetryWithBackoff(
      FastPolicy(3),
      [&] {
        ++calls;
        return Status::IoError("still down");
      },
      &retries);
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(RetryTest, PermanentErrorFailsImmediately) {
  int calls = 0;
  Status s = RetryWithBackoff(FastPolicy(5), [&] {
    ++calls;
    return Status::InvalidArgument("wrong schema");
  });
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, NonePolicyMakesOneAttempt) {
  int calls = 0;
  uint64_t retries = 0;
  Status s = RetryWithBackoff(
      RetryPolicy::None(),
      [&] {
        ++calls;
        return Status::DataLoss("gone");
      },
      &retries);
  EXPECT_TRUE(s.IsDataLoss());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0u);
}

TEST(RetryTest, IsRetryableClassification) {
  EXPECT_TRUE(IsRetryable(Status::DataLoss("x")));
  EXPECT_TRUE(IsRetryable(Status::IoError("x")));
  EXPECT_TRUE(IsRetryable(Status::Unavailable("x")));
  EXPECT_FALSE(IsRetryable(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsRetryable(Status::NotFound("x")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
}

TEST(RetryTest, NullRetriesPointerIsFine) {
  int calls = 0;
  Status s = RetryWithBackoff(FastPolicy(2), [&] {
    ++calls;
    return Status::DataLoss("gone");
  });
  EXPECT_TRUE(s.IsDataLoss());
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace mctdb
