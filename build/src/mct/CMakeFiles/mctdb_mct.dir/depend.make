# Empty dependencies file for mctdb_mct.
# This may be replaced when dependencies are built.
