// Crash recovery: replay the WAL's valid prefix onto a freshly loaded
// store and cut the torn tail (DESIGN.md §13).
//
// Invariant this module restores: after RecoverLog returns OK, the store's
// in-memory state equals "checkpoint image + every complete, checksum-valid
// record in LSN order", and the log file on disk ends exactly at that
// prefix — a crash at ANY byte offset of the log lands in the state some
// prefix of committed updates produced (the crash-at-every-offset test in
// tests/wal_recovery_test.cc walks all of them).
//
// Replay is idempotent by construction: ops address (er_node, logical)
// targets, so a record whose effect is already in the checkpoint image
// replays as AlreadyExists/NotFound and is counted as skipped, not failed.
// This covers the checkpoint crash window (store image renamed, log not
// yet reset) with no LSN bookkeeping inside the store file.
#pragma once

#include <cstdint>
#include <string>

#include "common/lsn.h"
#include "common/result.h"

namespace mctdb::storage {
class MctStore;
}

namespace mctdb::wal {

struct RecoveryStats {
  uint64_t scanned_records = 0;
  uint64_t replayed_records = 0;  ///< mutated the store
  uint64_t skipped_records = 0;   ///< already in the checkpoint image
  uint64_t truncated_bytes = 0;   ///< torn tail cut from the file
  bool log_reset = false;         ///< header unreadable -> fresh empty log
  Lsn last_lsn = kNoLsn;          ///< recovery snapshot (visible LSN)
};

/// Scans `wal_path`, replays onto `store` (versioning must be enabled),
/// truncates the torn tail in place, and publishes the recovered visible
/// LSN. A missing log file is OK (fresh store, zero stats). A log whose
/// header names a different schema fingerprint is InvalidArgument.
Result<RecoveryStats> RecoverLog(const std::string& wal_path,
                                 uint64_t fingerprint,
                                 storage::MctStore* store);

}  // namespace mctdb::wal
