# Empty compiler generated dependencies file for algorithm_mcmr_test.
# This may be replaced when dependencies are built.
