// Domain scenario: a library catalog (the ER3 diagram) queried under three
// competing schema designs. Shows the paper's core trade-off concretely:
// the SAME query costs value joins on SHALLOW, color crossings on EN, and a
// single structural join on DR — with identical results.
//
// Build & run:  ./build/examples/library_catalog
#include <cstdio>

#include "design/designer.h"
#include "er/er_catalog.h"
#include "instance/materialize.h"
#include "query/executor.h"
#include "query/planner.h"

using namespace mctdb;

int main() {
  er::ErDiagram diagram = er::Er3Library();
  er::ErGraph graph(diagram);
  design::Designer designer(graph);

  instance::GenOptions gen;
  gen.base_count = 80;
  instance::LogicalInstance logical = instance::GenerateInstance(graph, gen);

  // "All loans of copies held by one branch" — a 2-hop association chain.
  query::QueryBuilder builder("branch_loans", diagram);
  int branch = builder.Root("branch");
  builder.Where(branch, "id", "branch_3");
  builder.Via(branch, {"held_by", "copy", "loan_copy", "loan"});
  query::AssociationQuery q = builder.Build();

  std::printf("query: loans of copies held by branch_3\n\n");
  std::printf("%-8s %8s %8s %8s %8s %10s %9s\n", "schema", "sj", "vj", "cc",
              "results", "time(ms)", "pages");

  for (design::Strategy s :
       {design::Strategy::kShallow, design::Strategy::kEn,
        design::Strategy::kMcmr, design::Strategy::kDr,
        design::Strategy::kDeep}) {
    mct::MctSchema schema = designer.Design(s);
    auto store = instance::Materialize(logical, schema);
    auto plan = query::PlanQuery(q, schema);
    if (!plan.ok()) {
      std::printf("%-8s plan error: %s\n", schema.name().c_str(),
                  plan.status().ToString().c_str());
      continue;
    }
    query::Executor exec(store.get());
    auto result = exec.Execute(*plan);
    if (!result.ok()) continue;
    auto stats = plan->Stats();
    std::printf("%-8s %8zu %8zu %8zu %8zu %10.3f %9llu\n",
                schema.name().c_str(), stats.structural_joins,
                stats.value_joins, stats.color_crossings,
                result->unique_count, result->elapsed_seconds * 1000.0,
                static_cast<unsigned long long>(result->page_misses +
                                                result->page_hits));
  }
  std::printf(
      "\nSame results everywhere; the plans differ exactly as the paper "
      "predicts\n(value joins on SHALLOW, crossings on EN, structure on "
      "DR/DEEP).\n");
  return 0;
}
