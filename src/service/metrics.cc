#include "service/metrics.h"

#include <cmath>
#include <cstdio>

#include "common/ordered_mutex.h"

namespace mctsvc {

std::string PromLabelEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

double LatencyHistogram::BucketUpperUs(size_t i) {
  return std::ldexp(1.0, static_cast<int>(i));
}

namespace {

void AppendU64(std::string* out, const char* key, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu", key,
                static_cast<unsigned long long>(value));
  *out += buf;
}

}  // namespace

void LatencyHistogram::Record(double seconds) {
  if (seconds < 0) seconds = 0;
  double us = seconds * 1e6;
  size_t bucket = 0;
  // Strictly-greater: a sample exactly on a bucket's `le` upper bound
  // stays in that bucket, so the cumulative {le} exports are exact.
  while (bucket + 1 < kBuckets && us > BucketUpperUs(bucket)) ++bucket;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                         std::memory_order_relaxed);
}

double LatencyHistogram::Quantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * double(total - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen >= rank) return BucketUpperUs(i) * 1e-6;
  }
  return BucketUpperUs(kBuckets - 1) * 1e-6;
}

std::string LatencyHistogram::ToJson() const {
  std::string out = "{";
  AppendU64(&out, "count", count());
  char buf[96];
  std::snprintf(buf, sizeof(buf), ",\"total_seconds\":%.6f,\"p50_us\":%.1f,"
                "\"p95_us\":%.1f,\"p99_us\":%.1f",
                total_seconds(), Quantile(0.5) * 1e6, Quantile(0.95) * 1e6,
                Quantile(0.99) * 1e6);
  out += buf;
  out += ",\"buckets_us\":[";
  // Cumulative counts, matching the `le` (less-or-equal) key: each entry
  // counts every sample <= that upper bound. Empty buckets are elided.
  bool first = true;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    uint64_t c = bucket(i);
    cumulative += c;
    if (c == 0) continue;
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "{\"le\":%.0f,\"count\":%llu}",
                  BucketUpperUs(i),
                  static_cast<unsigned long long>(cumulative));
    out += buf;
  }
  out += "]}";
  return out;
}

void LatencyHistogram::AppendPrometheus(std::string* out,
                                        const std::string& name,
                                        const std::string& help) const {
  char buf[128];
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " histogram\n";
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += bucket(i);
    if (i + 1 == kBuckets) break;  // the overflow bucket is +Inf below
    std::snprintf(buf, sizeof(buf), "{le=\"%g\"} %llu\n",
                  BucketUpperUs(i) * 1e-6,
                  static_cast<unsigned long long>(cumulative));
    *out += name + "_bucket" + buf;
  }
  std::snprintf(buf, sizeof(buf), "{le=\"+Inf\"} %llu\n",
                static_cast<unsigned long long>(cumulative));
  *out += name + "_bucket" + buf;
  std::snprintf(buf, sizeof(buf), " %.9f\n", total_seconds());
  *out += name + "_sum" + buf;
  std::snprintf(buf, sizeof(buf), " %llu\n",
                static_cast<unsigned long long>(count()));
  *out += name + "_count" + buf;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_nanos_.store(0, std::memory_order_relaxed);
}

std::string ServiceMetrics::ToJson() const {
  std::string out = "{";
  AppendU64(&out, "submitted", submitted.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "completed", completed.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "rejected", rejected.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "sheds", sheds.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "breaker_rejections",
            breaker_rejections.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "invalid_plans",
            invalid_plans.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "deadline_exceeded",
            deadline_exceeded.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "failed", failed.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "queue_depth",
            queue_depth.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "page_hits", page_hits.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "page_misses",
            page_misses.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "slow_queries",
            slow_queries.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "queries_pruned",
            queries_pruned.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "plans_simplified",
            plans_simplified.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "plan_cache_hits",
            plan_cache_hits.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "plan_cache_misses",
            plan_cache_misses.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "plan_cache_invalidations",
            plan_cache_invalidations.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "index_seeks",
            index_seeks.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "updates_submitted",
            updates_submitted.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "updates_failed",
            updates_failed.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "wal_appends",
            wal_appends.load(std::memory_order_relaxed));
  out += ',';
  AppendU64(&out, "recovery_replayed_records",
            recovery_replayed_records.load(std::memory_order_relaxed));
  out += ",\"wal_fsync\":" + wal_fsync_seconds.ToJson();
  out += ",\"queue_wait\":" + queue_wait_seconds.ToJson();
  out += ",\"latency\":" + latency.ToJson();
  out += ",\"lock_wait\":{";
  bool first_rank = true;
  for (mctdb::LockRank rank : mctdb::kAllLockRanks) {
    const mctdb::LockWaitCounters& c = mctdb::LockWaitFor(rank);
    char buf[160];
    std::snprintf(
        buf, sizeof(buf),
        "%s\"%s\":{\"acquisitions\":%llu,\"contended\":%llu,"
        "\"wait_seconds\":%.9f}",
        first_rank ? "" : ",", mctdb::ToString(rank),
        static_cast<unsigned long long>(
            c.acquisitions.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            c.contended.load(std::memory_order_relaxed)),
        double(c.wait_nanos.load(std::memory_order_relaxed)) * 1e-9);
    out += buf;
    first_rank = false;
  }
  out += "}}";
  return out;
}

std::string ServiceMetrics::ToPrometheus() const {
  std::string out;
  auto sample = [&out](const char* name, const char* type,
                       const char* help, uint64_t value) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(value));
    out += std::string("# HELP ") + name + " " + help + "\n";
    out += std::string("# TYPE ") + name + " " + type + "\n";
    out += name;
    out += buf;
  };
  auto counter = [&sample](const char* name, const char* help,
                           uint64_t value) {
    sample(name, "counter", help, value);
  };
  counter("mctsvc_requests_submitted_total",
          "Requests admitted into the service",
          submitted.load(std::memory_order_relaxed));
  counter("mctsvc_requests_completed_total",
          "Requests finished (including deadline cancellations)",
          completed.load(std::memory_order_relaxed));
  counter("mctsvc_requests_rejected_total",
          "Admission-queue overflow rejections",
          rejected.load(std::memory_order_relaxed));
  counter("mctsvc_sheds_total",
          "Requests shed by the load-shedding admission controller",
          sheds.load(std::memory_order_relaxed));
  counter("mctsvc_breaker_rejections_total",
          "Requests refused by an open circuit breaker",
          breaker_rejections.load(std::memory_order_relaxed));
  counter("mctsvc_invalid_plans_total",
          "Plans rejected by the static verifier at admission",
          invalid_plans.load(std::memory_order_relaxed));
  counter("mctsvc_deadline_exceeded_total",
          "Requests cancelled at dequeue after their deadline passed",
          deadline_exceeded.load(std::memory_order_relaxed));
  counter("mctsvc_requests_failed_total",
          "Requests whose executor returned a non-OK status",
          failed.load(std::memory_order_relaxed));
  counter("mctsvc_page_hits_total",
          "Buffer-pool hits attributed to completed requests",
          page_hits.load(std::memory_order_relaxed));
  counter("mctsvc_page_misses_total",
          "Buffer-pool misses attributed to completed requests",
          page_misses.load(std::memory_order_relaxed));
  counter("mctsvc_slow_queries_total",
          "Completed requests at or over the slow-query threshold",
          slow_queries.load(std::memory_order_relaxed));
  counter("mctsvc_queries_pruned_total",
          "Statically-empty plans short-circuited to a zero-I/O result",
          queries_pruned.load(std::memory_order_relaxed));
  counter("mctsvc_plans_simplified_total",
          "Completed plans carrying a QRY008/QRY009 simplification finding",
          plans_simplified.load(std::memory_order_relaxed));
  counter("mctsvc_plan_cache_hits_total",
          "SubmitQuery admissions served from the plan cache",
          plan_cache_hits.load(std::memory_order_relaxed));
  counter("mctsvc_plan_cache_misses_total",
          "SubmitQuery admissions planned fresh (no cached entry)",
          plan_cache_misses.load(std::memory_order_relaxed));
  counter("mctsvc_plan_cache_invalidations_total",
          "Cached plans dropped because an update or checkpoint moved "
          "visibility",
          plan_cache_invalidations.load(std::memory_order_relaxed));
  counter("mctsvc_index_seeks_total",
          "Posting scans that skipped pages via the interval index",
          index_seeks.load(std::memory_order_relaxed));
  counter("mctsvc_updates_submitted_total",
          "Update ops admitted via SubmitUpdate",
          updates_submitted.load(std::memory_order_relaxed));
  counter("mctsvc_updates_failed_total",
          "Update ops whose apply returned a non-OK status",
          updates_failed.load(std::memory_order_relaxed));
  counter("mctsvc_wal_appends_total",
          "WAL records appended by completed updates",
          wal_appends.load(std::memory_order_relaxed));
  sample("mctsvc_recovery_replayed_records", "gauge",
         "WAL redo records replayed at open across registered stores",
         recovery_replayed_records.load(std::memory_order_relaxed));
  sample("mctsvc_queue_depth", "gauge",
         "Requests admitted but not yet finished",
         queue_depth.load(std::memory_order_relaxed));
  wal_fsync_seconds.AppendPrometheus(
      &out, "mctsvc_wal_fsync_seconds",
      "Group-commit fsync latency (recorded by each batch's leader)");
  queue_wait_seconds.AppendPrometheus(
      &out, "mctsvc_queue_wait_seconds",
      "Admission-to-dequeue wait per dequeued task");
  latency.AppendPrometheus(&out, "mctsvc_request_latency_seconds",
                           "End-to-end request execution latency");
  // Per-rank lock contention as a summary family: _count = contended
  // acquisitions, _sum = seconds spent blocked on them.
  out += "# HELP mctsvc_lock_wait_seconds Time spent blocked on ranked "
         "OrderedMutex acquisitions, per lock rank\n";
  out += "# TYPE mctsvc_lock_wait_seconds summary\n";
  for (mctdb::LockRank rank : mctdb::kAllLockRanks) {
    const mctdb::LockWaitCounters& c = mctdb::LockWaitFor(rank);
    char buf[160];
    std::snprintf(
        buf, sizeof(buf),
        "mctsvc_lock_wait_seconds_sum{rank=\"%s\"} %.9f\n"
        "mctsvc_lock_wait_seconds_count{rank=\"%s\"} %llu\n",
        mctdb::ToString(rank),
        double(c.wait_nanos.load(std::memory_order_relaxed)) * 1e-9,
        mctdb::ToString(rank),
        static_cast<unsigned long long>(
            c.contended.load(std::memory_order_relaxed)));
    out += buf;
  }
  out += "# HELP mctsvc_lock_acquisitions_total Ranked OrderedMutex "
         "blocking acquisitions, per lock rank\n";
  out += "# TYPE mctsvc_lock_acquisitions_total counter\n";
  for (mctdb::LockRank rank : mctdb::kAllLockRanks) {
    const mctdb::LockWaitCounters& c = mctdb::LockWaitFor(rank);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "mctsvc_lock_acquisitions_total{rank=\"%s\"} %llu\n",
                  mctdb::ToString(rank),
                  static_cast<unsigned long long>(
                      c.acquisitions.load(std::memory_order_relaxed)));
    out += buf;
  }
  return out;
}

}  // namespace mctsvc
