# Empty compiler generated dependencies file for bench_micro_design.
# This may be replaced when dependencies are built.
