// The three single-color XML translations the paper evaluates (§6, Figs 2-4).
//
//   SHALLOW (Fig 2): entity types are roots, each relationship type nests
//   under one participating type, every remaining association is an
//   id/idref value edge. Node normal, not association recoverable.
//
//   AF (Fig 3): "anomaly free" — one maximal MC color (deep nesting where
//   cardinalities allow), uncovered nodes as extra roots, uncovered edges as
//   id/idrefs. Node normal; maximizes (but cannot complete) recoverability.
//
//   DEEP (Fig 4): one color with *redundant* occurrences. The forest is the
//   full unfolding from the ER graph's source nodes: every edge may be
//   expanded, including "reverse" edges that nest the one side under the
//   many side (duplicating address/country/item/author-style context);
//   forward fan-out edges are only expanded while no reverse edge lies on
//   the root path (which is what keeps Fig 4 finite and matches its shape).
//   Extra roots are added until every eligible association is directly
//   recoverable. Edge normal (single color), association and direct
//   recoverable, NOT node normal.
#pragma once

#include <cstddef>
#include <string>

#include "er/er_graph.h"
#include "mct/mct_schema.h"

namespace mctdb::design {

mct::MctSchema DesignShallow(const er::ErGraph& graph,
                             std::string name = "SHALLOW");

mct::MctSchema DesignAf(const er::ErGraph& graph, std::string name = "AF");

struct DeepOptions {
  /// Safety valve for pathological graphs; the unfold stops (and the schema
  /// may lose completeness) once this many occurrences exist.
  size_t max_occurrences = 100000;
};

mct::MctSchema DesignDeep(const er::ErGraph& graph, std::string name = "DEEP",
                          const DeepOptions& options = {});

}  // namespace mctdb::design
