#include "design/xml_mining.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"

namespace mctdb::design {

namespace {

/// Per-tag observations accumulated over the document.
struct TagInfo {
  std::string name;
  bool has_key = false;
  /// attribute name -> looks numeric everywhere.
  std::map<std::string, bool> attrs;
  /// idref attribute names (with the suffix stripped = target tag).
  std::set<std::string> idref_targets;
  /// parent tag -> max occurrences of this tag under one parent element.
  std::map<std::string, size_t> parents_max_fanout;
  /// parent tag -> number of parent ELEMENTS with >= 1 child of this tag
  /// (for totality estimation).
  std::map<std::string, size_t> parents_with_child;
  size_t occurrences = 0;
  /// Distinct key values (for identity-based multiplicity).
  std::set<std::string> keys_seen;
};

class Miner {
 public:
  Miner(const xml::XmlNode& document, const MiningOptions& options,
        MiningReport* report)
      : options_(options), report_(report) {
    const xml::XmlNode* root = &document;
    if (options.skip_document_root) {
      for (const auto& child : root->children()) Walk(*child, nullptr);
    } else {
      Walk(*root, nullptr);
    }
  }

  Result<er::ErDiagram> Build() {
    Classify();
    er::ErDiagram diagram("mined");
    // Entities first.
    for (auto& [name, info] : tags_) {
      if (!is_relationship_.count(name)) {
        diagram.AddEntity(name, Attributes(info));
        if (report_) ++report_->entity_tags;
      }
    }
    // Relationships, repeated passes so higher-order ones (endpoint = an
    // earlier relationship) resolve.
    std::set<std::string> pending;
    for (const std::string& name : is_relationship_) pending.insert(name);
    bool progress = true;
    while (!pending.empty() && progress) {
      progress = false;
      for (auto it = pending.begin(); it != pending.end();) {
        auto status = TryAddRelationship(*it, &diagram);
        if (status.ok()) {
          it = pending.erase(it);
          progress = true;
          if (report_) ++report_->relationship_tags;
        } else if (status.IsNotFound()) {
          ++it;  // endpoint not created yet; retry next pass
        } else {
          return status;
        }
      }
    }
    if (!pending.empty()) {
      return Status::InvalidArgument(
          "unresolvable relationship tag '" + *pending.begin() + "'");
    }
    MCTDB_RETURN_IF_ERROR(diagram.Validate());
    return diagram;
  }

 private:
  void Walk(const xml::XmlNode& node, const xml::XmlNode* /*parent*/) {
    TagInfo& info = tags_[node.tag()];
    info.name = node.tag();
    ++info.occurrences;
    for (const auto& [attr, value] : node.attrs()) {
      if (std::find(options_.ignore_attrs.begin(),
                    options_.ignore_attrs.end(),
                    attr) != options_.ignore_attrs.end()) {
        continue;
      }
      if (attr == options_.key_attr) {
        info.has_key = true;
        info.keys_seen.insert(value);
        continue;
      }
      if (EndsWith(attr, options_.idref_suffix)) {
        std::string target =
            attr.substr(0, attr.size() - options_.idref_suffix.size());
        info.idref_targets.insert(target);
        refs_[{node.tag(), target}].push_back(value);
        continue;
      }
      bool numeric = !value.empty() &&
                     value.find_first_not_of("0123456789") == std::string::npos;
      auto [it, inserted] = info.attrs.emplace(attr, numeric);
      if (!inserted) it->second = it->second && numeric;
    }
    // Per-parent fanout: count this node's children by tag.
    std::map<std::string, size_t> child_counts;
    for (const auto& child : node.children()) {
      ++child_counts[child->tag()];
    }
    for (const auto& [tag, count] : child_counts) {
      TagInfo& child_info = tags_[tag];
      child_info.name = tag;
      size_t& fanout = child_info.parents_max_fanout[node.tag()];
      fanout = std::max(fanout, count);
      ++child_info.parents_with_child[node.tag()];
    }
    for (const auto& child : node.children()) Walk(*child, &node);
  }

  void Classify() {
    // A tag is a relationship iff it carries idrefs, or it is key-less and
    // connects a parent to (at most one kind of) child — the AF connector
    // shape. Key-less leaf tags with no idrefs default to entities.
    for (const auto& [name, info] : tags_) {
      if (!info.idref_targets.empty()) {
        is_relationship_.insert(name);
        continue;
      }
      if (!info.has_key && !info.parents_max_fanout.empty()) {
        is_relationship_.insert(name);
      }
    }
  }

  std::vector<er::Attribute> Attributes(const TagInfo& info) const {
    std::vector<er::Attribute> out;
    if (info.has_key) {
      out.push_back({options_.key_attr, er::AttrType::kString, true});
    }
    for (const auto& [name, numeric] : info.attrs) {
      out.push_back(
          {name, numeric ? er::AttrType::kInt : er::AttrType::kString,
           false});
    }
    return out;
  }

  /// Participation of endpoint tag `ep` in relationship tag `rel`:
  /// MANY iff one ep instance is observed in >1 rel instances.
  er::Participation ParticipationOf(const std::string& rel,
                                    const std::string& ep,
                                    bool structural_parent) const {
    if (structural_parent) {
      // ep is the structural parent: fanout of rel under one ep element.
      auto it = tags_.at(rel).parents_max_fanout.find(ep);
      size_t fanout = it == tags_.at(rel).parents_max_fanout.end() ? 0
                                                                   : it->second;
      return fanout > 1 ? er::Participation::kMany : er::Participation::kOne;
    }
    // ep is referenced: MANY iff some key value referenced twice.
    auto it = refs_.find({rel, ep});
    if (it == refs_.end()) return er::Participation::kOne;
    std::set<std::string> seen;
    for (const std::string& v : it->second) {
      if (!seen.insert(v).second) return er::Participation::kMany;
    }
    return er::Participation::kOne;
  }

  /// Totality of ep in rel: every ep instance participates. Only provable
  /// on the structural-parent side (each parent has >=1 rel child).
  er::Totality TotalityOf(const std::string& rel, const std::string& ep,
                          bool structural_parent) const {
    if (!structural_parent) return er::Totality::kPartial;
    auto it = tags_.at(rel).parents_with_child.find(ep);
    if (it == tags_.at(rel).parents_with_child.end()) {
      return er::Totality::kPartial;
    }
    return it->second >= tags_.at(ep).occurrences ? er::Totality::kTotal
                                                  : er::Totality::kPartial;
  }

  Status TryAddRelationship(const std::string& name, er::ErDiagram* diagram) {
    const TagInfo& info = tags_.at(name);
    // Endpoint 1: the structural parent tag (if nested under exactly one
    // tag kind) — Fig 2/3 put each relationship under one participant.
    std::string parent_tag;
    if (info.parents_max_fanout.size() == 1) {
      parent_tag = info.parents_max_fanout.begin()->first;
    } else if (info.parents_max_fanout.size() > 1) {
      return Status::InvalidArgument(
          "relationship tag '" + name + "' nests under several tags");
    }
    // Remaining endpoints come from idrefs (and, for connector tags, the
    // single child tag kind).
    std::vector<std::string> endpoints;
    if (!parent_tag.empty()) endpoints.push_back(parent_tag);
    for (const std::string& target : info.idref_targets) {
      endpoints.push_back(target);
    }
    // Connector form: a single structural child kind is the other side.
    for (const auto& [tag, tag_info] : tags_) {
      auto it = tag_info.parents_max_fanout.find(name);
      if (it != tag_info.parents_max_fanout.end()) endpoints.push_back(tag);
    }
    if (endpoints.size() != 2) {
      return Status::InvalidArgument(StringPrintf(
          "relationship tag '%s' has %zu endpoints, want 2", name.c_str(),
          endpoints.size()));
    }
    auto e0 = diagram->FindNode(endpoints[0]);
    auto e1 = diagram->FindNode(endpoints[1]);
    if (!e0 || !e1) return Status::NotFound("endpoint not yet created");

    bool ep0_structural = endpoints[0] == parent_tag;
    er::Participation p0 =
        ParticipationOf(name, endpoints[0], ep0_structural);
    er::Participation p1 = ParticipationOf(name, endpoints[1], false);
    er::Totality t0 = TotalityOf(name, endpoints[0], ep0_structural);
    auto rel = diagram->AddRelationship(name, *e0, p0, *e1, p1, t0,
                                        er::Totality::kPartial,
                                        Attributes(info));
    if (!rel.ok()) return rel.status();
    if (report_) {
      if (!parent_tag.empty()) ++report_->structural_edges;
      report_->idref_edges += info.idref_targets.size();
    }
    return Status::OK();
  }

  const MiningOptions& options_;
  MiningReport* report_;
  std::map<std::string, TagInfo> tags_;
  /// (relationship tag, target tag) -> referenced key values (multiset).
  std::map<std::pair<std::string, std::string>, std::vector<std::string>>
      refs_;
  std::set<std::string> is_relationship_;
};

}  // namespace

Result<er::ErDiagram> MineErDiagram(const xml::XmlNode& document,
                                    const MiningOptions& options,
                                    MiningReport* report) {
  Miner miner(document, options, report);
  return miner.Build();
}

}  // namespace mctdb::design
