// The (simplified) Entity-Relationship model of paper §2.1.
//
// A simplified ER diagram contains only entity types, *binary* relationship
// types between distinct entity-or-relationship types (higher-order
// relationships treat lower-order relationships as their entities), and
// atomic attributes. Arbitrary ER diagrams are assumed pre-reduced to this
// form (paper [20]).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mctdb::er {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

enum class NodeKind : uint8_t { kEntity, kRelationship };

/// How many instances of a relationship type one instance of an endpoint
/// type can participate in. For a 1:N relationship "country in-has address",
/// a country participates in MANY `in` instances, an address in ONE.
/// This is the quantity Fig 7 step 1 orients edges by.
enum class Participation : uint8_t { kOne, kMany };

/// Whether every instance of the endpoint type must participate (total) or
/// may be absent (partial). Drives min-occurrence constraints (§4.2).
enum class Totality : uint8_t { kPartial, kTotal };

enum class AttrType : uint8_t { kString, kInt };

/// Atomic attribute of an entity or relationship type.
struct Attribute {
  std::string name;
  AttrType type = AttrType::kString;
  bool is_key = false;
};

/// One side of a binary relationship type.
struct Endpoint {
  NodeId target = kInvalidNode;       ///< entity or lower-order relationship
  Participation participation = Participation::kOne;
  Totality totality = Totality::kPartial;
};

/// An entity type or a relationship type. Both become XML/MCT element types
/// under every translation in this library (§4.1).
struct ErNode {
  NodeId id = kInvalidNode;
  NodeKind kind = NodeKind::kEntity;
  std::string name;
  std::vector<Attribute> attributes;
  /// Valid iff kind == kRelationship.
  Endpoint endpoints[2];

  bool is_entity() const { return kind == NodeKind::kEntity; }
  bool is_relationship() const { return kind == NodeKind::kRelationship; }
};

/// A simplified ER diagram: the design specification every translation
/// algorithm in src/design starts from.
class ErDiagram {
 public:
  explicit ErDiagram(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Add an entity type. Names must be unique across the diagram; duplicate
  /// names abort via the returned id of the existing node being unusable —
  /// use FindNode to probe first, or the Result-returning relationship APIs.
  NodeId AddEntity(std::string_view name,
                   std::vector<Attribute> attributes = {});

  /// Add a binary relationship type between two *distinct*, existing nodes.
  /// `pa` / `pb` are the participations of `a` / `b` respectively.
  Result<NodeId> AddRelationship(std::string_view name, NodeId a,
                                 Participation pa, NodeId b, Participation pb,
                                 Totality ta = Totality::kPartial,
                                 Totality tb = Totality::kPartial,
                                 std::vector<Attribute> attributes = {});

  /// 1:N convenience: one `one_side` instance relates to many `many_side`
  /// instances. (participation(one_side)=MANY, participation(many_side)=ONE.)
  Result<NodeId> AddOneToMany(std::string_view name, NodeId one_side,
                              NodeId many_side,
                              Totality many_side_totality = Totality::kPartial);

  /// M:N convenience.
  Result<NodeId> AddManyToMany(std::string_view name, NodeId a, NodeId b);

  /// 1:1 convenience.
  Result<NodeId> AddOneToOne(std::string_view name, NodeId a, NodeId b);

  Status AddAttribute(NodeId node, Attribute attr);

  std::optional<NodeId> FindNode(std::string_view name) const;

  const ErNode& node(NodeId id) const { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }
  const std::vector<ErNode>& nodes() const { return nodes_; }

  size_t num_entities() const { return num_entities_; }
  size_t num_relationships() const { return nodes_.size() - num_entities_; }

  /// All structural sanity checks: unique names, endpoints exist, endpoints
  /// distinct, relationship ids greater than both endpoint ids (no forward
  /// references, so higher-order relationships are stratified).
  Status Validate() const;

 private:
  NodeId AddNode(ErNode node);

  std::string name_;
  std::vector<ErNode> nodes_;
  std::unordered_map<std::string, NodeId> name_index_;
  size_t num_entities_ = 0;
};

const char* ToString(NodeKind kind);
const char* ToString(Participation p);
const char* ToString(AttrType t);

}  // namespace mctdb::er
