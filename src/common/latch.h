// CountdownLatch: single-use barrier for fan-out/fan-in coordination
// (submit N tasks, wait until all N report done).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "common/logging.h"

namespace mctdb {

class CountdownLatch {
 public:
  explicit CountdownLatch(size_t count) : count_(count) {}

  CountdownLatch(const CountdownLatch&) = delete;
  CountdownLatch& operator=(const CountdownLatch&) = delete;

  void CountDown(size_t n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    MCTDB_CHECK_MSG(n <= count_, "latch counted down past zero");
    count_ -= n;
    if (count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  /// Returns false on timeout.
  bool WaitFor(double seconds) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                        [&] { return count_ == 0; });
  }

  size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t count_;
};

}  // namespace mctdb
