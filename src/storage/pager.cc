#include "storage/pager.h"

#include <cerrno>
#include <cstring>
#include <string>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/log.h"
#include "common/logging.h"

namespace mctdb::storage {

PageId Pager::Allocate() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  checksums_.push_back(PageChecksum(page.get(), kPageSize));
  pages_.push_back(std::move(page));
  disk_writes_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<PageId>(pages_.size() - 1);
}

void Pager::Write(PageId id, const char* data) {
  MCTDB_CHECK(id < pages_.size());
  std::memcpy(pages_[id].get(), data, kPageSize);
  checksums_[id] = PageChecksum(data, kPageSize);
  disk_writes_.fetch_add(1, std::memory_order_relaxed);
}

void Pager::SetReadHook(std::function<void(PageId)> hook) {
  MCTDB_CHECK_MSG(reads_in_flight_.load(std::memory_order_acquire) == 0,
                  "SetReadHook while a Read is in flight: install hooks "
                  "before starting reader threads");
  read_hook_ = std::move(hook);
}

void Pager::SetRetryPolicy(const RetryPolicy& policy) {
  MCTDB_CHECK_MSG(reads_in_flight_.load(std::memory_order_acquire) == 0,
                  "SetRetryPolicy while a Read is in flight");
  retry_policy_ = policy;
}

void Pager::CorruptForTest(PageId id, size_t offset) {
  MCTDB_CHECK(id < pages_.size());
  pages_[id].get()[offset % kPageSize] ^= 0x5A;
}

void Pager::RepairForTest(PageId id) {
  MCTDB_CHECK(id < pages_.size());
  checksums_[id] = PageChecksum(pages_[id].get(), kPageSize);
}

Status Pager::ReadAttempt(PageId id, char* out) const {
  if (read_hook_) read_hook_(id);
  switch (MCTDB_FAILPOINT("pager.read")) {
    case failpoint::Fault::kError:
      // "The read transferred bad bytes": deliver a corrupted copy so the
      // checksum verification — the real defense — reports the fault.
      std::memcpy(out, pages_[id].get(), kPageSize);
      out[id % kPageSize] ^= 0x5A;
      break;
    case failpoint::Fault::kTruncate:
      // Short read: only the first half arrives; the tail reads as zeros.
      std::memcpy(out, pages_[id].get(), kPageSize / 2);
      std::memset(out + kPageSize / 2, 0, kPageSize / 2);
      break;
    case failpoint::Fault::kEnospc:
    case failpoint::Fault::kEio:
      // The read itself errors out (errno-faithful media fault): no bytes
      // transferred, no checksum involved.
      return Status::IoError("page " + std::to_string(id) +
                             " read failed: " + std::strerror(EIO));
    case failpoint::Fault::kNone:
      std::memcpy(out, pages_[id].get(), kPageSize);
      break;
  }
  if (PageChecksum(out, kPageSize) != checksums_[id]) {
    checksum_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::DataLoss("page " + std::to_string(id) +
                            " failed checksum verification");
  }
  return Status::OK();
}

Status Pager::Read(PageId id, char* out) const {
  MCTDB_CHECK(id < pages_.size());
  reads_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  disk_reads_.fetch_add(1, std::memory_order_relaxed);
  uint64_t extra_attempts = 0;
  Status s = RetryWithBackoff(
      retry_policy_, [&] { return ReadAttempt(id, out); }, &extra_attempts);
  if (extra_attempts > 0) {
    retries_.fetch_add(extra_attempts, std::memory_order_relaxed);
  }
  if (!s.ok()) {
    MCTDB_LOG(kWarn, "pager", "read failed after retries",
              {{"page", uint64_t{id}},
               {"attempts", extra_attempts + 1},
               {"status", s.ToString()}});
  }
  reads_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  return s;
}

Status BufferPool::Fetch(PageId id, const char** out_frame, bool* out_miss) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++hits_;
    *out_miss = false;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(id);
    it->second.lru_pos = lru_.begin();
    *out_frame = it->second.data.get();
    return Status::OK();
  }
  ++misses_;
  *out_miss = true;
  if (frames_.size() >= capacity_) {
    PageId victim = lru_.back();
    lru_.pop_back();
    frames_.erase(victim);
  }
  Frame frame;
  frame.data = std::make_unique<char[]>(kPageSize);
  MCTDB_RETURN_IF_ERROR(pager_->Read(id, frame.data.get()));
  lru_.push_front(id);
  frame.lru_pos = lru_.begin();
  auto [pos, inserted] = frames_.emplace(id, std::move(frame));
  MCTDB_CHECK(inserted);
  *out_frame = pos->second.data.get();
  return Status::OK();
}

}  // namespace mctdb::storage
