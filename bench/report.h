// Machine-readable bench reporting and the regression gate.
//
// Every bench binary (and `mctc bench`) renders its measurements through
// one schema so the perf trajectory is diffable across commits:
//
//   {
//     "bench": "table1", "scale": 1.0, "reps": 3,
//     "records": [
//       {"schema": "EN", "query": "Q1", "median_seconds": 0.00012,
//        "page_hits": 301, "page_misses": 12, "join_pairs": 540,
//        "reps": 3, "extra": {"unique_results": 67}},
//       ...
//     ]
//   }
//
// `extra` carries bench-specific counters (figure plan stats, scaling
// ratios, result counts). Reports are written as BENCH_<name>.json and
// checked against committed baselines in bench/baselines/ by
// CheckAgainstBaseline (see DESIGN.md §11 for the gate policy):
//   * median_seconds regresses when it exceeds baseline*(1+tolerance)
//     AND the absolute growth exceeds min_abs_seconds (absolute floor so
//     microsecond-scale medians don't flap in CI);
//   * deterministic counters (page I/O, join pairs, extra) regress on
//     ANY increase over baseline — they are exact in serial runs, so an
//     increase is an algorithmic regression, not noise;
//   * a record present in the baseline but missing from the current run
//     is a regression (a silently dropped measurement must not pass).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace mctdb::bench {

struct QueryRecord {
  std::string schema;
  std::string query;
  double median_seconds = 0.0;
  uint64_t page_hits = 0;
  uint64_t page_misses = 0;
  uint64_t join_pairs = 0;
  size_t reps = 0;
  /// Bench-specific named counters, emitted under "extra".
  std::vector<std::pair<std::string, double>> extra;

  QueryRecord& Extra(std::string name, double value) {
    extra.emplace_back(std::move(name), value);
    return *this;
  }
};

struct BenchReport {
  std::string bench;
  double scale = 1.0;
  size_t reps = 1;
  std::vector<QueryRecord> records;

  const QueryRecord* Find(const std::string& schema,
                          const std::string& query) const;
  std::string ToJson() const;
};

/// Accumulates records for one bench run and writes BENCH_<name>.json
/// (logs a "bench" JSONL event on write).
class JsonReporter {
 public:
  JsonReporter(std::string bench_name, double scale, size_t reps = 1);

  QueryRecord& Add(std::string schema, std::string query);
  BenchReport& report() { return report_; }
  const BenchReport& report() const { return report_; }

  /// Serializes to `path`; "-" writes to stdout.
  Status WriteTo(const std::string& path) const;

 private:
  BenchReport report_;
};

/// Parses a report previously produced by BenchReport::ToJson (or a
/// combined report's "benches" element).
Result<BenchReport> ParseBenchReport(std::string_view json_text);
/// Reads and parses BENCH_<name>.json from disk.
Result<BenchReport> LoadBenchReport(const std::string& path);

/// One combined document: {"benches":[<report>,...]}.
std::string CombineReports(const std::vector<BenchReport>& reports);

struct CheckOptions {
  /// Relative headroom for median_seconds.
  double tolerance = 0.25;
  /// Absolute floor under which timing growth is ignored (seconds).
  double min_abs_seconds = 0.005;
  /// When false, deterministic counters are reported but not gated.
  bool gate_counters = true;
  /// Strict mode (on in CI): a current record with no baseline is a
  /// FAILURE, not a note. Without it, renaming a query or adding a schema
  /// silently un-gates the new records until someone remembers to commit
  /// baselines; strict mode turns that drift into a red build that says
  /// exactly which records to add.
  bool strict_new_records = false;
};

struct CheckResult {
  /// Human-readable regression lines; empty means the gate passes.
  std::vector<std::string> regressions;
  /// Non-fatal observations (new records, improvements).
  std::vector<std::string> notes;
  bool ok() const { return regressions.empty(); }
};

/// Compares `current` against `baseline` under the policy above. A
/// scale/bench-name mismatch is itself a regression (the gate must never
/// silently compare apples to oranges).
CheckResult CheckAgainstBaseline(const BenchReport& current,
                                 const BenchReport& baseline,
                                 const CheckOptions& options);

}  // namespace mctdb::bench
