#include "er/er_parser.h"

#include <cctype>

#include "common/string_util.h"

namespace mctdb::er {

namespace {

Status ErrorAt(int line, const std::string& msg) {
  return Status::InvalidArgument(StringPrintf("line %d: %s", line,
                                              msg.c_str()));
}

/// Tokenize one logical line into whitespace/punct-separated tokens, keeping
/// the punctuation characters {, }, :, (, ), -- as their own tokens.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
  };
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else if (c == '{' || c == '}' || c == ':' || c == '(' || c == ')') {
      flush();
      tokens.push_back(std::string(1, c));
    } else if (c == '-' && i + 1 < line.size() && line[i + 1] == '-') {
      flush();
      tokens.push_back("--");
      ++i;
    } else {
      cur += c;
    }
  }
  flush();
  return tokens;
}

struct Side {
  std::string name;
  bool many_label = false;  ///< the side's ratio letter was 'm'
  Totality totality = Totality::kPartial;
};

/// Parses "<name> ( 1|m[!] )" starting at *pos; advances *pos. The letter
/// is the side's count in the ratio ("country (1) -- address (m)": one
/// country to many addresses); participations are derived afterwards from
/// the OPPOSITE side's letter (each address relates to 1 country, so its
/// participation is ONE; each country to m addresses: MANY).
Status ParseSide(const std::vector<std::string>& t, size_t* pos, int line,
                 Side* out) {
  if (*pos >= t.size()) return ErrorAt(line, "expected endpoint name");
  out->name = t[(*pos)++];
  if (*pos + 2 >= t.size() + 1 || *pos >= t.size() || t[*pos] != "(") {
    return ErrorAt(line, "expected '(' after endpoint " + out->name);
  }
  ++*pos;
  if (*pos >= t.size()) return ErrorAt(line, "expected cardinality");
  std::string card = t[(*pos)++];
  if (!card.empty() && card.back() == '!') {
    out->totality = Totality::kTotal;
    card.pop_back();
  }
  if (card == "1") {
    out->many_label = false;
  } else if (card == "m" || card == "n" || card == "M" || card == "N") {
    out->many_label = true;
  } else {
    return ErrorAt(line, "bad cardinality '" + card + "' (want 1 or m)");
  }
  if (*pos >= t.size() || t[*pos] != ")") {
    return ErrorAt(line, "expected ')' after cardinality");
  }
  ++*pos;
  return Status::OK();
}

/// Parses attribute tokens between '{' and '}' (possibly spanning the rest
/// of the token list). Grammar: ("key" <name> | "attr" <name> <type>)*
Status ParseAttrBlock(const std::vector<std::string>& t, size_t* pos, int line,
                      std::vector<Attribute>* out) {
  if (*pos >= t.size() || t[*pos] != "{") {
    return Status::OK();  // attribute block optional
  }
  ++*pos;
  while (*pos < t.size() && t[*pos] != "}") {
    Attribute attr;
    const std::string& kw = t[(*pos)++];
    if (kw == "key") {
      attr.is_key = true;
      if (*pos >= t.size()) return ErrorAt(line, "key needs a name");
      attr.name = t[(*pos)++];
      attr.type = AttrType::kString;
    } else if (kw == "attr") {
      if (*pos + 1 >= t.size()) return ErrorAt(line, "attr needs name+type");
      attr.name = t[(*pos)++];
      const std::string& ty = t[(*pos)++];
      if (ty == "string") {
        attr.type = AttrType::kString;
      } else if (ty == "int") {
        attr.type = AttrType::kInt;
      } else {
        return ErrorAt(line, "unknown attribute type '" + ty + "'");
      }
    } else {
      return ErrorAt(line, "expected 'key' or 'attr', got '" + kw + "'");
    }
    out->push_back(std::move(attr));
  }
  if (*pos >= t.size()) return ErrorAt(line, "unterminated '{'");
  ++*pos;  // consume '}'
  return Status::OK();
}

}  // namespace

Result<ErDiagram> ParseErDiagram(std::string_view text) {
  ErDiagram diagram("anonymous");
  bool have_diagram = false;
  bool first_statement = true;

  int line_no = 0;
  for (const std::string& raw : Split(text, '\n', /*keep_empty=*/true)) {
    ++line_no;
    std::string line = raw;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::vector<std::string> t = Tokenize(Trim(line));
    if (t.empty()) continue;
    size_t pos = 0;
    const std::string& kw = t[pos++];

    if (kw == "diagram") {
      if (!first_statement || pos >= t.size()) {
        return ErrorAt(line_no, "'diagram <name>' must be first");
      }
      diagram = ErDiagram(t[pos]);
      have_diagram = true;
    } else if (kw == "entity") {
      if (pos >= t.size()) return ErrorAt(line_no, "entity needs a name");
      std::string name = t[pos++];
      if (diagram.FindNode(name)) {
        return ErrorAt(line_no, "duplicate node '" + name + "'");
      }
      std::vector<Attribute> attrs;
      MCTDB_RETURN_IF_ERROR(ParseAttrBlock(t, &pos, line_no, &attrs));
      diagram.AddEntity(name, std::move(attrs));
    } else if (kw == "rel") {
      if (pos >= t.size()) return ErrorAt(line_no, "rel needs a name");
      std::string name = t[pos++];
      if (pos >= t.size() || t[pos] != ":") {
        return ErrorAt(line_no, "expected ':' after rel name");
      }
      ++pos;
      Side a, b;
      MCTDB_RETURN_IF_ERROR(ParseSide(t, &pos, line_no, &a));
      if (pos >= t.size() || t[pos] != "--") {
        return ErrorAt(line_no, "expected '--' between endpoints");
      }
      ++pos;
      MCTDB_RETURN_IF_ERROR(ParseSide(t, &pos, line_no, &b));
      std::vector<Attribute> attrs;
      MCTDB_RETURN_IF_ERROR(ParseAttrBlock(t, &pos, line_no, &attrs));
      auto na = diagram.FindNode(a.name);
      auto nb = diagram.FindNode(b.name);
      if (!na) return ErrorAt(line_no, "unknown endpoint '" + a.name + "'");
      if (!nb) return ErrorAt(line_no, "unknown endpoint '" + b.name + "'");
      // Participation of a side = the OTHER side's ratio letter: in
      // "a (1) -- b (m)" each a relates to m b's (MANY participation) and
      // each b to 1 a (ONE).
      Participation pa =
          b.many_label ? Participation::kMany : Participation::kOne;
      Participation pb =
          a.many_label ? Participation::kMany : Participation::kOne;
      auto rel = diagram.AddRelationship(name, *na, pa, *nb, pb, a.totality,
                                         b.totality, std::move(attrs));
      if (!rel.ok()) return ErrorAt(line_no, rel.status().message());
    } else {
      return ErrorAt(line_no, "unknown keyword '" + kw + "'");
    }
    first_statement = false;
  }
  if (!have_diagram) {
    return Status::InvalidArgument("missing 'diagram <name>' header");
  }
  MCTDB_RETURN_IF_ERROR(diagram.Validate());
  return diagram;
}

std::string FormatErDiagram(const ErDiagram& diagram) {
  std::string out = "diagram " + diagram.name() + "\n\n";
  auto format_attrs = [](const ErNode& node) {
    if (node.attributes.empty()) return std::string();
    std::string s = " {";
    for (const Attribute& a : node.attributes) {
      if (a.is_key) {
        s += " key " + a.name;
      } else {
        s += " attr " + a.name + " " + ToString(a.type);
      }
    }
    s += " }";
    return s;
  };
  // Emit in node-id order so a reparse reproduces the exact ids; the
  // stratification invariant (endpoint ids < relationship id) guarantees
  // every endpoint is declared before use.
  for (const ErNode& node : diagram.nodes()) {
    if (node.is_entity()) {
      out += "entity " + node.name + format_attrs(node) + "\n";
      continue;
    }
    auto side = [&](const Endpoint& ep, const Endpoint& other) {
      // Inverse of the parse rule: this side's ratio letter is 'm' iff the
      // OTHER side participates in many relationship instances.
      std::string card =
          other.participation == Participation::kMany ? "m" : "1";
      if (ep.totality == Totality::kTotal) card += "!";
      return diagram.node(ep.target).name + " (" + card + ")";
    };
    out += "rel " + node.name + ": " +
           side(node.endpoints[0], node.endpoints[1]) + " -- " +
           side(node.endpoints[1], node.endpoints[0]) + format_attrs(node) +
           "\n";
  }
  return out;
}

}  // namespace mctdb::er
