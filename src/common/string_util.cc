#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace mctdb {

std::vector<std::string> Split(std::string_view s, char sep, bool keep_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      std::string_view piece = s.substr(start, i - start);
      if (keep_empty || !piece.empty()) out.emplace_back(piece);
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string EscapeXml(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace mctdb
