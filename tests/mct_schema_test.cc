#include "mct/mct_schema.h"

#include <gtest/gtest.h>

#include "er/er_catalog.h"

namespace mctdb::mct {
namespace {

using er::ErDiagram;
using er::ErGraph;
using er::NodeId;

struct Fixture {
  ErDiagram diagram;
  ErGraph graph;
  NodeId a, b, c, r1, r2;

  Fixture() : diagram(Make()), graph(diagram) {
    a = *diagram.FindNode("a");
    b = *diagram.FindNode("b");
    c = *diagram.FindNode("c");
    r1 = *diagram.FindNode("r1");
    r2 = *diagram.FindNode("r2");
  }

  static ErDiagram Make() {
    ErDiagram d("t");
    NodeId a = d.AddEntity("a");
    NodeId b = d.AddEntity("b");
    NodeId c = d.AddEntity("c");
    EXPECT_TRUE(d.AddOneToMany("r1", a, b).ok());
    EXPECT_TRUE(d.AddOneToMany("r2", b, c, er::Totality::kTotal).ok());
    return d;
  }

  er::EdgeId EdgeBetween(NodeId rel, NodeId node) const {
    for (er::EdgeId eid : graph.incident(rel)) {
      if (graph.edge(eid).node == node) return eid;
    }
    ADD_FAILURE() << "no edge";
    return er::kInvalidEdge;
  }
};

TEST(MctSchemaTest, BuildChainAndNavigate) {
  Fixture f;
  MctSchema s("test", &f.graph);
  ColorId blue = s.AddColor();
  OccId oa = s.AddRoot(blue, f.a);
  OccId or1 = s.AddChild(oa, f.r1, f.EdgeBetween(f.r1, f.a));
  OccId ob = s.AddChild(or1, f.b, f.EdgeBetween(f.r1, f.b));
  EXPECT_EQ(s.num_occurrences(), 3u);
  EXPECT_TRUE(s.IsAncestor(oa, ob));
  EXPECT_FALSE(s.IsAncestor(ob, oa));
  EXPECT_EQ(s.Depth(ob), 2u);
  EXPECT_EQ(s.FindOcc(blue, f.b), ob);
  EXPECT_EQ(s.FindOcc(blue, f.c), kInvalidOcc);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(MctSchemaTest, ColorNamesFollowPaperPalette) {
  Fixture f;
  MctSchema s("test", &f.graph);
  for (int i = 0; i < 6; ++i) s.AddColor();
  EXPECT_EQ(s.color_name(0), "blue");
  EXPECT_EQ(s.color_name(4), "green");
  EXPECT_EQ(s.color_name(5), "color6");
}

TEST(MctSchemaTest, ChildOccursFromCardinality) {
  Fixture f;
  MctSchema s("test", &f.graph);
  ColorId blue = s.AddColor();
  OccId oa = s.AddRoot(blue, f.a);
  // a participates in MANY r1, partial: children r1 occur '*'.
  OccId or1 = s.AddChild(oa, f.r1, f.EdgeBetween(f.r1, f.a));
  EXPECT_EQ(s.ChildOccurs(or1), Occurs::kStar);
  // b participates in ONE r1 (partial): rel -> endpoint is exactly one.
  OccId ob = s.AddChild(or1, f.b, f.EdgeBetween(f.r1, f.b));
  EXPECT_EQ(s.ChildOccurs(ob), Occurs::kOne);
  // b participates in MANY r2 with c total on the many side... r2 under b is
  // kStar/kPlus depending on b's totality (partial here -> kStar).
  OccId or2 = s.AddChild(ob, f.r2, f.EdgeBetween(f.r2, f.b));
  EXPECT_EQ(s.ChildOccurs(or2), Occurs::kStar);
}

TEST(MctSchemaTest, NodeNormalViolatedByDuplicateInColor) {
  Fixture f;
  MctSchema s("test", &f.graph);
  ColorId blue = s.AddColor();
  OccId oa = s.AddRoot(blue, f.a);
  OccId or1 = s.AddChild(oa, f.r1, f.EdgeBetween(f.r1, f.a));
  s.AddChild(or1, f.b, f.EdgeBetween(f.r1, f.b));
  EXPECT_TRUE(s.IsNodeNormal());
  // A second occurrence of b in the same color breaks NN.
  s.AddRoot(blue, f.b);
  std::string why;
  EXPECT_FALSE(s.IsNodeNormal(&why));
  EXPECT_NE(why.find("'b'"), std::string::npos);
}

TEST(MctSchemaTest, NodeNormalViolatedByReverseNesting) {
  Fixture f;
  MctSchema s("test", &f.graph);
  ColorId blue = s.AddColor();
  // Nest a (the one side) under r1: one occurrence, but instances of a
  // would be duplicated under each r1 instance.
  OccId ob = s.AddRoot(blue, f.b);
  OccId or1 = s.AddChild(ob, f.r1, f.EdgeBetween(f.r1, f.b));
  s.AddChild(or1, f.a, f.EdgeBetween(f.r1, f.a));
  EXPECT_TRUE(s.Validate().ok()) << "reverse nesting is valid, just not NN";
  std::string why;
  EXPECT_FALSE(s.IsNodeNormal(&why));
  EXPECT_NE(why.find("duplicated"), std::string::npos);
}

TEST(MctSchemaTest, EdgeNormalAndIcics) {
  Fixture f;
  MctSchema s("test", &f.graph);
  ColorId blue = s.AddColor();
  ColorId red = s.AddColor();
  OccId oa = s.AddRoot(blue, f.a);
  s.AddChild(oa, f.r1, f.EdgeBetween(f.r1, f.a));
  EXPECT_TRUE(s.IsEdgeNormal());
  EXPECT_TRUE(s.ComputeIcics().empty());
  // Realize the same ER edge in red too.
  OccId oa2 = s.AddRoot(red, f.a);
  s.AddChild(oa2, f.r1, f.EdgeBetween(f.r1, f.a));
  std::string why;
  EXPECT_FALSE(s.IsEdgeNormal(&why));
  auto icics = s.ComputeIcics();
  ASSERT_EQ(icics.size(), 1u);
  EXPECT_EQ(icics[0].colors.size(), 2u);
  EXPECT_EQ(icics[0].realizations.size(), 2u);
}

TEST(MctSchemaTest, SameColorDuplicateEdgeIsNotIcic) {
  // DEEP-style: one color, edge realized twice -> no inter-color constraint.
  Fixture f;
  MctSchema s("test", &f.graph);
  ColorId blue = s.AddColor();
  OccId oa = s.AddRoot(blue, f.a);
  s.AddChild(oa, f.r1, f.EdgeBetween(f.r1, f.a));
  OccId ob = s.AddRoot(blue, f.b);
  OccId or1b = s.AddChild(ob, f.r1, f.EdgeBetween(f.r1, f.b));
  s.AddChild(or1b, f.a, f.EdgeBetween(f.r1, f.a));
  EXPECT_TRUE(s.ComputeIcics().empty());
  EXPECT_TRUE(s.IsEdgeNormal());
}

TEST(MctSchemaTest, CoversAllNodesReportsMissing) {
  Fixture f;
  MctSchema s("test", &f.graph);
  ColorId blue = s.AddColor();
  s.AddRoot(blue, f.a);
  std::string missing;
  EXPECT_FALSE(s.CoversAllNodes(&missing));
  EXPECT_FALSE(missing.empty());
}

TEST(MctSchemaTest, AttachRootMergesTrees) {
  Fixture f;
  MctSchema s("test", &f.graph);
  ColorId blue = s.AddColor();
  OccId oa = s.AddRoot(blue, f.a);
  OccId ob = s.AddRoot(blue, f.b);
  EXPECT_EQ(s.roots(blue).size(), 2u);
  OccId or1 = s.AddChild(oa, f.r1, f.EdgeBetween(f.r1, f.a));
  s.AttachRoot(ob, or1, f.EdgeBetween(f.r1, f.b));
  EXPECT_EQ(s.roots(blue).size(), 1u);
  EXPECT_TRUE(s.IsAncestor(oa, ob));
  EXPECT_TRUE(s.Validate().ok());
}

TEST(MctSchemaTest, RefEdgesNamedAfterTarget) {
  Fixture f;
  MctSchema s("test", &f.graph);
  ColorId blue = s.AddColor();
  OccId oa = s.AddRoot(blue, f.a);
  OccId or1 = s.AddChild(oa, f.r1, f.EdgeBetween(f.r1, f.a));
  s.AddRefEdge(or1, f.EdgeBetween(f.r1, f.b), f.b);
  ASSERT_EQ(s.ref_edges().size(), 1u);
  EXPECT_EQ(s.ref_edges()[0].attr_name, "b_idref");
}

TEST(MctSchemaTest, StatsCountDuplicates) {
  Fixture f;
  MctSchema s("test", &f.graph);
  ColorId blue = s.AddColor();
  OccId oa = s.AddRoot(blue, f.a);
  s.AddChild(oa, f.r1, f.EdgeBetween(f.r1, f.a));
  s.AddRoot(blue, f.a);  // duplicate a
  SchemaStats st = s.Stats();
  EXPECT_EQ(st.num_colors, 1u);
  EXPECT_EQ(st.num_occurrences, 3u);
  EXPECT_EQ(st.num_duplicated_er_nodes, 1u);
  EXPECT_EQ(st.max_depth, 1u);
}

TEST(MctSchemaTest, DebugStringShowsColorsAndMarkers) {
  Fixture f;
  MctSchema s("demo", &f.graph);
  ColorId blue = s.AddColor();
  OccId oa = s.AddRoot(blue, f.a);
  s.AddChild(oa, f.r1, f.EdgeBetween(f.r1, f.a));
  std::string out = s.DebugString();
  EXPECT_NE(out.find("(blue)"), std::string::npos);
  EXPECT_NE(out.find("r1 [*]"), std::string::npos);
}

}  // namespace
}  // namespace mctdb::mct
