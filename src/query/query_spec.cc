#include "query/query_spec.h"

#include "common/logging.h"

namespace mctdb::query {

int QueryBuilder::Root(std::string_view type_name) {
  auto node = diagram_->FindNode(type_name);
  MCTDB_CHECK_MSG(node.has_value(), std::string(type_name).c_str());
  PatternNode pn;
  pn.er_node = *node;
  pn.parent = -1;
  query_.nodes.push_back(pn);
  query_.output = static_cast<int>(query_.nodes.size()) - 1;
  return query_.output;
}

int QueryBuilder::Via(int parent, const std::vector<std::string>& path_names) {
  MCTDB_CHECK(parent >= 0 &&
              parent < static_cast<int>(query_.nodes.size()));
  PatternNode pn;
  pn.parent = parent;
  pn.path_from_parent.push_back(query_.nodes[parent].er_node);
  for (const std::string& name : path_names) {
    auto node = diagram_->FindNode(name);
    MCTDB_CHECK_MSG(node.has_value(), name.c_str());
    pn.path_from_parent.push_back(*node);
  }
  MCTDB_CHECK(pn.path_from_parent.size() >= 2);
  pn.er_node = pn.path_from_parent.back();
  query_.nodes.push_back(pn);
  query_.output = static_cast<int>(query_.nodes.size()) - 1;
  return query_.output;
}

QueryBuilder& QueryBuilder::Where(int node, std::string_view attr,
                                  std::string_view value) {
  query_.nodes[node].predicate =
      AttrPredicate{std::string(attr), std::string(value)};
  return *this;
}

QueryBuilder& QueryBuilder::Output(int node) {
  query_.output = node;
  return *this;
}

QueryBuilder& QueryBuilder::Distinct() {
  query_.distinct = true;
  return *this;
}

QueryBuilder& QueryBuilder::GroupBy(int node, std::string_view attr) {
  query_.group_by = GroupBySpec{node, std::string(attr)};
  return *this;
}

QueryBuilder& QueryBuilder::Update(std::string_view attr,
                                   std::string_view value) {
  query_.update = UpdateSpec{std::string(attr), std::string(value)};
  return *this;
}

}  // namespace mctdb::query
