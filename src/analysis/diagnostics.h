// Shared diagnostics engine for the static-analysis passes (schema lint,
// plan verifier, store validation).
//
// Every pass reports through a DiagnosticReport: an ordered list of
// Diagnostic{severity, code, location, message, fixit} with a cap beyond
// which further findings are counted but not recorded (so a corrupted
// input cannot balloon the report), renderable as human text or JSON.
// Codes are stable identifiers (SCHnnn schema lint, PLNnnn plan verifier,
// STOnnn store validation) that tests and tooling key on; messages are
// free to improve, codes are not.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mctdb::analysis {

enum class Severity : uint8_t { kNote, kWarning, kError };
const char* ToString(Severity s);

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;      ///< stable identifier, e.g. "SCH013"
  std::string location;  ///< where: "schema DR", "DR/Q3 edge 1", "elem 7"
  std::string message;   ///< what is wrong
  std::string fixit;     ///< optional remediation hint
};

class DiagnosticReport {
 public:
  explicit DiagnosticReport(size_t max_diagnostics = 256)
      : max_diagnostics_(max_diagnostics) {}

  void Add(Severity severity, std::string code, std::string location,
           std::string message, std::string fixit = "");
  void Error(std::string code, std::string location, std::string message,
             std::string fixit = "") {
    Add(Severity::kError, std::move(code), std::move(location),
        std::move(message), std::move(fixit));
  }
  void Warning(std::string code, std::string location, std::string message,
               std::string fixit = "") {
    Add(Severity::kWarning, std::move(code), std::move(location),
        std::move(message), std::move(fixit));
  }
  void Note(std::string code, std::string location, std::string message,
            std::string fixit = "") {
    Add(Severity::kNote, std::move(code), std::move(location),
        std::move(message), std::move(fixit));
  }

  /// Appends `other`'s diagnostics (and suppressed count), prefixing each
  /// location with `location_prefix` when non-empty.
  void MergeFrom(const DiagnosticReport& other,
                 std::string_view location_prefix = "");

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  size_t errors() const { return errors_; }
  size_t warnings() const { return warnings_; }
  size_t notes() const { return notes_; }
  /// Findings past the cap: counted per severity above, not recorded.
  size_t suppressed() const { return suppressed_; }
  bool has_errors() const { return errors_ > 0; }
  bool empty() const { return diags_.empty() && suppressed_ == 0; }

  bool HasCode(std::string_view code) const;
  size_t CountCode(std::string_view code) const;

  /// One line per diagnostic: "error SCH013 [schema DR]: message (fix: ..)";
  /// empty reports render as "clean".
  std::string ToText() const;
  /// {"errors":N,"warnings":N,"notes":N,"suppressed":N,"diagnostics":[...]}
  std::string ToJson() const;

 private:
  std::vector<Diagnostic> diags_;
  size_t max_diagnostics_;
  size_t errors_ = 0;
  size_t warnings_ = 0;
  size_t notes_ = 0;
  size_t suppressed_ = 0;
};

}  // namespace mctdb::analysis
