// DurableStore: an MctStore opened for writing, fronted by the WAL
// (DESIGN.md §13). This is the tentpole seam tying the write path
// together:
//
//   Apply(op):
//     1. lock the write mutex (one applier mutates at a time);
//     2. LogWriter::Append — the redo record exists BEFORE any page or
//        delta is dirtied (write-ahead rule); a failed append is a clean
//        abort;
//     3. storage::ApplyUpdateOp — the short exclusive delta mutation;
//     4. unlock, LogWriter::Commit(lsn) — GROUP fsync shared with
//        concurrent appliers;
//     5. PublishVisibleLsn(lsn) — only now do NEW reader snapshots see the
//        op. Readers that took their snapshot earlier keep a consistent
//        pre-commit view and never block (COW keyed by LSN).
//
//   Open(path): load the checkpoint image, EnableVersioning, replay the
//   log's valid prefix, truncate the torn tail (wal/recovery.h).
//
//   Checkpoint(): fold deltas into a fresh compact image, atomically
//   rename it over the store file, trim the log (wal/checkpoint.h). The
//   LIVE in-memory store keeps serving base+deltas — compaction only
//   changes what the next open loads, so concurrent readers are never
//   invalidated.
//
// Failpoint "wal.checkpoint": err -> clean failure before anything is
// written; trunc -> the image is committed but the log is NOT trimmed,
// exercising recovery's idempotent-replay window.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/lsn.h"
#include "obs/exec_stats.h"
#include "common/result.h"
#include "storage/store.h"
#include "storage/update_ops.h"
#include "wal/checkpoint.h"
#include "wal/log_writer.h"
#include "wal/recovery.h"

namespace mctdb::wal {

struct DurableStoreOptions {
  storage::StoreOptions store;
  /// Durable log size past which lint (WAL004) refuses and callers should
  /// checkpoint.
  uint64_t checkpoint_threshold_bytes = 64ull << 20;
};

class DurableStore {
 public:
  using Options = DurableStoreOptions;

  /// Opens the store saved at `path` (its log lives at "<path>.wal"),
  /// running crash recovery. `schema` must outlive the result.
  static Result<std::unique_ptr<DurableStore>> Open(
      const mct::MctSchema& schema, const std::string& path,
      const Options& options = {});

  /// Saves a freshly built store to `path` and opens it with an empty log.
  /// Any stale log at "<path>.wal" is discarded.
  static Result<std::unique_ptr<DurableStore>> Create(
      std::unique_ptr<storage::MctStore> store, const std::string& path,
      const Options& options = {});

  /// A durable store with an in-memory log: the full write path (append,
  /// group commit, snapshots) without a filesystem. Used by the workload
  /// runner's update measurements.
  static Result<std::unique_ptr<DurableStore>> Ephemeral(
      std::unique_ptr<storage::MctStore> store,
      const Options& options = {});

  /// The underlying store. Readers take store()->visible_lsn() as their
  /// snapshot and pass it to the versioned accessors / MergedPostingCursor.
  storage::MctStore* store() const { return store_.get(); }
  /// Snapshot new readers should use (last durable LSN).
  Lsn snapshot() const { return store_->visible_lsn(); }

  struct ApplyReceipt {
    Lsn lsn = kNoLsn;
    storage::ApplyStats stats;
  };
  /// Durably applies one update op (see class comment). Thread-safe;
  /// concurrent callers share fsyncs. With `stats`, the append/commit
  /// work lands in kWal spans and the delta mutation in a kUpdate span,
  /// so `mctc trace` shows where an update's time went.
  Result<ApplyReceipt> Apply(const storage::UpdateOp& op,
                             obs::ExecStats* stats = nullptr);

  Result<CheckpointStats> Checkpoint();

  const RecoveryStats& recovery() const { return recovery_; }
  const LogWriter& log() const { return *log_; }
  uint64_t wal_appends() const { return log_->appends(); }
  uint64_t wal_fsyncs() const { return log_->fsyncs(); }
  uint64_t wal_bytes() const { return log_->durable_bytes(); }
  bool degraded() const { return log_->degraded(); }
  const std::string& path() const { return path_; }
  const Options& options() const { return options_; }

  /// "<path>.wal" — the log location convention.
  static std::string WalPath(const std::string& store_path) {
    return store_path + ".wal";
  }

 private:
  DurableStore() = default;

  std::string path_;  // empty = ephemeral
  Options options_;
  std::unique_ptr<storage::MctStore> store_;
  std::unique_ptr<LogWriter> log_;
  RecoveryStats recovery_;

  std::mutex write_mu_;       // serializes Apply bodies and Checkpoint
  Lsn last_applied_ = kNoLsn;  // guarded by write_mu_
};

}  // namespace mctdb::wal
