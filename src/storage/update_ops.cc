#include "storage/update_ops.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <unordered_set>

#include "common/logging.h"
#include "storage/delta.h"
#include "storage/store.h"

namespace mctdb::storage {

namespace {

// ---------------------------------------------------------------------------
// WAL payload codec: little-endian, length-prefixed, no padding.

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}
void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

class PayloadReader {
 public:
  explicit PayloadReader(std::string_view s) : s_(s) {}

  uint8_t U8() {
    if (pos_ + 1 > s_.size()) return Fail<uint8_t>();
    return static_cast<uint8_t>(s_[pos_++]);
  }
  uint32_t U32() {
    if (pos_ + 4 > s_.size()) return Fail<uint32_t>();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= uint32_t(static_cast<unsigned char>(s_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (failed_ || pos_ + n > s_.size()) return Fail<std::string>();
    std::string v(s_.substr(pos_, n));
    pos_ += n;
    return v;
  }
  bool failed() const { return failed_; }
  bool exhausted() const { return pos_ == s_.size(); }

 private:
  template <typename T>
  T Fail() {
    failed_ = true;
    return T{};
  }
  std::string_view s_;
  size_t pos_ = 0;
  bool failed_ = false;
};

void EncodeSubtree(const SubtreeSpec& s, std::string* out) {
  PutU32(out, s.type);
  PutU32(out, s.logical);
  PutU32(out, static_cast<uint32_t>(s.attrs.size()));
  for (const SubtreeSpec::Attr& a : s.attrs) {
    PutStr(out, a.name);
    PutStr(out, a.value);
    PutU8(out, a.with_content ? 1 : 0);
  }
  PutU32(out, static_cast<uint32_t>(s.children.size()));
  for (const SubtreeSpec& c : s.children) EncodeSubtree(c, out);
}

bool DecodeSubtree(PayloadReader* r, SubtreeSpec* out, int depth) {
  if (depth > 64) return false;  // malicious/corrupt nesting
  out->type = r->U32();
  out->logical = r->U32();
  uint32_t nattrs = r->U32();
  if (r->failed() || nattrs > (1u << 20)) return false;
  out->attrs.resize(nattrs);
  for (SubtreeSpec::Attr& a : out->attrs) {
    a.name = r->Str();
    a.value = r->Str();
    a.with_content = r->U8() != 0;
  }
  uint32_t nchildren = r->U32();
  if (r->failed() || nchildren > (1u << 20)) return false;
  out->children.resize(nchildren);
  for (SubtreeSpec& c : out->children) {
    if (!DecodeSubtree(r, &c, depth + 1)) return false;
  }
  return !r->failed();
}

/// The type's declared key attribute name, or nullptr.
const std::string* KeyAttrName(const er::ErDiagram& d, er::NodeId node) {
  for (const er::Attribute& a : d.node(node).attributes) {
    if (a.is_key) return &a.name;
  }
  return nullptr;
}

}  // namespace

const char* UpdateKindName(UpdateOp::Kind kind) {
  switch (kind) {
    case UpdateOp::Kind::kInsertSubtree:
      return "U1";
    case UpdateOp::Kind::kDeleteSubtree:
      return "U2";
    case UpdateOp::Kind::kRenameValue:
      return "U3";
  }
  return "U?";
}

std::string DebugString(const UpdateOp& op) {
  std::string s = UpdateKindName(op.kind);
  switch (op.kind) {
    case UpdateOp::Kind::kInsertSubtree:
      s += " insert type " + std::to_string(op.subtree.type) + "#" +
           std::to_string(op.subtree.logical) + " under type " +
           std::to_string(op.target_type) + "#" +
           std::to_string(op.target_logical);
      break;
    case UpdateOp::Kind::kDeleteSubtree:
      s += " delete type " + std::to_string(op.target_type) + "#" +
           std::to_string(op.target_logical);
      break;
    case UpdateOp::Kind::kRenameValue:
      s += " rename " + op.attr + " of type " +
           std::to_string(op.target_type) + "#" +
           std::to_string(op.target_logical) + " to \"" + op.new_value +
           "\"";
      break;
  }
  return s;
}

void EncodeUpdateOp(const UpdateOp& op, std::string* out) {
  PutU8(out, static_cast<uint8_t>(op.kind));
  PutU32(out, op.target_type);
  PutU32(out, op.target_logical);
  switch (op.kind) {
    case UpdateOp::Kind::kInsertSubtree:
      EncodeSubtree(op.subtree, out);
      break;
    case UpdateOp::Kind::kDeleteSubtree:
      break;
    case UpdateOp::Kind::kRenameValue:
      PutStr(out, op.attr);
      PutStr(out, op.new_value);
      break;
  }
}

Result<UpdateOp> DecodeUpdateOp(std::string_view payload) {
  PayloadReader r(payload);
  UpdateOp op;
  uint8_t kind = r.U8();
  if (kind < 1 || kind > 3) {
    return Status::Corruption("update op: bad kind byte");
  }
  op.kind = static_cast<UpdateOp::Kind>(kind);
  op.target_type = r.U32();
  op.target_logical = r.U32();
  bool ok = true;
  switch (op.kind) {
    case UpdateOp::Kind::kInsertSubtree:
      ok = DecodeSubtree(&r, &op.subtree, 0);
      break;
    case UpdateOp::Kind::kDeleteSubtree:
      break;
    case UpdateOp::Kind::kRenameValue:
      op.attr = r.Str();
      op.new_value = r.Str();
      break;
  }
  if (!ok || r.failed() || !r.exhausted()) {
    return Status::Corruption("update op: malformed payload");
  }
  return op;
}

// ---------------------------------------------------------------------------
// Verification (schema-only).

namespace {

Status VerifyInsertNode(const mct::MctSchema& schema, const SubtreeSpec& node,
                        er::NodeId partner_type,
                        std::unordered_set<uint64_t>* logicals_seen) {
  const er::ErDiagram& diagram = schema.diagram();
  const er::ErGraph& graph = schema.graph();
  if (node.type >= diagram.num_nodes()) {
    return Status::InvalidArgument("insert: unknown node type");
  }
  const std::string& type_name = diagram.node(node.type).name;
  if (!logicals_seen
           ->insert((uint64_t{node.type} << 32) | node.logical)
           .second) {
    return Status::InvalidArgument("insert: duplicate new logical id for " +
                                   type_name);
  }
  // The nesting edge must exist in the ER graph.
  bool edge_found = false;
  for (er::EdgeId eid : graph.incident(node.type)) {
    if (graph.edge(eid).other(node.type) == partner_type) {
      edge_found = true;
      break;
    }
  }
  if (!edge_found) {
    return Status::InvalidArgument(
        "insert: no ER edge between " + type_name + " and " +
        diagram.node(partner_type).name);
  }
  // The key attribute must be in the spec (key index and value joins need
  // it on every schema).
  if (const std::string* key = KeyAttrName(diagram, node.type)) {
    bool has_key = false;
    for (const SubtreeSpec::Attr& a : node.attrs) has_key |= a.name == *key;
    if (!has_key) {
      return Status::InvalidArgument("insert: spec for " + type_name +
                                     " misses key attribute " + *key);
    }
  }
  // Supported placement class: every occurrence of the type is a root or
  // nests under the spec partner's type. Anything else would require
  // placements the applier cannot derive from the op.
  std::unordered_set<er::NodeId> spec_partners{partner_type};
  for (const SubtreeSpec& c : node.children) spec_partners.insert(c.type);
  for (mct::OccId oid : schema.OccurrencesOf(node.type)) {
    const mct::SchemaOcc& occ = schema.occ(oid);
    if (occ.is_root()) continue;
    if (schema.occ(occ.parent).er_node != partner_type) {
      return Status::NotSupported(
          "insert: " + type_name + " occurs under " +
          diagram.node(schema.occ(occ.parent).er_node).name + " in schema " +
          schema.name() + "; only root or " +
          diagram.node(partner_type).name + "-nested occurrences are "
          "supported");
    }
  }
  // Ref edges leaving the type must point at a spec partner (we can fill
  // those idrefs from the op); anything else is an association we cannot
  // realize.
  for (const mct::RefEdge& re : schema.ref_edges()) {
    if (schema.occ(re.from).er_node != node.type) continue;
    if (spec_partners.count(re.target) == 0) {
      return Status::NotSupported(
          "insert: " + type_name + " carries an idref to " +
          diagram.node(re.target).name + " outside the inserted subtree");
    }
  }
  for (const SubtreeSpec& c : node.children) {
    MCTDB_RETURN_IF_ERROR(
        VerifyInsertNode(schema, c, node.type, logicals_seen));
  }
  return Status::OK();
}

}  // namespace

Status VerifyUpdateOp(const mct::MctSchema& schema, const UpdateOp& op) {
  const er::ErDiagram& diagram = schema.diagram();
  if (op.target_type >= diagram.num_nodes()) {
    return Status::InvalidArgument("update op: unknown target type");
  }
  switch (op.kind) {
    case UpdateOp::Kind::kInsertSubtree: {
      std::unordered_set<uint64_t> logicals_seen;
      return VerifyInsertNode(schema, op.subtree, op.target_type,
                              &logicals_seen);
    }
    case UpdateOp::Kind::kDeleteSubtree:
      return Status::OK();
    case UpdateOp::Kind::kRenameValue: {
      for (const er::Attribute& a : diagram.node(op.target_type).attributes) {
        if (a.name != op.attr) continue;
        if (a.is_key) {
          return Status::InvalidArgument(
              "rename: " + op.attr + " is a key attribute (idref joins "
              "would dangle)");
        }
        return Status::OK();
      }
      return Status::InvalidArgument(
          "rename: " + diagram.node(op.target_type).name +
          " has no attribute " + op.attr);
    }
  }
  return Status::InvalidArgument("update op: bad kind");
}

// ---------------------------------------------------------------------------
// Application. All methods run with the delta mutex held exclusively; they
// read base state directly (MctStore friendship) instead of through the
// locking accessors.

class UpdateApplier {
 public:
  UpdateApplier(MctStore* store, Lsn lsn)
      : s_(store), d_(store->deltas_.get()), lsn_(lsn) {}

  Result<ApplyStats> Apply(const UpdateOp& op) {
    std::unique_lock lk(d_->mu);
    switch (op.kind) {
      case UpdateOp::Kind::kInsertSubtree:
        return Insert(op);
      case UpdateOp::Kind::kDeleteSubtree:
        return Delete(op);
      case UpdateOp::Kind::kRenameValue:
        return Rename(op);
    }
    return Status::InvalidArgument("update op: bad kind");
  }

 private:
  size_t num_colors() const { return s_->labels_.size(); }

  bool IsRemoved(mct::ColorId c, ElemId elem) const {
    return d_->label_removed[c].count(elem) != 0;
  }

  /// Live label of `elem` in `c` at the latest applied state.
  bool LabelLocked(mct::ColorId c, ElemId elem, LabelEntry* out) const {
    if (IsRemoved(c, elem)) return false;
    auto it = s_->labels_[c].find(elem);
    if (it != s_->labels_[c].end()) {
      *out = it->second;
      return true;
    }
    auto ad = d_->label_added[c].find(elem);
    if (ad == d_->label_added[c].end()) return false;
    *out = ad->second.entry;
    return true;
  }

  bool IsElementDeleted(ElemId elem) const {
    return d_->element_deleted.count(elem) != 0;
  }

  std::vector<ElemId> ElementsForLocked(er::NodeId type,
                                        uint32_t logical) const {
    std::vector<ElemId> out;
    if (type < s_->key_index_.size()) {
      auto it = s_->key_index_[type].find(logical);
      if (it != s_->key_index_[type].end()) out = it->second;
    }
    auto added = d_->key_index_added[type].find(logical);
    if (added != d_->key_index_added[type].end()) {
      for (const auto& [lsn, elem] : added->second) out.push_back(elem);
    }
    out.erase(std::remove_if(out.begin(), out.end(),
                             [&](ElemId e) { return IsElementDeleted(e); }),
              out.end());
    return out;
  }

  uint32_t InternAttrNameLocked(std::string_view name) {
    auto it = s_->attr_name_index_.find(std::string(name));
    if (it != s_->attr_name_index_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(s_->attr_names_.size());
    s_->attr_names_.emplace_back(name);
    s_->attr_name_index_.emplace(s_->attr_names_.back(), id);
    return id;
  }

  uint32_t InternValueLocked(std::string_view value) {
    auto it = s_->value_index_.find(std::string(value));
    if (it != s_->value_index_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(s_->values_.size());
    s_->values_.emplace_back(value);
    s_->value_index_.emplace(s_->values_.back(), id);
    return id;
  }

  const std::string* AttrValueLocked(ElemId elem, uint32_t name_id) const {
    auto revs = d_->attr_revs.find(StoreDeltas::AttrKey(elem, name_id));
    if (revs != d_->attr_revs.end() && !revs->second.empty()) {
      return &s_->values_[revs->second.back().value_id];
    }
    for (const AttrRecord& a : s_->attrs_[elem]) {
      if (a.name_id == name_id) return &s_->values_[a.value_id];
    }
    return nullptr;
  }

  // -- U3 -------------------------------------------------------------------

  Result<ApplyStats> Rename(const UpdateOp& op) {
    std::vector<ElemId> elems =
        ElementsForLocked(op.target_type, op.target_logical);
    if (elems.empty()) {
      return Status::NotFound("rename: no such instance");
    }
    auto it = s_->attr_name_index_.find(op.attr);
    if (it == s_->attr_name_index_.end()) {
      return Status::NotFound("rename: attribute never materialized: " +
                              op.attr);
    }
    uint32_t name_id = it->second;
    uint32_t value_id = InternValueLocked(op.new_value);
    ApplyStats stats;
    std::unordered_set<mct::ColorId> colors;
    for (ElemId elem : elems) {
      bool has = false;
      for (const AttrRecord& a : s_->attrs_[elem]) has |= a.name_id == name_id;
      if (!has) continue;
      d_->attr_revs[StoreDeltas::AttrKey(elem, name_id)].push_back(
          {lsn_, value_id});
      ++stats.elements_touched;
      LabelEntry tmp;
      for (mct::ColorId c = 0; c < num_colors(); ++c) {
        if (LabelLocked(c, elem, &tmp)) colors.insert(c);
      }
    }
    if (stats.elements_touched == 0) {
      return Status::NotFound("rename: attribute absent on every element");
    }
    stats.colors_touched = colors.size();
    return stats;
  }

  // -- U2 -------------------------------------------------------------------

  Result<ApplyStats> Delete(const UpdateOp& op) {
    std::vector<ElemId> roots =
        ElementsForLocked(op.target_type, op.target_logical);
    if (roots.empty()) {
      return Status::NotFound("delete: no such instance");
    }
    ApplyStats stats;
    std::unordered_set<ElemId> victims;
    for (mct::ColorId c = 0; c < num_colors(); ++c) {
      std::vector<LabelEntry> targets;
      LabelEntry le;
      for (ElemId r : roots) {
        if (LabelLocked(c, r, &le)) targets.push_back(le);
      }
      if (targets.empty()) continue;
      auto contained = [&](const LabelEntry& e) {
        for (const LabelEntry& t : targets) {
          if (t.start <= e.start && e.end <= t.end) return true;
        }
        return false;
      };
      std::vector<ElemId> doomed;
      for (const auto& [elem, label] : s_->labels_[c]) {
        if (!IsRemoved(c, elem) && contained(label)) doomed.push_back(elem);
      }
      for (const auto& [elem, versioned_label] : d_->label_added[c]) {
        if (!IsRemoved(c, elem) && contained(versioned_label.entry)) {
          doomed.push_back(elem);
        }
      }
      for (ElemId elem : doomed) {
        d_->label_removed[c][elem] = lsn_;
        victims.insert(elem);
        ++stats.labels_touched;
      }
      if (!doomed.empty()) ++stats.colors_touched;
    }
    // An element dies when its last placement disappears.
    for (ElemId elem : victims) {
      bool alive = false;
      LabelEntry tmp;
      for (mct::ColorId c = 0; c < num_colors() && !alive; ++c) {
        alive = LabelLocked(c, elem, &tmp);
      }
      if (!alive) {
        d_->element_deleted[elem] = lsn_;
        ++stats.elements_touched;
      }
    }
    return stats;
  }

  // -- U1 -------------------------------------------------------------------

  /// Flattened spec node with per-schema extras resolved.
  struct NewNode {
    const SubtreeSpec* spec = nullptr;
    int parent = -1;  ///< index into nodes_, -1 for the subtree root
    /// Attr records to write on every element of this node (spec attrs +
    /// schema-derived idrefs), interned.
    std::vector<AttrRecord> attr_records;
    ElemId primary = kInvalidElem;
    std::vector<int> children;
  };

  /// Per (node, color) placement mode.
  enum class Mode : uint8_t { kAbsent, kUnder, kTop };

  void Flatten(const SubtreeSpec& spec, int parent, std::vector<NewNode>* out) {
    int index = static_cast<int>(out->size());
    out->push_back({});
    (*out)[index].spec = &spec;
    (*out)[index].parent = parent;
    if (parent >= 0) (*out)[parent].children.push_back(index);
    for (const SubtreeSpec& c : spec.children) Flatten(c, index, out);
  }

  /// Highest label value consumed strictly inside (lo, hi) — removed
  /// placements keep occupying their values, so both base and added maps
  /// count regardless of tombstones.
  uint32_t MaxLabelInRange(mct::ColorId c, uint32_t lo, uint32_t hi) const {
    uint32_t best = lo;
    auto consider = [&](const LabelEntry& e) {
      if (e.start > lo && e.start < hi) best = std::max(best, e.start);
      if (e.end > lo && e.end < hi) best = std::max(best, e.end);
    };
    for (const auto& [elem, label] : s_->labels_[c]) consider(label);
    for (const auto& [elem, versioned_label] : d_->label_added[c]) {
      consider(versioned_label.entry);
    }
    return best;
  }

  ElemId CreateElement(const NewNode& node, bool is_copy) {
    ElemId id = static_cast<ElemId>(s_->elements_.size());
    s_->elements_.push_back(
        {node.spec->type, node.spec->logical, is_copy});
    std::vector<AttrRecord> recs = node.attr_records;
    for (const AttrRecord& rec : recs) {
      ++s_->num_attribute_nodes_;
      if (rec.has_content) ++s_->num_content_nodes_;
    }
    s_->attrs_.push_back(std::move(recs));
    d_->element_created.emplace(id, lsn_);
    d_->key_index_added[node.spec->type][node.spec->logical].push_back(
        {lsn_, id});
    return id;
  }

  bool HasAnyLabel(mct::ColorId c, ElemId elem) const {
    // Tombstoned placements block relabeling too: label values must never
    // be reused within a color between checkpoints.
    return s_->labels_[c].count(elem) != 0 ||
           d_->label_added[c].count(elem) != 0;
  }

  /// Places the kUnder-connected group rooted at `root_index` with labels
  /// drawn from (lo, hi) (hi == 0 means unbounded top-level placement).
  /// `parent_elem` / `base_level` anchor the group. Returns false when the
  /// label gap cannot hold the group.
  bool PlaceGroup(mct::ColorId c, const std::vector<Mode>& mode,
                  std::vector<NewNode>* nodes, int root_index,
                  ElemId parent_elem, uint16_t base_level, uint32_t lo,
                  uint32_t hi, ApplyStats* stats) {
    // Count group members (kUnder-chained from root_index).
    std::vector<int> members;
    std::vector<int> stack{root_index};
    while (!stack.empty()) {
      int i = stack.back();
      stack.pop_back();
      members.push_back(i);
      for (int ch : (*nodes)[i].children) {
        if (mode[ch] == Mode::kUnder) stack.push_back(ch);
      }
    }
    uint32_t need = static_cast<uint32_t>(2 * members.size());
    uint32_t spread;
    if (hi == 0) {
      spread = 8;  // top-level: open-ended label space after the high water
    } else {
      uint32_t avail = hi - lo - 1;
      if (avail < need) return false;
      spread = std::min<uint32_t>(avail / need, 8);
      if (spread == 0) spread = 1;
    }
    // DFS in spec order, assigning elements and labels.
    uint32_t v = lo;
    std::unordered_set<int> group(members.begin(), members.end());
    // Recursive lambda over the spec structure.
    auto place = [&](auto&& self, int ni, ElemId parent, uint16_t level)
        -> void {
      NewNode& n = (*nodes)[ni];
      ElemId eid;
      bool is_copy;
      if (n.primary == kInvalidElem) {
        n.primary = CreateElement(n, /*is_copy=*/false);
        eid = n.primary;
        is_copy = false;
        ++stats->elements_touched;
      } else if (!HasAnyLabel(c, n.primary)) {
        eid = n.primary;
        is_copy = false;
      } else {
        eid = CreateElement(n, /*is_copy=*/true);
        is_copy = true;
        ++stats->elements_touched;
      }
      LabelEntry entry;
      entry.elem = eid;
      v += spread;
      entry.start = v;
      entry.level = level;
      entry.is_copy = is_copy ? 1 : 0;
      entry.logical = n.spec->logical;
      for (int ch : n.children) {
        if (group.count(ch) != 0) self(self, ch, eid, level + 1);
      }
      v += spread;
      entry.end = v;
      d_->label_added[c].emplace(eid, DeltaPostingEntry{lsn_, entry});
      if (parent != kInvalidElem) d_->parent_added[c][eid] = parent;
      d_->posting_adds[StoreDeltas::PostingKey(c, n.spec->type)].push_back(
          {lsn_, entry});
      if (hi == 0) {
        d_->label_high_water[c] = std::max(d_->label_high_water[c], v);
      }
      ++stats->labels_touched;
    };
    place(place, root_index, parent_elem, base_level);
    if (hi != 0) {
      // Residual headroom above the group just placed: the gap-pressure
      // signal. `v` is the highest value consumed, labels are drawn
      // strictly below `hi`.
      uint32_t headroom = hi > v + 1 ? hi - v - 1 : 0;
      stats->min_free_gap = std::min(stats->min_free_gap, headroom);
    }
    return true;
  }

  Result<ApplyStats> Insert(const UpdateOp& op) {
    const mct::MctSchema& schema = *s_->schema_;
    MCTDB_RETURN_IF_ERROR(VerifyUpdateOp(schema, op));
    std::vector<ElemId> parents =
        ElementsForLocked(op.target_type, op.target_logical);
    if (parents.empty()) {
      return Status::NotFound("insert: parent instance not found");
    }
    std::vector<NewNode> nodes;
    Flatten(op.subtree, -1, &nodes);
    for (const NewNode& n : nodes) {
      if (!ElementsForLocked(n.spec->type, n.spec->logical).empty()) {
        return Status::AlreadyExists(
            "insert: logical id already in use for type " +
            schema.diagram().node(n.spec->type).name);
      }
    }
    // Resolve attr records per node: spec attrs plus schema-derived idref
    // attributes (the value-join realization of the nesting edges).
    for (NewNode& n : nodes) {
      for (const SubtreeSpec::Attr& a : n.spec->attrs) {
        AttrRecord rec;
        rec.name_id = InternAttrNameLocked(a.name);
        rec.value_id = InternValueLocked(a.value);
        rec.has_content = a.with_content;
        n.attr_records.push_back(rec);
      }
      for (const mct::RefEdge& re : schema.ref_edges()) {
        if (schema.occ(re.from).er_node != n.spec->type) continue;
        // Verify guaranteed the target is the spec partner or a spec child.
        std::string key_value;
        const std::string* partner_key = nullptr;
        if (n.parent < 0 && re.target == op.target_type) {
          const std::string* key =
              KeyAttrName(schema.diagram(), op.target_type);
          if (key == nullptr) continue;
          auto key_it = s_->attr_name_index_.find(*key);
          if (key_it == s_->attr_name_index_.end()) continue;
          partner_key = AttrValueLocked(parents[0], key_it->second);
        } else {
          // Parent-spec or child-spec partner: read the key from the spec.
          const NewNode* partner = nullptr;
          if (n.parent >= 0 && nodes[n.parent].spec->type == re.target) {
            partner = &nodes[n.parent];
          } else {
            for (int ch : n.children) {
              if (nodes[ch].spec->type == re.target) partner = &nodes[ch];
            }
          }
          if (partner == nullptr) continue;
          const std::string* key =
              KeyAttrName(schema.diagram(), re.target);
          if (key == nullptr) continue;
          for (const SubtreeSpec::Attr& a : partner->spec->attrs) {
            if (a.name == *key) {
              key_value = a.value;
              partner_key = &key_value;
            }
          }
        }
        if (partner_key == nullptr) continue;
        AttrRecord rec;
        rec.name_id = InternAttrNameLocked(re.attr_name);
        rec.value_id = InternValueLocked(*partner_key);
        rec.has_content = false;
        n.attr_records.push_back(rec);
      }
    }
    // Per-color placement modes.
    ApplyStats stats;
    for (mct::ColorId c = 0; c < num_colors(); ++c) {
      std::vector<Mode> mode(nodes.size(), Mode::kAbsent);
      for (size_t i = 0; i < nodes.size(); ++i) {
        er::NodeId type = nodes[i].spec->type;
        er::NodeId partner = nodes[i].parent < 0
                                 ? op.target_type
                                 : nodes[nodes[i].parent].spec->type;
        bool structural = false;
        bool at_root = false;
        for (mct::OccId oid : schema.OccurrencesOf(type)) {
          const mct::SchemaOcc& occ = schema.occ(oid);
          if (occ.color != c) continue;
          if (occ.is_root()) {
            at_root = true;
          } else if (schema.occ(occ.parent).er_node == partner) {
            structural = true;
          }
        }
        // Structural nesting requires the partner to be present in the
        // color; the op parent always is when it has a label here.
        if (structural &&
            (nodes[i].parent < 0 || mode[nodes[i].parent] != Mode::kAbsent)) {
          mode[i] = Mode::kUnder;
        } else if (at_root) {
          mode[i] = Mode::kTop;
        }
      }
      bool color_touched = false;
      // Parent-anchored groups: one per live placement of the parent
      // instance, placements in document order (deterministic replay).
      if (mode[0] == Mode::kUnder) {
        std::vector<LabelEntry> parent_labels;
        LabelEntry le;
        for (ElemId p : parents) {
          if (LabelLocked(c, p, &le)) parent_labels.push_back(le);
        }
        std::sort(parent_labels.begin(), parent_labels.end(),
                  [](const LabelEntry& a, const LabelEntry& b) {
                    return a.start < b.start;
                  });
        for (const LabelEntry& pl : parent_labels) {
          uint32_t lo = MaxLabelInRange(c, pl.start, pl.end);
          if (!PlaceGroup(c, mode, &nodes, 0, pl.elem,
                          static_cast<uint16_t>(pl.level + 1), lo, pl.end,
                          &stats)) {
            return Status::ResourceExhausted(
                "insert: interval-label gap exhausted under parent in "
                "color " +
                std::to_string(c) + "; checkpoint the store to relabel");
          }
          color_touched = true;
        }
      }
      // Top-level groups: once per color.
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (mode[i] != Mode::kTop) continue;
        uint32_t lo = d_->label_high_water[c];
        if (!PlaceGroup(c, mode, &nodes, static_cast<int>(i), kInvalidElem,
                        /*base_level=*/0, lo, /*hi=*/0, &stats)) {
          return Status::ResourceExhausted("insert: label space exhausted");
        }
        color_touched = true;
      }
      if (color_touched) ++stats.colors_touched;
    }
    if (stats.labels_touched == 0) {
      return Status::NotSupported(
          "insert: no color realizes the nesting edge for this schema");
    }
    return stats;
  }

  MctStore* s_;
  StoreDeltas* d_;
  Lsn lsn_;
};

Result<ApplyStats> ApplyUpdateOp(MctStore* store, const UpdateOp& op,
                                 Lsn lsn) {
  if (!store->versioned()) {
    return Status::Internal("ApplyUpdateOp: store has no versioning enabled");
  }
  UpdateApplier applier(store, lsn);
  return applier.Apply(op);
}

}  // namespace mctdb::storage
