#include "workload/runner.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "analysis/plan_verify.h"
#include "common/logging.h"
#include "query/planner.h"
#include "service/query_service.h"

namespace mctdb::workload {

namespace {

Measurement MakeMeasurement(const std::string& schema,
                            const std::string& name,
                            const query::AssociationQuery& q,
                            const query::PlanStats& plan_stats,
                            std::vector<double> times,
                            const query::ExecResult& last) {
  Measurement m;
  m.schema = schema;
  m.query = name;
  m.plan = plan_stats;
  m.seconds = MedianSeconds(std::move(times));
  m.unique_results = q.is_update() ? last.logicals_updated : last.unique_count;
  m.raw_results = q.is_update() ? last.elements_updated : last.raw_count;
  m.elements_updated = last.elements_updated;
  m.page_misses = last.page_misses;
  m.page_hits = last.page_hits;
  m.join_pairs = last.join_pairs;
  m.stages = obs::AggregateByStage(last.trace);
  return m;
}

/// Shared admission check of both grid paths: statically verify the plan
/// before executing it, so a malformed plan becomes a problem row instead
/// of a crashed worker, with an identical message either way.
bool VerifyPlanOrReport(const query::QueryPlan& plan,
                        const std::string& name, const std::string& schema,
                        std::vector<std::string>* problems) {
  analysis::DiagnosticReport report = analysis::VerifyPlan(plan);
  if (!report.has_errors()) return true;
  problems->push_back(name + " on " + schema +
                      ": plan verification failed:\n" + report.ToText());
  return false;
}

/// Record `last` for the equivalence check: the first schema to report a
/// query becomes the reference, later schemas must match it logically.
void CheckEquivalence(const RunnerOptions& options,
                      const query::AssociationQuery& q,
                      const std::string& name, const std::string& schema,
                      const query::ExecResult& last,
                      std::map<std::string, std::vector<uint32_t>>* reference,
                      std::vector<std::string>* problems) {
  if (!options.check_equivalence || q.is_update()) return;
  auto [it, inserted] = reference->emplace(name, last.logicals);
  if (!inserted && it->second != last.logicals) {
    problems->push_back("equivalence violation: " + name + " on " + schema);
  }
}

/// The classic single-threaded grid loop over the stores' own pools.
void RunGridSerial(const Workload& workload, const RunnerOptions& options,
                   const std::vector<mct::MctSchema>& schemas,
                   const std::vector<std::unique_ptr<storage::MctStore>>&
                       stores,
                   RunSummary* summary) {
  std::map<std::string, std::vector<uint32_t>> reference;
  for (size_t i = 0; i < schemas.size(); ++i) {
    for (const std::string& name : workload.figure_queries) {
      const query::AssociationQuery* q = workload.Find(name);
      if (q == nullptr) {
        summary->problems.push_back("unknown figure query " + name);
        continue;
      }
      auto plan = query::PlanQuery(*q, schemas[i]);
      if (!plan.ok()) {
        summary->problems.push_back(name + " on " + schemas[i].name() +
                                    ": " + plan.status().ToString());
        continue;
      }
      if (!VerifyPlanOrReport(*plan, name, schemas[i].name(),
                              &summary->problems)) {
        continue;
      }
      query::Executor exec(stores[i].get());
      std::vector<double> times;
      query::ExecResult last;
      bool failed = false;
      for (size_t rep = 0; rep < std::max<size_t>(1, options.repetitions);
           ++rep) {
        auto result = exec.Execute(*plan);
        if (!result.ok()) {
          summary->problems.push_back(name + " on " + schemas[i].name() +
                                      ": " + result.status().ToString());
          failed = true;
          break;
        }
        times.push_back(result->elapsed_seconds);
        last = *result;
      }
      if (failed) continue;
      summary->measurements.push_back(MakeMeasurement(
          schemas[i].name(), name, *q, plan->Stats(), std::move(times),
          last));
      CheckEquivalence(options, *q, name, schemas[i].name(), last,
                       &reference, &summary->problems);
    }
  }
}

/// Fans the grid through an mctsvc::QueryService: one session per schema
/// keeps each store's query-and-update sequence in serial order (so
/// results, including update side effects and page-miss counts on an
/// unpressured pool, match the serial run), while schemas proceed in
/// parallel on the worker pool.
void RunGridParallel(const Workload& workload, const RunnerOptions& options,
                     const std::vector<mct::MctSchema>& schemas,
                     const std::vector<std::unique_ptr<storage::MctStore>>&
                         stores,
                     RunSummary* summary) {
  const size_t reps = std::max<size_t>(1, options.repetitions);

  mctsvc::ServiceOptions sopts;
  sopts.num_threads = options.num_threads;
  sopts.pool_pages = options.store.buffer_pool_pages;
  // The whole grid is staged up front; size the admission window for it.
  sopts.max_queued =
      schemas.size() * workload.figure_queries.size() * reps + 1;
  mctsvc::QueryService service(sopts);

  std::vector<std::shared_ptr<mctsvc::QueryService::Session>> sessions;
  for (size_t i = 0; i < schemas.size(); ++i) {
    Status added = service.AddStore(schemas[i].name(), stores[i].get());
    MCTDB_CHECK_MSG(added.ok(), added.ToString().c_str());
    auto session = service.OpenSession(schemas[i].name());
    MCTDB_CHECK_MSG(session.ok(), session.status().ToString().c_str());
    sessions.push_back(*session);
  }

  struct Cell {
    const query::AssociationQuery* q = nullptr;
    std::string name;
    std::optional<query::QueryPlan> plan;
    std::vector<mctsvc::QueryFuture> rep_futures;
  };
  std::vector<std::vector<Cell>> grid(schemas.size());

  // Planning phase: plan every cell into the grid (planning problems
  // recorded in the same schema-major order as the serial loop). Nothing
  // is submitted yet: the service keeps a pointer to each plan, so all
  // cells must reach their final addresses first.
  for (size_t i = 0; i < schemas.size(); ++i) {
    for (const std::string& name : workload.figure_queries) {
      Cell cell;
      cell.name = name;
      cell.q = workload.Find(name);
      if (cell.q == nullptr) {
        summary->problems.push_back("unknown figure query " + name);
        grid[i].push_back(std::move(cell));
        continue;
      }
      auto plan = query::PlanQuery(*cell.q, schemas[i]);
      if (!plan.ok()) {
        summary->problems.push_back(name + " on " + schemas[i].name() +
                                    ": " + plan.status().ToString());
        cell.q = nullptr;
        grid[i].push_back(std::move(cell));
        continue;
      }
      if (!VerifyPlanOrReport(*plan, name, schemas[i].name(),
                              &summary->problems)) {
        cell.q = nullptr;
        grid[i].push_back(std::move(cell));
        continue;
      }
      cell.plan = std::move(*plan);
      grid[i].push_back(std::move(cell));
    }
  }

  // Submission phase: stage every cell's repetitions on its schema's
  // session. The grid is fully built, so plan addresses are stable for the
  // lifetime of the in-flight requests.
  for (size_t i = 0; i < schemas.size(); ++i) {
    for (Cell& cell : grid[i]) {
      if (cell.q == nullptr) continue;
      for (size_t rep = 0; rep < reps; ++rep) {
        // kHigh: the runner sized max_queued to hold the whole batch and
        // has no interactive traffic to protect, so the load-shedding
        // watermarks must not apply to its own staged submissions.
        auto future =
            sessions[i]->Submit(*cell.plan, 0.0, mctsvc::Priority::kHigh);
        MCTDB_CHECK_MSG(future.ok(), future.status().ToString().c_str());
        cell.rep_futures.push_back(std::move(*future));
      }
    }
  }

  // Gather phase, schema-major like the serial loop, so measurements,
  // equivalence references, and problem ordering come out identical.
  std::map<std::string, std::vector<uint32_t>> reference;
  for (size_t i = 0; i < schemas.size(); ++i) {
    for (Cell& cell : grid[i]) {
      if (cell.q == nullptr) continue;
      std::vector<double> times;
      query::ExecResult last;
      bool failed = false;
      for (auto& future : cell.rep_futures) {
        auto result = future.get();
        if (!result.ok()) {
          summary->problems.push_back(cell.name + " on " +
                                      schemas[i].name() + ": " +
                                      result.status().ToString());
          failed = true;
          break;
        }
        times.push_back(result->elapsed_seconds);
        last = std::move(*result);
      }
      if (failed) continue;
      summary->measurements.push_back(MakeMeasurement(
          schemas[i].name(), cell.name, *cell.q, cell.plan->Stats(),
          std::move(times), last));
      CheckEquivalence(options, *cell.q, cell.name, schemas[i].name(), last,
                       &reference, &summary->problems);
    }
  }
}

}  // namespace

double MedianSeconds(std::vector<double> times) {
  MCTDB_CHECK(!times.empty());
  std::sort(times.begin(), times.end());
  size_t mid = times.size() / 2;
  if (times.size() % 2 == 1) return times[mid];
  return (times[mid - 1] + times[mid]) / 2.0;
}

const Measurement* RunSummary::Find(const std::string& schema,
                                    const std::string& query) const {
  for (const Measurement& m : measurements) {
    if (m.schema == schema && m.query == query) return &m;
  }
  return nullptr;
}

Result<RunSummary> RunWorkload(const Workload& workload,
                               const RunnerOptions& options) {
  RunSummary summary;
  auto setup_start = std::chrono::steady_clock::now();
  er::ErGraph graph(workload.diagram);
  design::Designer designer(graph);
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, workload.gen);

  std::vector<mct::MctSchema> schemas;
  std::vector<std::unique_ptr<storage::MctStore>> stores;
  for (design::Strategy s : options.strategies) {
    schemas.push_back(designer.Design(s));
  }
  for (mct::MctSchema& schema : schemas) {
    instance::MaterializeOptions mat;
    mat.store = options.store;
    stores.push_back(instance::Materialize(logical, schema, mat));
    summary.storage.emplace_back(schema.name(), stores.back()->Stats());
  }
  auto grid_start = std::chrono::steady_clock::now();
  summary.setup_seconds =
      std::chrono::duration<double>(grid_start - setup_start).count();

  if (options.num_threads > 1) {
    RunGridParallel(workload, options, schemas, stores, &summary);
  } else {
    RunGridSerial(workload, options, schemas, stores, &summary);
  }
  summary.grid_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    grid_start)
          .count();
  return summary;
}

}  // namespace mctdb::workload
