#include "obs/trace_id.h"

#include <atomic>

namespace mctdb::obs {

namespace {
std::atomic<TraceId> g_next_trace_id{1};
thread_local TraceId t_current_trace_id = 0;
}  // namespace

TraceId MintTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

TraceId CurrentTraceId() { return t_current_trace_id; }

void SetCurrentTraceId(TraceId id) { t_current_trace_id = id; }

}  // namespace mctdb::obs
