// Page-level storage: a pager (the "disk") and an LRU buffer pool, modeled
// on the TIMBER setup the paper measured on (8 KB data pages, bounded
// buffer pool). Queries read posting pages strictly through the buffer
// pool, so page-miss counts and cache behavior are real, not simulated.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace mctdb::storage {

inline constexpr size_t kPageSize = 8192;

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;

/// The backing store. Allocation and writes happen at load time (single
/// threaded); reads are counted as disk I/O (they are served from a
/// separate heap area and copied, so the buffer pool is the only fast
/// path) and are safe to issue from many threads concurrently.
class Pager {
 public:
  /// Allocates a zeroed page.
  PageId Allocate();
  /// Overwrites a full page.
  void Write(PageId id, const char* data);
  /// Copies a page out; counted as one disk read. Thread-safe.
  void Read(PageId id, char* out) const;
  /// Test/bench seam: `hook` runs at the top of every Read with the page
  /// id, outside any pool lock — a hook that blocks models a slow disk.
  /// Install before concurrent readers start; not itself synchronized.
  void SetReadHook(std::function<void(PageId)> hook) {
    read_hook_ = std::move(hook);
  }
  /// Raw page bytes for persistence (not counted as query I/O).
  const char* RawPage(PageId id) const { return pages_[id].get(); }

  size_t num_pages() const { return pages_.size(); }
  size_t bytes() const { return pages_.size() * kPageSize; }
  uint64_t disk_reads() const {
    return disk_reads_.load(std::memory_order_relaxed);
  }
  uint64_t disk_writes() const {
    return disk_writes_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::unique_ptr<char[]>> pages_;
  std::function<void(PageId)> read_hook_;
  mutable std::atomic<uint64_t> disk_reads_{0};
  std::atomic<uint64_t> disk_writes_{0};
};

/// Page-cache interface shared by the single-threaded BufferPool and the
/// concurrent ShardedBufferPool. Fetch pins the frame; pinning caches keep
/// it valid until the matching Unpin, single-threaded caches may no-op
/// Unpin and only guarantee validity until the next Fetch. Every cache
/// maintains hits() + misses() == total fetches.
///
/// Attribution contract: every Fetch reports whether it missed via
/// `out_miss`, so the *fetching* caller can charge the I/O to itself (see
/// obs::ExecStats). The pool-global hits()/misses() counters aggregate
/// all callers and must never be diffed to derive a single query's cost —
/// on a shared pool, concurrent queries would bill each other.
class PageCache {
 public:
  virtual ~PageCache() = default;
  /// Returns the cached frame for `id`, faulting it in if needed, and
  /// sets `*out_miss` to whether this fetch went to the pager.
  /// [[nodiscard]]: Fetch takes a pin; dropping the frame pointer leaks
  /// the pin (the frame is never unpinnable again by this caller).
  [[nodiscard]] virtual const char* Fetch(PageId id, bool* out_miss) = 0;
  /// Convenience overload for callers that do not attribute I/O.
  [[nodiscard]] const char* Fetch(PageId id) {
    bool miss = false;
    return Fetch(id, &miss);
  }
  /// Releases one pin taken by Fetch for `id`.
  virtual void Unpin(PageId id) = 0;
  virtual uint64_t hits() const = 0;
  virtual uint64_t misses() const = 0;
};

/// Fixed-capacity LRU page cache over a Pager. Single-threaded: the query
/// path of one session must not share it with another thread (the
/// concurrent path uses ShardedBufferPool, see sharded_pool.h).
class BufferPool : public PageCache {
 public:
  BufferPool(const Pager* pager, size_t capacity_pages)
      : pager_(pager), capacity_(capacity_pages == 0 ? 1 : capacity_pages) {}

  using PageCache::Fetch;
  /// Returns a pointer to the cached frame for `id`, faulting it in (and
  /// evicting the least recently used frame) if needed. The pointer is
  /// valid until the next Fetch.
  [[nodiscard]] const char* Fetch(PageId id, bool* out_miss) override;
  void Unpin(PageId) override {}

  uint64_t hits() const override { return hits_; }
  uint64_t misses() const override { return misses_; }
  size_t resident() const { return frames_.size(); }
  size_t capacity() const { return capacity_; }
  void ResetStats() { hits_ = misses_ = 0; }

 private:
  struct Frame {
    std::unique_ptr<char[]> data;
    std::list<PageId>::iterator lru_pos;
  };

  const Pager* pager_;
  size_t capacity_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace mctdb::storage
