# Empty compiler generated dependencies file for algorithm_dumc_test.
# This may be replaced when dependencies are built.
