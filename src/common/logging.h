// Minimal assertion/logging macros (no external deps).
#pragma once

#include <cstdio>
#include <cstdlib>

/// Fatal invariant check; active in all build types because design-algorithm
/// invariants (NN/EN/forest-ness) are cheap relative to the work they guard.
#define MCTDB_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "MCTDB_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define MCTDB_CHECK_MSG(cond, msg)                                        \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "MCTDB_CHECK failed at %s:%d: %s (%s)\n",      \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)
