file(REMOVE_RECURSE
  "CMakeFiles/mctc.dir/mctc.cc.o"
  "CMakeFiles/mctc.dir/mctc.cc.o.d"
  "mctc"
  "mctc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mctc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
