#include "service/query_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "design/designer.h"
#include "instance/materialize.h"
#include "query/planner.h"
#include "wal/durable_store.h"
#include "workload/runner.h"
#include "workload/update_gen.h"
#include "workload/workload.h"

namespace mctsvc {
namespace {

using mctdb::query::ExecResult;
using mctdb::query::PlanQuery;
using mctdb::query::QueryPlan;

/// One small TPC-W store (EN schema) plus ready-made plans, shared across
/// all service tests in this file.
class QueryServiceTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    w_ = new mctdb::workload::Workload(mctdb::workload::TpcwWorkload(0.05));
    graph_ = new mctdb::er::ErGraph(w_->diagram);
    mctdb::design::Designer designer(*graph_);
    schema_ = new mctdb::mct::MctSchema(
        designer.Design(mctdb::design::Strategy::kEn));
    logical_ = new mctdb::instance::LogicalInstance(
        mctdb::instance::GenerateInstance(*graph_, w_->gen));
    store_ = mctdb::instance::Materialize(*logical_, *schema_).release();
  }
  static void TearDownTestSuite() {
    delete store_;
    store_ = nullptr;
    delete logical_;
    delete schema_;
    delete graph_;
    delete w_;
  }

  static QueryPlan Plan(const char* name) {
    const mctdb::query::AssociationQuery* q = w_->Find(name);
    EXPECT_NE(q, nullptr) << name;
    auto plan = PlanQuery(*q, *schema_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return *plan;
  }

  static mctdb::workload::Workload* w_;
  static mctdb::er::ErGraph* graph_;
  static mctdb::mct::MctSchema* schema_;
  static mctdb::instance::LogicalInstance* logical_;
  static mctdb::storage::MctStore* store_;
};

mctdb::workload::Workload* QueryServiceTest::w_ = nullptr;
mctdb::er::ErGraph* QueryServiceTest::graph_ = nullptr;
mctdb::mct::MctSchema* QueryServiceTest::schema_ = nullptr;
mctdb::instance::LogicalInstance* QueryServiceTest::logical_ = nullptr;
mctdb::storage::MctStore* QueryServiceTest::store_ = nullptr;

TEST_F(QueryServiceTest, SessionResultMatchesDirectExecutor) {
  QueryPlan plan = Plan("Q1");
  ExecResult direct;
  {
    mctdb::query::Executor exec(store_);
    auto r = exec.Execute(plan);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    direct = *r;
  }

  QueryService service;
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto future = (*session)->Submit(plan);
  ASSERT_TRUE(future.ok()) << future.status().ToString();
  auto result = future->get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->logicals, direct.logicals);
  EXPECT_EQ(result->unique_count, direct.unique_count);
  EXPECT_EQ(result->raw_count, direct.raw_count);
  EXPECT_EQ(service.metrics().completed.load(), 1u);
}

TEST_F(QueryServiceTest, RegistryErrors) {
  QueryService service;
  EXPECT_TRUE(service.AddStore("tpcw", store_).ok());
  EXPECT_TRUE(service.AddStore("tpcw", store_).IsAlreadyExists());
  EXPECT_TRUE(service.AddStore("null", nullptr).IsInvalidArgument());
  EXPECT_TRUE(service.OpenSession("nope").status().IsNotFound());
}

TEST_F(QueryServiceTest, AdmissionOverflowReturnsResourceExhausted) {
  QueryPlan plan = Plan("Q1");
  ServiceOptions options;
  options.num_threads = 1;
  options.max_queued = 2;
  options.start_paused = true;  // park workers: staging is deterministic
  QueryService service(options);
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok());

  // kHigh bypasses the shedding watermarks (max_queued=2 puts them below
  // the hard limit), so this test exercises the hard limit in isolation.
  auto f1 = (*session)->Submit(plan, 0.0, Priority::kHigh);
  auto f2 = (*session)->Submit(plan, 0.0, Priority::kHigh);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  auto f3 = (*session)->Submit(plan, 0.0, Priority::kHigh);
  ASSERT_FALSE(f3.ok());
  EXPECT_TRUE(f3.status().IsResourceExhausted()) << f3.status().ToString();
  EXPECT_EQ(service.metrics().rejected.load(), 1u);
  EXPECT_EQ(service.metrics().queue_depth.load(), 2u);

  service.Resume();
  EXPECT_TRUE(f1->get().ok());
  EXPECT_TRUE(f2->get().ok());
  service.Drain();
  EXPECT_EQ(service.metrics().completed.load(), 2u);
  EXPECT_EQ(service.metrics().queue_depth.load(), 0u);
  // The window freed up: the next submission is admitted again.
  auto f4 = (*session)->Submit(plan);
  ASSERT_TRUE(f4.ok());
  EXPECT_TRUE(f4->get().ok());
}

TEST_F(QueryServiceTest, ExpiredDeadlineCancelsCleanly) {
  QueryPlan plan = Plan("Q1");
  ServiceOptions options;
  options.num_threads = 1;
  options.start_paused = true;
  QueryService service(options);
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok());

  // Stage a request whose deadline expires while the workers are parked.
  auto doomed = (*session)->Submit(plan, 1e-3);
  ASSERT_TRUE(doomed.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.Resume();
  auto result = doomed->get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  service.Drain();
  EXPECT_EQ(service.metrics().deadline_exceeded.load(), 1u);
  // The cancelled request must not wedge the session strand.
  auto after = (*session)->Submit(plan);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->get().ok());
}

TEST_F(QueryServiceTest, MalformedPlanRejectedBeforeAdmission) {
  // The static verifier gates admission: a corrupted plan must come back
  // InvalidArgument without consuming an admission slot, a worker, or a
  // submitted-count tick.
  QueryPlan plan = Plan("Q1");
  ASSERT_FALSE(plan.edges.empty());
  plan.edges[0].segments.clear();  // the association path is now uncovered

  ServiceOptions options;
  options.start_paused = true;  // parked workers: execution can't race us
  QueryService service(options);
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok());

  auto rejected = (*session)->Submit(plan);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument())
      << rejected.status().ToString();
  EXPECT_NE(rejected.status().message().find("PLN"), std::string::npos)
      << "rejection carries the diagnostics: "
      << rejected.status().message();
  EXPECT_EQ(service.metrics().invalid_plans.load(), 1u);
  EXPECT_EQ(service.metrics().submitted.load(), 0u);
  EXPECT_EQ(service.metrics().completed.load(), 0u);
  EXPECT_EQ(service.metrics().queue_depth.load(), 0u);

  // The unbound plan is caught too.
  QueryPlan unbound;
  auto also_rejected = (*session)->Submit(unbound);
  ASSERT_FALSE(also_rejected.ok());
  EXPECT_TRUE(also_rejected.status().IsInvalidArgument());
  EXPECT_EQ(service.metrics().invalid_plans.load(), 2u);

  // A healthy plan still goes through on the same session afterwards.
  service.Resume();
  QueryPlan good = Plan("Q1");
  auto admitted = (*session)->Submit(good);
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_TRUE(admitted->get().ok());
  EXPECT_EQ(service.metrics().submitted.load(), 1u);
}

TEST_F(QueryServiceTest, VerificationCanBeDisabled) {
  ServiceOptions options;
  options.verify_plans = false;
  QueryService service(options);
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok());
  QueryPlan plan = Plan("Q1");
  auto f = (*session)->Submit(plan);
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->get().ok());
  EXPECT_EQ(service.metrics().invalid_plans.load(), 0u);
}

TEST_F(QueryServiceTest, OneShotExecuteAndUpdateRejection) {
  QueryPlan read = Plan("Q1");
  QueryPlan update = Plan("U1");
  ASSERT_TRUE(update.query->is_update());

  QueryService service;
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  auto ok = service.Execute("tpcw", read);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_GT(ok->unique_count, 0u);

  auto rejected = service.Execute("tpcw", update);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument())
      << rejected.status().ToString();
}

TEST_F(QueryServiceTest, ConcurrentSessionsAgreeOnReadResults) {
  QueryPlan plan = Plan("Q3");
  mctdb::query::Executor exec(store_);
  auto reference = exec.Execute(plan);
  ASSERT_TRUE(reference.ok());

  ServiceOptions options;
  options.num_threads = 4;
  QueryService service(options);
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  constexpr size_t kSessions = 6;
  constexpr size_t kRequests = 5;
  std::vector<std::shared_ptr<QueryService::Session>> sessions;
  std::vector<QueryFuture> futures;
  for (size_t s = 0; s < kSessions; ++s) {
    auto session = service.OpenSession("tpcw");
    ASSERT_TRUE(session.ok());
    sessions.push_back(*session);
  }
  for (size_t i = 0; i < kRequests; ++i) {
    for (auto& session : sessions) {
      auto f = session->Submit(plan);
      ASSERT_TRUE(f.ok()) << f.status().ToString();
      futures.push_back(std::move(*f));
    }
  }
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->logicals, reference->logicals);
  }
  service.Drain();
  EXPECT_EQ(service.metrics().completed.load(), kSessions * kRequests);
  EXPECT_EQ(service.metrics().latency.count(), kSessions * kRequests);
}

TEST_F(QueryServiceTest, ConcurrentSessionsChargePagesToTheirOwnQuery) {
  // The tentpole bug: the executor used to diff pool-GLOBAL counters, so
  // two sessions on the same store billed each other's I/O. With
  // executor-owned stats, a query's fetch count is a property of its plan
  // and data alone — concurrency must not change it.
  QueryPlan plan = Plan("Q3");

  // Solo baseline on a private service: the query's exact fetch count.
  uint64_t solo_fetches = 0;
  {
    QueryService solo;
    ASSERT_TRUE(solo.AddStore("tpcw", store_).ok());
    auto r = solo.Execute("tpcw", plan);
    ASSERT_TRUE(r.ok());
    solo_fetches = r->page_hits + r->page_misses;
    ASSERT_GT(solo_fetches, 0u);
  }

  ServiceOptions options;
  options.num_threads = 4;
  QueryService service(options);
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  constexpr size_t kSessions = 6;
  constexpr size_t kRequests = 4;
  std::vector<std::shared_ptr<QueryService::Session>> sessions;
  std::vector<QueryFuture> futures;
  for (size_t s = 0; s < kSessions; ++s) {
    auto session = service.OpenSession("tpcw");
    ASSERT_TRUE(session.ok());
    sessions.push_back(*session);
  }
  for (size_t i = 0; i < kRequests; ++i) {
    for (auto& session : sessions) {
      auto f = session->Submit(plan);
      ASSERT_TRUE(f.ok());
      futures.push_back(std::move(*f));
    }
  }
  uint64_t sum_hits = 0;
  uint64_t sum_misses = 0;
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Each racing query reports exactly its own fetches — not a diff of
    // whatever the other 23 requests did to the shared pool meanwhile.
    EXPECT_EQ(r->page_hits + r->page_misses, solo_fetches);
    sum_hits += r->page_hits;
    sum_misses += r->page_misses;
  }
  service.Drain();
  // Conservation: every pool fetch is charged to exactly one query, so
  // the per-query counts sum to the shared pool's global counters.
  auto* pool = sessions[0]->pool();
  EXPECT_EQ(sum_hits, pool->hits());
  EXPECT_EQ(sum_misses, pool->misses());
  EXPECT_EQ(service.metrics().page_hits.load(), sum_hits);
  EXPECT_EQ(service.metrics().page_misses.load(), sum_misses);
}

TEST_F(QueryServiceTest, SlowQueryLogRecordsStageBreakdown) {
  ServiceOptions options;
  options.slow_query_seconds = 1e-12;  // everything is "slow"
  options.slow_query_log_capacity = 2;
  QueryService service(options);
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  QueryPlan plan = Plan("Q1");
  auto r = service.Execute("tpcw", plan);
  ASSERT_TRUE(r.ok());

  auto slow = service.SlowQueries();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].store, "tpcw");
  EXPECT_EQ(slow[0].query, "Q1");
  EXPECT_GT(slow[0].seconds, 0.0);
  EXPECT_EQ(slow[0].page_hits, r->page_hits);
  EXPECT_EQ(slow[0].page_misses, r->page_misses);
  EXPECT_EQ(slow[0].join_pairs, r->join_pairs);
  EXPECT_GT(slow[0].stages[size_t(mctdb::obs::StageKind::kTagScan)].calls,
            0u);
  EXPECT_EQ(service.metrics().slow_queries.load(), 1u);

  // The ring is bounded: a third entry evicts the oldest.
  QueryPlan q3 = Plan("Q3");
  ASSERT_TRUE(service.Execute("tpcw", q3).ok());
  ASSERT_TRUE(service.Execute("tpcw", plan).ok());
  slow = service.SlowQueries();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].query, "Q3");
  EXPECT_EQ(slow[1].query, "Q1");
  EXPECT_EQ(service.metrics().slow_queries.load(), 3u);
}

TEST_F(QueryServiceTest, SlowQueryLogDisabledByDefault) {
  QueryService service;
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  QueryPlan plan = Plan("Q1");
  ASSERT_TRUE(service.Execute("tpcw", plan).ok());
  EXPECT_TRUE(service.SlowQueries().empty());
  EXPECT_EQ(service.metrics().slow_queries.load(), 0u);
  // Attribution counters still accumulate even with the log off.
  EXPECT_GT(service.metrics().page_hits.load() +
                service.metrics().page_misses.load(),
            0u);
}

TEST_F(QueryServiceTest, MetricsTextExportsPrometheusSeries) {
  QueryPlan plan = Plan("Q1");
  QueryService service;
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  ASSERT_TRUE(service.Execute("tpcw", plan).ok());
  // Execute() resolves before the worker leaves RunNext; the queue-depth
  // decrement races with us unless we drain first.
  service.Drain();
  std::string text = service.MetricsText();
  for (const char* series :
       {"mctsvc_requests_submitted_total 1",
        "mctsvc_requests_completed_total 1", "mctsvc_queue_depth 0",
        "# TYPE mctsvc_request_latency_seconds histogram",
        "mctsvc_request_latency_seconds_bucket{le=\"+Inf\"} 1",
        "mctsvc_request_latency_seconds_count 1",
        "mctsvc_pool_hits_total{store=\"tpcw\"}",
        "mctsvc_pool_misses_total{store=\"tpcw\"}",
        "mctsvc_pool_resident_pages{store=\"tpcw\"}"}) {
    EXPECT_NE(text.find(series), std::string::npos)
        << series << " missing from:\n" << text;
  }
}

TEST_F(QueryServiceTest, MetricsJsonExportsServiceAndPoolStats) {
  QueryPlan plan = Plan("Q1");
  QueryService service;
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  ASSERT_TRUE(service.Execute("tpcw", plan).ok());
  std::string json = service.MetricsJson();
  for (const char* key :
       {"\"submitted\"", "\"completed\"", "\"rejected\"",
        "\"deadline_exceeded\"", "\"latency\"", "\"stores\"", "\"tpcw\"",
        "\"shards\"", "\"hits\"", "\"misses\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST_F(QueryServiceTest, LowPriorityIsShedBeforeNormal) {
  QueryPlan plan = Plan("Q1");
  ServiceOptions options;
  options.num_threads = 1;
  options.max_queued = 10;          // watermarks: kLow at 7.5, kNormal at 9
  options.start_paused = true;      // park workers: staging is deterministic
  QueryService service(options);
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok());

  std::vector<QueryFuture> admitted;
  for (int i = 0; i < 8; ++i) {
    auto f = (*session)->Submit(plan, 0.0, Priority::kHigh);
    ASSERT_TRUE(f.ok()) << i;
    admitted.push_back(std::move(*f));
  }
  // 9 in flight would cross the kLow watermark (7.5) but not kNormal (9).
  auto low = (*session)->Submit(plan, 0.0, Priority::kLow);
  ASSERT_FALSE(low.ok());
  EXPECT_TRUE(low.status().IsUnavailable()) << low.status().ToString();
  EXPECT_NE(low.status().message().find("retry after"), std::string::npos)
      << low.status().ToString();
  auto normal = (*session)->Submit(plan, 0.0, Priority::kNormal);
  ASSERT_TRUE(normal.ok()) << normal.status().ToString();
  admitted.push_back(std::move(*normal));
  // 10 in flight crosses the kNormal watermark; kHigh still fits under
  // the hard limit.
  auto normal2 = (*session)->Submit(plan, 0.0, Priority::kNormal);
  ASSERT_FALSE(normal2.ok());
  EXPECT_TRUE(normal2.status().IsUnavailable());
  auto high = (*session)->Submit(plan, 0.0, Priority::kHigh);
  ASSERT_TRUE(high.ok()) << high.status().ToString();
  admitted.push_back(std::move(*high));

  EXPECT_EQ(service.metrics().sheds.load(), 2u);
  EXPECT_EQ(service.metrics().rejected.load(), 0u);

  service.Resume();
  for (auto& f : admitted) EXPECT_TRUE(f.get().ok());
  service.Drain();
  // A shed is advisory backpressure, not a failure of the service path.
  EXPECT_EQ(service.metrics().failed.load(), 0u);
}

TEST_F(QueryServiceTest, BreakerOpensAfterConsecutiveHardFailures) {
  QueryPlan plan = Plan("Q1");
  ServiceOptions options;
  options.num_threads = 1;
  options.breaker_failure_threshold = 3;
  options.breaker_open_seconds = 60.0;  // stays open for the whole test
  QueryService service(options);
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok());

  {
    mctdb::failpoint::FailpointGuard guard("service.exec", "err");
    for (int i = 0; i < 3; ++i) {
      auto f = (*session)->Submit(plan);
      ASSERT_TRUE(f.ok()) << i;
      auto result = f->get();
      ASSERT_FALSE(result.ok()) << i;
      EXPECT_TRUE(result.status().IsInternal()) << result.status().ToString();
    }
  }

  CircuitBreaker* breaker = service.breaker("tpcw");
  ASSERT_NE(breaker, nullptr);
  EXPECT_EQ(breaker->state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(service.Degraded());

  // An open breaker refuses before the admission queue is touched.
  auto refused = (*session)->Submit(plan);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsUnavailable()) << refused.status().ToString();
  EXPECT_NE(refused.status().message().find("circuit breaker"),
            std::string::npos)
      << refused.status().ToString();
  EXPECT_EQ(service.metrics().breaker_rejections.load(), 1u);
  EXPECT_EQ(service.metrics().rejected.load(), 0u);

  std::string health = service.HealthJson();
  EXPECT_NE(health.find("\"status\":\"degraded\""), std::string::npos)
      << health;
  EXPECT_NE(health.find("\"state\":\"open\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"retry_after_seconds\""), std::string::npos)
      << health;

  std::string text = service.MetricsText();
  EXPECT_NE(text.find("mctsvc_breaker_state{store=\"tpcw\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mctsvc_breaker_rejections_total 1"),
            std::string::npos)
      << text;
}

TEST_F(QueryServiceTest, BreakerHalfOpenProbeRecoversTheStore) {
  QueryPlan plan = Plan("Q1");
  ServiceOptions options;
  options.num_threads = 1;
  options.breaker_failure_threshold = 2;
  options.breaker_open_seconds = 0.05;
  QueryService service(options);
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok());

  {
    mctdb::failpoint::FailpointGuard guard("service.exec", "err");
    for (int i = 0; i < 2; ++i) {
      auto f = (*session)->Submit(plan);
      ASSERT_TRUE(f.ok());
      EXPECT_FALSE(f->get().ok());
    }
  }
  CircuitBreaker* breaker = service.breaker("tpcw");
  ASSERT_NE(breaker, nullptr);
  ASSERT_EQ(breaker->state(), CircuitBreaker::State::kOpen);

  // After the open window the next submission rides through as the
  // half-open probe; the fault is gone, so its success closes the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  auto probe = (*session)->Submit(plan);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_TRUE(probe->get().ok());
  EXPECT_EQ(breaker->state(), CircuitBreaker::State::kClosed);
  EXPECT_FALSE(service.Degraded());
  EXPECT_NE(service.HealthJson().find("\"status\":\"ok\""),
            std::string::npos);
}

TEST_F(QueryServiceTest, PastDeadlineAtDequeueIsNeitherShedNorBreakerFood) {
  // A request whose deadline lapses while queued says nothing about load
  // (not a shed) or store health (must not trip the breaker) — it only
  // counts as DeadlineExceeded.
  QueryPlan plan = Plan("Q1");
  ServiceOptions options;
  options.num_threads = 1;
  options.start_paused = true;
  options.breaker_failure_threshold = 2;  // 3 lapses would trip it if counted
  QueryService service(options);
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok());

  std::vector<QueryFuture> doomed;
  for (int i = 0; i < 3; ++i) {
    auto f = (*session)->Submit(plan, 1e-3);
    ASSERT_TRUE(f.ok()) << i;
    doomed.push_back(std::move(*f));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.Resume();
  for (auto& f : doomed) {
    auto result = f.get();
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsDeadlineExceeded())
        << result.status().ToString();
  }
  service.Drain();

  EXPECT_EQ(service.metrics().deadline_exceeded.load(), 3u);
  EXPECT_EQ(service.metrics().sheds.load(), 0u);
  CircuitBreaker* breaker = service.breaker("tpcw");
  ASSERT_NE(breaker, nullptr);
  EXPECT_EQ(breaker->state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker->consecutive_failures(), 0);
  // The store still serves fine afterwards.
  auto after = (*session)->Submit(plan);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->get().ok());
}

TEST_F(QueryServiceTest, MetricsTextExportsHardeningSeries) {
  QueryPlan plan = Plan("Q1");
  QueryService service;  // default options: breaker enabled (threshold 5)
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  ASSERT_TRUE(service.Execute("tpcw", plan).ok());
  service.Drain();
  std::string text = service.MetricsText();
  for (const char* series :
       {"mctsvc_sheds_total 0", "mctsvc_breaker_rejections_total 0",
        "mctsvc_breaker_state{store=\"tpcw\"} 0",
        "mctsvc_pool_checksum_failures_total{store=\"tpcw\"} 0",
        "mctsvc_pool_retries_total{store=\"tpcw\"} 0",
        "mctsvc_pool_quarantined_total{store=\"tpcw\"} 0"}) {
    EXPECT_NE(text.find(series), std::string::npos)
        << series << " missing from:\n" << text;
  }
  std::string json = service.MetricsJson();
  for (const char* key : {"\"sheds\"", "\"breaker_rejections\"",
                          "\"breaker\"", "\"checksum_failures\"",
                          "\"retries\"", "\"quarantined\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST_F(QueryServiceTest, StaticallyEmptyQueryIsPrunedToZeroIo) {
  // A statically-empty query (predicate on an undeclared attribute) is
  // valid — it executes through the service as a zero-I/O empty result
  // and ticks mctsvc_queries_pruned_total, never InvalidArgument.
  mctdb::query::QueryBuilder b("Ebogus", w_->diagram);
  int r = b.Root("country");
  b.Where(r, "population", "big");
  mctdb::query::AssociationQuery q = b.Build();
  auto plan = PlanQuery(q, *schema_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(plan->statically_empty) << "QRY007 must mark the plan";

  QueryService service;
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok());
  auto future = (*session)->Submit(*plan);
  ASSERT_TRUE(future.ok()) << future.status().ToString();
  auto result = future->get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->logicals.empty());
  // The acceptance bar: the pruned query fetched zero pages.
  EXPECT_EQ(result->page_hits + result->page_misses, 0u);
  service.Drain();
  EXPECT_EQ(service.metrics().queries_pruned.load(), 1u);
  EXPECT_EQ(service.metrics().completed.load(), 1u);
  EXPECT_EQ(service.metrics().invalid_plans.load(), 0u);
  EXPECT_NE(service.MetricsText().find("mctsvc_queries_pruned_total 1"),
            std::string::npos);
}

TEST_F(QueryServiceTest, SimplifiableQueryTicksPlansSimplified) {
  // Two branches carrying the identical predicate: QRY008 rides along on
  // the plan's analysis codes and the worker counts the simplification.
  mctdb::query::QueryBuilder b("Edup", w_->diagram);
  int r = b.Root("country");
  int a1 = b.Via(r, {"in", "address"});
  int a2 = b.Via(r, {"in", "address"});
  b.Where(a1, "city", "x").Where(a2, "city", "x");
  b.Output(a2);
  mctdb::query::AssociationQuery q = b.Build();
  auto plan = PlanQuery(q, *schema_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_FALSE(plan->statically_empty);
  ASSERT_NE(std::find(plan->analysis_codes.begin(),
                      plan->analysis_codes.end(), "QRY008"),
            plan->analysis_codes.end());

  QueryService service;
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  auto r1 = service.Execute("tpcw", *plan);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  service.Drain();
  EXPECT_EQ(service.metrics().plans_simplified.load(), 1u);
  EXPECT_NE(service.MetricsText().find("mctsvc_plans_simplified_total 1"),
            std::string::npos);
}

TEST_F(QueryServiceTest, FatalAnalysisVerdictRejectedAtAdmission) {
  // A plan that passes the structural verifier but whose QUERY the static
  // analyzer rejects (QRY002: association path endpoints disagree with
  // the pattern) must bounce at admission with the QRY diagnostics.
  QueryPlan plan = Plan("Q1");
  mctdb::query::AssociationQuery bad = *plan.query;
  ASSERT_GE(bad.nodes.size(), 2u);
  // Retarget a non-root node's type so path.back() != er_node; the plan's
  // segments (built from the path) still verify.
  mctdb::er::NodeId other = *w_->diagram.FindNode(
      bad.nodes[1].er_node == *w_->diagram.FindNode("country") ? "item"
                                                               : "country");
  ASSERT_NE(bad.nodes[1].er_node, other);
  bad.nodes[1].er_node = other;
  plan.query = &bad;

  QueryService service;
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok());
  auto rejected = (*session)->Submit(plan);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument())
      << rejected.status().ToString();
  EXPECT_NE(rejected.status().message().find("QRY002"), std::string::npos)
      << rejected.status().ToString();
  EXPECT_EQ(service.metrics().invalid_plans.load(), 1u);
  EXPECT_EQ(service.metrics().submitted.load(), 0u);
}

TEST_F(QueryServiceTest, SubmitQueryCachesPlansAndCountsOutcomes) {
  QueryService service;
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok());
  const mctdb::query::AssociationQuery* q = w_->Find("Q1");
  ASSERT_NE(q, nullptr);

  auto f1 = (*session)->SubmitQuery(*q);
  ASSERT_TRUE(f1.ok()) << f1.status().ToString();
  auto r1 = f1->get();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(service.metrics().plan_cache_misses.load(), 1u);
  EXPECT_EQ(service.metrics().plan_cache_hits.load(), 0u);

  // A read-only store never moves its visible LSN, so the second
  // identical submission is a pure cache hit — and byte-identical.
  auto f2 = (*session)->SubmitQuery(*q);
  ASSERT_TRUE(f2.ok()) << f2.status().ToString();
  auto r2 = f2->get();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->logicals, r1->logicals);
  EXPECT_EQ(r2->raw_count, r1->raw_count);
  EXPECT_EQ(service.metrics().plan_cache_hits.load(), 1u);
  EXPECT_EQ(service.metrics().plan_cache_misses.load(), 1u);

  // A different query is its own key.
  const mctdb::query::AssociationQuery* q3 = w_->Find("Q3");
  ASSERT_NE(q3, nullptr);
  auto f3 = (*session)->SubmitQuery(*q3);
  ASSERT_TRUE(f3.ok());
  EXPECT_TRUE(f3->get().ok());
  EXPECT_EQ(service.metrics().plan_cache_misses.load(), 2u);

  PlanCache* cache = service.plan_cache("tpcw");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->size(), 2u);
  EXPECT_EQ(service.plan_cache("nope"), nullptr);

  service.Drain();
  std::string text = service.MetricsText();
  for (const char* series :
       {"mctsvc_plan_cache_hits_total 1", "mctsvc_plan_cache_misses_total 2",
        "mctsvc_plan_cache_invalidations_total 0",
        "mctsvc_index_seeks_total"}) {
    EXPECT_NE(text.find(series), std::string::npos)
        << series << " missing from:\n" << text;
  }
}

TEST_F(QueryServiceTest, PlanCacheStalenessGuardSeesCommittedInsert) {
  // The bug class this pins: a cached plan serving a result that predates
  // a committed update. Sequence: query (miss, cached) -> identical query
  // (hit) -> U1 insert commits -> identical query again. The third call
  // MUST invalidate, re-plan at the new visible LSN, and return the
  // freshly inserted row.
  auto durable = mctdb::wal::DurableStore::Ephemeral(
      mctdb::instance::Materialize(*logical_, *schema_));
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();

  // A deterministic U1 insert from the workload generator.
  std::vector<mctdb::mct::MctSchema> schemas{*schema_};
  mctdb::workload::UpdateGenOptions gen;
  gen.num_ops = 8;
  auto ops = mctdb::workload::GenerateUpdateOps(schemas, *logical_, gen);
  const mctdb::storage::UpdateOp* insert = nullptr;
  for (const auto& op : ops) {
    if (op.kind == mctdb::storage::UpdateOp::Kind::kInsertSubtree) {
      insert = &op;
      break;
    }
  }
  ASSERT_NE(insert, nullptr) << "the op stream always contains inserts";
  // U1 inserts a relationship instance with one new child entity under
  // it; "all instances of that entity type" is a query whose answer the
  // insert visibly changes.
  ASSERT_EQ(insert->subtree.children.size(), 1u);
  const mctdb::storage::SubtreeSpec& child = insert->subtree.children[0];
  mctdb::query::QueryBuilder b("Qfresh", w_->diagram);
  b.Root(w_->diagram.node(child.type).name);
  mctdb::query::AssociationQuery q = b.Build();

  QueryService service;
  ASSERT_TRUE(service.AddDurableStore("tpcw", durable->get()).ok());
  auto session = service.OpenSession("tpcw");
  ASSERT_TRUE(session.ok());

  auto f1 = (*session)->SubmitQuery(q);
  ASSERT_TRUE(f1.ok()) << f1.status().ToString();
  auto before = f1->get();
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  const uint32_t new_logical = child.logical;
  EXPECT_EQ(std::count(before->logicals.begin(), before->logicals.end(),
                       new_logical),
            0);

  auto f2 = (*session)->SubmitQuery(q);
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE(f2->get().ok());
  EXPECT_EQ(service.metrics().plan_cache_hits.load(), 1u);

  // Commit the insert and WAIT for it, so the next lookup runs against
  // the advanced visible LSN.
  auto uf = (*session)->SubmitUpdate(*insert);
  ASSERT_TRUE(uf.ok()) << uf.status().ToString();
  ASSERT_TRUE(uf->get().ok());

  auto f3 = (*session)->SubmitQuery(q);
  ASSERT_TRUE(f3.ok());
  auto after = f3->get();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(service.metrics().plan_cache_invalidations.load(), 1u);
  EXPECT_EQ(std::count(after->logicals.begin(), after->logicals.end(),
                       new_logical),
            1)
      << "the re-planned query must see the committed insert";

  // The re-installed entry hits again at the new LSN...
  auto f4 = (*session)->SubmitQuery(q);
  ASSERT_TRUE(f4.ok());
  EXPECT_TRUE(f4->get().ok());
  EXPECT_EQ(service.metrics().plan_cache_hits.load(), 2u);

  // ...until a checkpoint bumps the generation: intervals may have been
  // relabeled, so even an unchanged LSN must not hit.
  auto ck = service.Checkpoint("tpcw");
  ASSERT_TRUE(ck.ok()) << ck.status().ToString();
  auto f5 = (*session)->SubmitQuery(q);
  ASSERT_TRUE(f5.ok());
  auto post_ck = f5->get();
  ASSERT_TRUE(post_ck.ok()) << post_ck.status().ToString();
  EXPECT_EQ(service.metrics().plan_cache_invalidations.load(), 2u);
  EXPECT_EQ(post_ck->logicals, after->logicals)
      << "checkpoint compaction must not change the answer";

  // Checkpointing a read-only registration is refused cleanly.
  QueryService read_only;
  ASSERT_TRUE(read_only.AddStore("ro", store_).ok());
  EXPECT_TRUE(read_only.Checkpoint("ro").status().IsInvalidArgument());
  EXPECT_TRUE(read_only.Checkpoint("nope").status().IsNotFound());
}

TEST_F(QueryServiceTest, PlanCacheUnderConcurrentReadersAndWriter) {
  // TSAN surface: many sessions hammering SubmitQuery on one store while
  // its session strand commits updates. Every request must complete, every
  // SubmitQuery must be accounted as exactly one of hit/miss/invalidated,
  // and the final answer must reflect every committed op.
  auto durable = mctdb::wal::DurableStore::Ephemeral(
      mctdb::instance::Materialize(*logical_, *schema_));
  ASSERT_TRUE(durable.ok());
  std::vector<mctdb::mct::MctSchema> schemas{*schema_};
  mctdb::workload::UpdateGenOptions gen;
  gen.num_ops = 6;
  auto ops = mctdb::workload::GenerateUpdateOps(schemas, *logical_, gen);
  ASSERT_FALSE(ops.empty());

  const mctdb::query::AssociationQuery* q = w_->Find("Q1");
  ASSERT_NE(q, nullptr);

  ServiceOptions options;
  options.num_threads = 4;
  QueryService service(options);
  ASSERT_TRUE(service.AddDurableStore("tpcw", durable->get()).ok());
  auto writer = service.OpenSession("tpcw");
  ASSERT_TRUE(writer.ok());

  constexpr size_t kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      auto session = service.OpenSession("tpcw");
      ASSERT_TRUE(session.ok());
      do {
        // 5 in-flight requests max sits far below the shedding watermark,
        // so every submission must be admitted (conservation below relies
        // on every SubmitQuery ticking exactly one cache outcome).
        auto f = (*session)->SubmitQuery(*q);
        ASSERT_TRUE(f.ok()) << f.status().ToString();
        auto r = f->get();
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        reads.fetch_add(1);
      } while (!done.load(std::memory_order_acquire));
    });
  }
  // All ops but the last race the readers; the last is held back for a
  // deterministic invalidation below (whether any concurrent reader
  // witnesses a stale entry is a race — the guard only promises no stale
  // plan ever SERVES, so the witness must be staged, not hoped for).
  ASSERT_GE(ops.size(), 2u);
  for (size_t i = 0; i + 1 < ops.size(); ++i) {
    auto uf = (*writer)->SubmitUpdate(ops[i]);
    ASSERT_TRUE(uf.ok()) << uf.status().ToString();
    ASSERT_TRUE(uf->get().ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  service.Drain();
  EXPECT_GT(reads.load(), 0u);

  // Prime the cache at the current LSN (the entry is installed before
  // SubmitQuery returns), commit the held-back op, and the next lookup
  // MUST drop the now-stale entry.
  {
    auto f = (*writer)->SubmitQuery(*q);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    ASSERT_TRUE(f->get().ok());
    reads.fetch_add(1);
  }
  auto uf = (*writer)->SubmitUpdate(ops.back());
  ASSERT_TRUE(uf.ok()) << uf.status().ToString();
  ASSERT_TRUE(uf->get().ok());

  // Post-quiescence: the service answer equals a direct executor run at
  // the final snapshot — the cache cannot pin a stale plan.
  auto plan = PlanQuery(*q, *schema_);
  ASSERT_TRUE(plan.ok());
  mctdb::query::Executor exec((*durable)->store());
  exec.set_snapshot((*durable)->snapshot());
  auto direct = exec.Execute(*plan);
  ASSERT_TRUE(direct.ok());
  auto f = (*writer)->SubmitQuery(*q);
  ASSERT_TRUE(f.ok());
  auto final_r = f->get();
  ASSERT_TRUE(final_r.ok());
  reads.fetch_add(1);
  EXPECT_EQ(final_r->logicals, direct->logicals);

  const auto& m = service.metrics();
  // Conservation: every SubmitQuery admission resolved its plan through
  // exactly one cache outcome. (Invalidated lookups re-plan, so they are
  // counted once as invalidations, never double-counted as misses.)
  EXPECT_EQ(m.plan_cache_hits.load() + m.plan_cache_misses.load() +
                m.plan_cache_invalidations.load(),
            reads.load());
  EXPECT_GT(m.plan_cache_invalidations.load(), 0u)
      << "the staged commit between two identical queries must invalidate";
}

TEST(ParallelRunnerTest, MatchesSerialRunMeasurementForMeasurement) {
  // Satellite requirement: RunWorkload with num_threads=4 produces the
  // same measurements as the serial loop — identical in everything except
  // wall-clock timing.
  mctdb::workload::Workload w = mctdb::workload::TpcwWorkload(0.03);
  mctdb::workload::RunnerOptions serial;
  serial.repetitions = 2;
  auto a = mctdb::workload::RunWorkload(w, serial);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  mctdb::workload::RunnerOptions parallel = serial;
  parallel.num_threads = 4;
  auto b = mctdb::workload::RunWorkload(w, parallel);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  EXPECT_TRUE(a->problems.empty());
  EXPECT_TRUE(b->problems.empty())
      << b->problems.front() << " (+" << b->problems.size() - 1 << " more)";
  ASSERT_EQ(a->measurements.size(), b->measurements.size());
  for (size_t i = 0; i < a->measurements.size(); ++i) {
    const auto& ma = a->measurements[i];
    const auto& mb = b->measurements[i];
    SCOPED_TRACE(ma.schema + "/" + ma.query);
    EXPECT_EQ(ma.schema, mb.schema);
    EXPECT_EQ(ma.query, mb.query);
    EXPECT_EQ(ma.unique_results, mb.unique_results);
    EXPECT_EQ(ma.raw_results, mb.raw_results);
    EXPECT_EQ(ma.elements_updated, mb.elements_updated);
    // Per-query attribution makes I/O counts a property of the plan, not
    // of pool-global counter timing: the parallel run must report the
    // same fetch totals as the serial loop.
    EXPECT_EQ(ma.page_hits + ma.page_misses, mb.page_hits + mb.page_misses);
    EXPECT_EQ(ma.join_pairs, mb.join_pairs);
    EXPECT_EQ(ma.plan.structural_joins, mb.plan.structural_joins);
    EXPECT_EQ(ma.plan.value_joins, mb.plan.value_joins);
    EXPECT_EQ(ma.plan.dup_ops(), mb.plan.dup_ops());
  }
  ASSERT_EQ(a->storage.size(), b->storage.size());
  for (size_t i = 0; i < a->storage.size(); ++i) {
    EXPECT_EQ(a->storage[i].first, b->storage[i].first);
  }
}

}  // namespace
}  // namespace mctsvc
