// Status: RocksDB-style error propagation for all fallible mctdb APIs.
//
// Library code never throws across module boundaries; every operation that
// can fail returns a Status (or a Result<T>, see result.h) that callers must
// inspect.
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace mctdb {

namespace internal {
/// Fires the installed escalation observer (SetStatusEscalationObserver)
/// for every kDataLoss / kUnavailable construction. One atomic load and a
/// no-op when no observer is installed.
void NotifyStatusEscalation(int code);
}  // namespace internal

/// Observer invoked whenever a Status with code kDataLoss or kUnavailable
/// is minted (constructed — copies and moves do not re-notify). The flight
/// recorder installs one to capture "something just escalated" events and
/// trigger its one-shot dump. nullptr uninstalls.
using StatusEscalationObserver = void (*)(int code);
void SetStatusEscalationObserver(StatusEscalationObserver observer);

/// Outcome of a fallible operation: an error code plus a human-readable
/// message. The default-constructed Status is OK and carries no allocation.
/// [[nodiscard]]: silently dropping an error is always a bug (enforced by
/// -Werror=unused-result).
class [[nodiscard]] Status {
 public:
  /// Error taxonomy. Mirrors the categories used throughout the storage and
  /// design layers; see the factory functions below for intended use.
  enum class Code : unsigned char {
    kOk = 0,
    kInvalidArgument,  ///< caller passed something malformed
    kNotFound,         ///< named entity/node/key does not exist
    kAlreadyExists,    ///< uniqueness violated (duplicate name, duplicate id)
    kCorruption,       ///< on-"disk" or in-memory structure is inconsistent
    kNotSupported,     ///< requested combination of properties is infeasible
    kOutOfRange,       ///< index/offset past the end
    kConstraintViolation,  ///< ICIC or cardinality constraint violated
    kIoError,          ///< pager / file-layer failure
    kInternal,         ///< invariant broken inside mctdb itself
    kResourceExhausted,  ///< admission queue / capacity limit hit
    kDeadlineExceeded,   ///< request deadline passed before completion
    kDataLoss,           ///< checksum mismatch / truncation: bytes are gone
    kUnavailable,        ///< transient overload or open breaker; retry later
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status ConstraintViolation(std::string_view msg) {
    return Status(Code::kConstraintViolation, msg);
  }
  static Status IoError(std::string_view msg) {
    return Status(Code::kIoError, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(Code::kResourceExhausted, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(Code::kDeadlineExceeded, msg);
  }
  static Status DataLoss(std::string_view msg) {
    return Status(Code::kDataLoss, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(Code::kUnavailable, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsConstraintViolation() const {
    return code_ == Code::kConstraintViolation;
  }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == Code::kDeadlineExceeded;
  }
  bool IsDataLoss() const { return code_ == Code::kDataLoss; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>", for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {
    if (code_ == Code::kDataLoss || code_ == Code::kUnavailable) {
      internal::NotifyStatusEscalation(static_cast<int>(code_));
    }
  }

  Code code_ = Code::kOk;
  std::string message_;
};

}  // namespace mctdb

/// Propagate a non-OK Status to the caller. Usable in any function that
/// itself returns Status.
#define MCTDB_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::mctdb::Status _s = (expr);                 \
    if (!_s.ok()) return _s;                     \
  } while (0)
