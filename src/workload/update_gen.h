// Deterministic U1-U3 op streams for workload measurement (DESIGN.md §13).
//
// Ops address (ER type, logical instance id), so ONE stream applies to
// every schema of a logical instance; applying the same prefix everywhere
// keeps the schemas logically equivalent, which is what lets the runner
// re-check cross-schema result equivalence after updates ran. Candidate
// ops are filtered through storage::VerifyUpdateOp against EVERY schema —
// an op only enters the stream if all schemas can apply it — and deletes
// only target instances the stream itself inserted (deleting pre-existing
// instances would remove schema-dependent subtrees and break equivalence).
#pragma once

#include <vector>

#include "instance/logical.h"
#include "mct/mct_schema.h"
#include "storage/update_ops.h"

namespace mctdb::workload {

struct UpdateGenOptions {
  /// Total ops to aim for. The mix is roughly 1/4 inserts, 1/4 deletes
  /// (capped by what the inserts created), renames for the rest; shortfall
  /// in one kind backfills as renames.
  size_t num_ops = 8;
  /// Logical ids for inserted instances start here — far above anything
  /// the instance generator hands out (max_per_node caps at 500k).
  uint32_t logical_id_base = 1u << 20;
};

/// Generates the op stream. Pure function of (schemas, logical, options):
/// no RNG, so repeated runs and every schema see the identical stream.
std::vector<storage::UpdateOp> GenerateUpdateOps(
    const std::vector<mct::MctSchema>& schemas,
    const instance::LogicalInstance& logical,
    const UpdateGenOptions& options = {});

}  // namespace mctdb::workload
