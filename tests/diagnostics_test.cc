#include "analysis/diagnostics.h"

#include <gtest/gtest.h>

namespace mctdb::analysis {
namespace {

TEST(DiagnosticsTest, EmptyReportIsCleanEverywhere) {
  DiagnosticReport report;
  EXPECT_TRUE(report.empty());
  EXPECT_FALSE(report.has_errors());
  EXPECT_EQ(report.errors(), 0u);
  EXPECT_EQ(report.warnings(), 0u);
  EXPECT_EQ(report.notes(), 0u);
  EXPECT_EQ(report.suppressed(), 0u);
  EXPECT_NE(report.ToText().find("clean"), std::string::npos);
}

TEST(DiagnosticsTest, SeverityCountsAndAccessors) {
  DiagnosticReport report;
  report.Error("SCH001", "here", "broken");
  report.Warning("SCH002", "there", "iffy");
  report.Note("SCH003", "everywhere", "fyi");
  EXPECT_EQ(report.errors(), 1u);
  EXPECT_EQ(report.warnings(), 1u);
  EXPECT_EQ(report.notes(), 1u);
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.empty());
  ASSERT_EQ(report.diagnostics().size(), 3u);
  EXPECT_EQ(report.diagnostics()[0].severity, Severity::kError);
  EXPECT_EQ(report.diagnostics()[0].code, "SCH001");
  EXPECT_EQ(report.diagnostics()[0].location, "here");
}

TEST(DiagnosticsTest, HasCodeAndCountCode) {
  DiagnosticReport report;
  report.Error("PLN004", "edge 0", "bad interval");
  report.Error("PLN004", "edge 1", "bad interval");
  report.Warning("PLN008", "edge 1", "empty predicate");
  EXPECT_TRUE(report.HasCode("PLN004"));
  EXPECT_TRUE(report.HasCode("PLN008"));
  EXPECT_FALSE(report.HasCode("PLN999"));
  EXPECT_EQ(report.CountCode("PLN004"), 2u);
  EXPECT_EQ(report.CountCode("PLN008"), 1u);
  EXPECT_EQ(report.CountCode("PLN999"), 0u);
}

TEST(DiagnosticsTest, CapSuppressesRecordingButKeepsCounting) {
  DiagnosticReport report(2);
  for (int i = 0; i < 5; ++i) {
    report.Error("STO001", "elem", "degenerate");
  }
  EXPECT_EQ(report.diagnostics().size(), 2u);
  EXPECT_EQ(report.errors(), 5u) << "severity counters ignore the cap";
  EXPECT_EQ(report.suppressed(), 3u);
  EXPECT_FALSE(report.empty());
}

TEST(DiagnosticsTest, MergeFromPrefixesLocations) {
  DiagnosticReport inner;
  inner.Error("SCH004", "schema DR", "orphan");
  inner.Warning("SCH012", "ICIC 0", "single color");

  DiagnosticReport outer;
  outer.Error("PLN001", "plan", "unbound");
  outer.MergeFrom(inner, "blog.er");

  EXPECT_EQ(outer.errors(), 2u);
  EXPECT_EQ(outer.warnings(), 1u);
  ASSERT_EQ(outer.diagnostics().size(), 3u);
  EXPECT_EQ(outer.diagnostics()[1].location, "blog.er: schema DR");
  EXPECT_EQ(outer.diagnostics()[2].location, "blog.er: ICIC 0");
  // No prefix: locations pass through untouched.
  DiagnosticReport flat;
  flat.MergeFrom(inner);
  EXPECT_EQ(flat.diagnostics()[0].location, "schema DR");
}

TEST(DiagnosticsTest, ToTextFormatsOneLinePerDiagnostic) {
  DiagnosticReport report;
  report.Error("SCH013", "schema DR", "cyclic ICIC dependency",
               "realize one edge in a single color");
  std::string text = report.ToText();
  EXPECT_NE(text.find("error SCH013"), std::string::npos) << text;
  EXPECT_NE(text.find("[schema DR]"), std::string::npos) << text;
  EXPECT_NE(text.find("cyclic ICIC dependency"), std::string::npos) << text;
  EXPECT_NE(text.find("fix:"), std::string::npos) << text;
}

TEST(DiagnosticsTest, ToJsonEscapesAndCounts) {
  DiagnosticReport report;
  report.Error("STO011", "elem 7", "dangling idref b_idref='b\"GHOST\"'");
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"GHOST\\\""), std::string::npos)
      << "quotes must be escaped: " << json;
  EXPECT_NE(json.find("\"code\":\"STO011\""), std::string::npos) << json;
}

}  // namespace
}  // namespace mctdb::analysis
