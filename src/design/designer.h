// Designer: the library's front door. Translates an ER diagram into any of
// the paper's seven schema designs and reports which desirable properties
// (NN, EN, AR, DR — §3) each satisfies.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "design/recoverability.h"
#include "er/er_graph.h"
#include "mct/mct_schema.h"

namespace mctdb::design {

/// The seven designs of the paper's evaluation (§6).
enum class Strategy {
  kShallow,  ///< Fig 2: flat + id/idrefs. NN, not AR.
  kAf,       ///< Fig 3: anomaly-free single color, leftover idrefs. NN.
  kDeep,     ///< Fig 4: single color with redundancy. EN + AR + DR, not NN.
  kEn,       ///< Algorithm MC. NN + EN + AR.
  kMcmr,     ///< minimal color maximal recoverable. NN + AR, maximizes DR.
  kDr,       ///< Algorithm DUMC. NN + AR + DR.
  kUndr,     ///< DR + functional-context duplicates. AR + DR, not NN.
};

const char* ToString(Strategy s);
/// Parses "SHALLOW", "AF", "DEEP", "EN", "MCMR", "DR", "UNDR"
/// (case-insensitive).
Result<Strategy> ParseStrategy(std::string_view name);
/// All seven, in the order the paper's tables/figures list them:
/// DEEP, AF, SHALLOW, EN, MCMR, DR, UNDR.
std::vector<Strategy> AllStrategies();

/// Property summary of a produced schema, for reports and tests.
struct DesignReport {
  bool node_normal = false;
  bool edge_normal = false;
  bool association_recoverable = false;
  bool fully_direct_recoverable = false;
  double direct_fraction = 0.0;
  size_t num_colors = 0;
  size_t num_occurrences = 0;
  size_t num_ref_edges = 0;
  size_t num_icics = 0;

  std::string ToString() const;
};

class Designer {
 public:
  /// `graph` must outlive the Designer and every schema it produces.
  explicit Designer(const er::ErGraph& graph) : graph_(graph) {}

  /// Produce the schema for `strategy`, named after the strategy.
  mct::MctSchema Design(Strategy strategy) const;

  /// Evaluate NN/EN/AR/DR for `schema` (eligible paths are enumerated on
  /// demand and cached per Designer).
  DesignReport Report(const mct::MctSchema& schema) const;

  const std::vector<AssociationPath>& eligible_paths() const;

 private:
  const er::ErGraph& graph_;
  mutable std::vector<AssociationPath> paths_;
  mutable bool paths_ready_ = false;
};

}  // namespace mctdb::design
