// XML interchange for MCT databases.
//
// An MCT database is "one or more colored trees over the same data nodes"
// (§2.2); its natural exchange format is one XML document per color, with
// every element carrying the persistent `_nid` node id so the shared
// node identity across colors survives the round trip. Exporting the
// single-color schemas yields plain XML databases (Figs 2-4 instances).
#pragma once

#include <memory>

#include "common/result.h"
#include "storage/store.h"
#include "xml/xml_node.h"

namespace mctdb::instance {

struct ExportOptions {
  /// Attach _nid="<elem id>" to every element, preserving cross-color node
  /// identity (required for ImportColorXml round trips).
  bool node_ids = true;
  /// Root tag for the document that wraps the color's forest.
  std::string root_tag = "mctdb";
};

/// Serializes one colored tree of `store` as an XML document. The color's
/// top-level trees become children of a synthetic root element, in document
/// order; attributes are emitted in schema order.
Result<xml::XmlNodePtr> ExportColorXml(const storage::MctStore& store,
                                       mct::ColorId color,
                                       const ExportOptions& options = {});

/// Structural summary of an exported/parsed color document, used to verify
/// round trips without materializing a second store.
struct ColorDigest {
  size_t elements = 0;
  size_t attributes = 0;  ///< excluding the synthetic _nid
  size_t max_depth = 0;
  uint64_t shape_hash = 0;  ///< order-sensitive hash of tags + attrs
};

ColorDigest DigestXml(const xml::XmlNode& root);
ColorDigest DigestColor(const storage::MctStore& store, mct::ColorId color);

}  // namespace mctdb::instance
