# Empty compiler generated dependencies file for algorithm_mc_test.
# This may be replaced when dependencies are built.
