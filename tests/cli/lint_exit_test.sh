#!/bin/sh
# Exit-code contract of `mctc lint` (README "Static analysis"):
#   0  lint ran and found no error-severity diagnostics (warnings/notes OK)
#   1  lint ran and found error diagnostics
#   2  internal/input error: unreadable file, unknown query, bad MC-XPath
#
# Usage: lint_exit_test.sh <path-to-mctc> <examples-designs-dir>
set -u

MCTC="$1"
DESIGNS="$2"
fails=0

expect() {
  want="$1"
  label="$2"
  shift 2
  "$@" > /dev/null 2>&1
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $label: expected exit $want, got $got ($*)" >&2
    fails=$((fails + 1))
  else
    echo "ok: $label (exit $got)"
  fi
}

# 0: clean schema lint, and the full grid (schema + every workload query x
# every designer schema). blog.er carries known-empty workload queries —
# warning-severity findings must NOT flip the exit code.
expect 0 "clean lint"        "$MCTC" lint "$DESIGNS/warehouse.er"
expect 0 "clean grid"        "$MCTC" lint --grid "$DESIGNS/warehouse.er"
expect 0 "warnings still 0"  "$MCTC" lint --grid "$DESIGNS/blog.er"
expect 0 "json output"       "$MCTC" lint --json "$DESIGNS/warehouse.er"

# 1: error diagnostics found (unknown tag -> QRY001 on every schema).
expect 1 "query with errors" "$MCTC" lint --query /bogus "$DESIGNS/warehouse.er"

# 2: the lint itself could not run.
expect 2 "missing file"      "$MCTC" lint "$DESIGNS/no_such_file.er"
expect 2 "unknown query"     "$MCTC" lint --query NoSuchQuery "$DESIGNS/warehouse.er"
expect 2 "bad mc-xpath"      "$MCTC" lint --query "/(unclosed" "$DESIGNS/warehouse.er"

if [ "$fails" -ne 0 ]; then
  echo "$fails case(s) failed" >&2
  exit 1
fi
echo "all lint exit-code cases passed"
