// A small text DSL for ER diagrams, so designs can live as data files and be
// fed to the examples / CLI without recompiling.
//
// Grammar (line oriented, '#' comments):
//
//   diagram <name>
//   entity <name> { key <attr>  attr <attr> <string|int> ... }
//   rel <name>: <A> (1|m)[!] -- <B> (1|m)[!] [{ attr ... }]
//
// Cardinality reads as a ratio: "country (1) -- address (m)" means one
// country relates to many addresses (so country's participation is MANY,
// address's is ONE). '!' marks total participation of that side.
#pragma once

#include <string_view>

#include "common/result.h"
#include "er/er_model.h"

namespace mctdb::er {

/// Parse a diagram from DSL text. Returns InvalidArgument with a line number
/// on malformed input.
Result<ErDiagram> ParseErDiagram(std::string_view text);

/// Render a diagram back to DSL text (round-trips through ParseErDiagram).
std::string FormatErDiagram(const ErDiagram& diagram);

}  // namespace mctdb::er
