#include "design/associations.h"

#include "common/logging.h"

namespace mctdb::design {

std::string AssociationPath::Label(const er::ErDiagram& diagram) const {
  std::string out;
  for (size_t i = 1; i + 1 < nodes.size(); ++i) {
    if (!out.empty()) out += ".";
    out += diagram.node(nodes[i]).name;
  }
  if (out.empty()) out = "(direct)";
  return out;
}

std::vector<AssociationPath> EnumerateEligiblePaths(
    const er::ErGraph& graph, const EnumerateOptions& options,
    bool* truncated) {
  std::vector<AssociationPath> out;
  if (truncated) *truncated = false;
  const size_t n = graph.num_nodes();
  std::vector<bool> on_path(n, false);

  // Iterative DFS with an explicit edge stack, one run per source node.
  struct Frame {
    er::NodeId node;
    size_t next_incident = 0;
  };
  std::vector<Frame> stack;
  std::vector<er::EdgeId> path_edges;
  std::vector<er::NodeId> path_nodes;

  for (er::NodeId source = 0; source < n; ++source) {
    stack.clear();
    path_edges.clear();
    path_nodes.assign(1, source);
    std::fill(on_path.begin(), on_path.end(), false);
    on_path[source] = true;
    stack.push_back({source, 0});

    while (!stack.empty()) {
      Frame& fr = stack.back();
      const auto& incident = graph.incident(fr.node);
      if (fr.next_incident >= incident.size() ||
          path_edges.size() >= options.max_length) {
        on_path[fr.node] = false;
        stack.pop_back();
        if (!path_edges.empty()) {
          path_edges.pop_back();
          path_nodes.pop_back();
        }
        continue;
      }
      er::EdgeId eid = incident[fr.next_incident++];
      const er::ErEdge& e = graph.edge(eid);
      if (!graph.Traversable(e, fr.node)) continue;
      er::NodeId next = e.other(fr.node);
      if (on_path[next]) continue;

      path_edges.push_back(eid);
      path_nodes.push_back(next);
      on_path[next] = true;
      stack.push_back({next, 0});

      AssociationPath p;
      p.source = source;
      p.target = next;
      p.nodes = path_nodes;
      p.edges = path_edges;
      out.push_back(std::move(p));
      if (out.size() >= options.max_paths) {
        if (truncated) *truncated = true;
        return out;
      }
    }
  }
  return out;
}

std::vector<std::pair<er::NodeId, er::NodeId>> EligiblePairs(
    const er::ErGraph& graph) {
  auto closure = graph.TraversableClosure();
  std::vector<std::pair<er::NodeId, er::NodeId>> out;
  for (er::NodeId x = 0; x < graph.num_nodes(); ++x) {
    for (er::NodeId y = 0; y < graph.num_nodes(); ++y) {
      if (x != y && closure[x][y]) out.emplace_back(x, y);
    }
  }
  return out;
}

}  // namespace mctdb::design
