#include "wal/durable_store.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>

#include "analysis/query_analyze.h"
#include "common/failpoint.h"
#include "obs/flight_recorder.h"
#include "obs/trace_id.h"
#include "storage/persist.h"
#include "wal/maintenance.h"

namespace mctdb::wal {

namespace flight = obs::flight;

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    const mct::MctSchema& schema, const std::string& path,
    const Options& options) {
  std::unique_ptr<DurableStore> ds(new DurableStore());
  ds->path_ = path;
  ds->options_ = options;
  MCTDB_ASSIGN_OR_RETURN(
      ds->store_,
      storage::LoadStoreWithRetry(schema, path, options.store));
  ds->store_->EnableVersioning();
  ds->live_store_.store(ds->store_.get(), std::memory_order_release);
  uint64_t fingerprint = storage::SchemaFingerprint(schema);
  MCTDB_ASSIGN_OR_RETURN(
      ds->recovery_,
      RecoverLog(WalPath(path), fingerprint, ds->store_.get()));
  MCTDB_ASSIGN_OR_RETURN(
      ds->log_, LogWriter::Open(WalPath(path), fingerprint,
                                /*checkpoint_lsn=*/kNoLsn,
                                /*durable_lsn=*/ds->recovery_.last_lsn));
  ds->last_applied_ = ds->recovery_.last_lsn;
  return ds;
}

Result<std::unique_ptr<DurableStore>> DurableStore::Create(
    std::unique_ptr<storage::MctStore> store, const std::string& path,
    const Options& options) {
  std::unique_ptr<DurableStore> ds(new DurableStore());
  ds->path_ = path;
  ds->options_ = options;
  ds->store_ = std::move(store);
  // Atomic create: build the image beside `path`, durably discard any
  // stale log, and only then rename the image into place. Until the
  // rename no new image is visible, so no crash point can pair a fresh
  // image with an old WAL whose fingerprint matches (same schema) — the
  // next Open would replay that stale history onto the new image.
  std::string tmp = path + ".create.tmp";
  Status saved = storage::SaveStore(*ds->store_, tmp, /*sync=*/true);
  if (!saved.ok()) {
    std::remove(tmp.c_str());
    return saved;
  }
  std::remove(WalPath(path).c_str());
  // Directory sync between the two entry operations: the stale log's
  // removal must reach disk before the rename can.
  Status synced = storage::SyncParentDir(path);
  if (!synced.ok()) {
    std::remove(tmp.c_str());
    return synced;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("durable store: create rename failed");
  }
  MCTDB_RETURN_IF_ERROR(storage::SyncParentDir(path));
  ds->store_->EnableVersioning();
  ds->live_store_.store(ds->store_.get(), std::memory_order_release);
  uint64_t fingerprint = storage::SchemaFingerprint(ds->store_->schema());
  MCTDB_ASSIGN_OR_RETURN(
      ds->log_, LogWriter::Open(WalPath(path), fingerprint,
                                /*checkpoint_lsn=*/kNoLsn,
                                /*durable_lsn=*/kNoLsn));
  return ds;
}

Result<std::unique_ptr<DurableStore>> DurableStore::Ephemeral(
    std::unique_ptr<storage::MctStore> store, const Options& options) {
  std::unique_ptr<DurableStore> ds(new DurableStore());
  ds->options_ = options;
  ds->store_ = std::move(store);
  ds->store_->EnableVersioning();
  ds->live_store_.store(ds->store_.get(), std::memory_order_release);
  uint64_t fingerprint = storage::SchemaFingerprint(ds->store_->schema());
  MCTDB_ASSIGN_OR_RETURN(ds->log_,
                         LogWriter::Open("", fingerprint,
                                         /*checkpoint_lsn=*/kNoLsn,
                                         /*durable_lsn=*/kNoLsn));
  return ds;
}

Result<DurableStore::ApplyReceipt> DurableStore::ApplyOnce(
    const storage::UpdateOp& op, obs::ExecStats* stats) {
  std::unique_lock lk(write_mu_);
  if (log_->degraded()) {
    return read_only()
               ? Status::Unavailable(
                     "durable store: read-only (WAL out of disk space); "
                     "reads keep serving, writes resume after space "
                     "recovers")
               : Status::Unavailable("durable store: WAL degraded; reopen");
  }
  storage::MctStore* store = store_.get();
  {
    // Static precheck (QRY012) BEFORE the append: a schema-invalid op must
    // never dirty the log — a refused op leaves wal_appends unchanged and
    // nothing for recovery to skip.
    analysis::DiagnosticReport precheck =
        analysis::VerifyUpdateOpStatic(store->schema(), op);
    if (precheck.has_errors()) {
      return Status::InvalidArgument(
          "update op rejected by static precheck:\n" + precheck.ToText());
    }
  }
  std::string payload;
  storage::EncodeUpdateOp(op, &payload);
  Lsn lsn = kNoLsn;
  {
    // Write-ahead: the redo record is (at least buffered) before any
    // state is dirtied. A failed append aborts cleanly.
    obs::SpanScope span(stats, obs::StageKind::kWal, "append");
    MCTDB_ASSIGN_OR_RETURN(lsn, log_->Append(RecordType::kUpdateOp, payload));
    span.SetCardinalityOut(payload.size());
  }
  Result<storage::ApplyStats> applied = storage::ApplyStats{};
  {
    obs::SpanScope span(stats, obs::StageKind::kUpdate,
                        storage::UpdateKindName(op.kind));
    applied = storage::ApplyUpdateOp(store, op, lsn);
    if (applied.ok()) {
      span.SetCardinalityOut(applied.value().labels_touched);
    }
  }
  if (!applied.ok()) {
    // The op failed deterministically before mutating anything; its log
    // record will fail identically on replay (recovery skips it). Later
    // appends/commits continue normally.
    return applied.status();
  }
  last_applied_ = lsn;
  // Track the tightest residual label gap since the last rebase — the
  // maintenance gap-pressure signal.
  uint32_t gap = applied.value().min_free_gap;
  if (gap != UINT32_MAX) {
    uint32_t cur = min_free_gap_.load(std::memory_order_relaxed);
    while (gap < cur && !min_free_gap_.compare_exchange_weak(
                            cur, gap, std::memory_order_relaxed)) {
    }
  }
  lk.unlock();
  {
    // Group commit outside the write mutex: concurrent appliers park on
    // one fsync. The span's cardinality pair records the batch LSN range
    // this commit rode: in = first LSN the sync covered beyond what was
    // already durable, out = the high LSN — so a trace shows which other
    // requests' records shared the fsync.
    obs::SpanScope span(stats, obs::StageKind::kWal, "group_commit");
    const Lsn durable_before = log_->durable_lsn();
    MCTDB_RETURN_IF_ERROR(log_->Commit(lsn));
    span.SetCardinalityIn(durable_before == kNoLsn ? 1 : durable_before + 1);
    span.SetCardinalityOut(log_->durable_lsn());
  }
  // Readers snapshot AFTER durability — an applied-but-unsynced op is
  // never visible, so a crash cannot retract an observed state.
  store->PublishVisibleLsn(lsn);
  return ApplyReceipt{lsn, applied.value()};
}

Result<DurableStore::ApplyReceipt> DurableStore::Apply(
    const storage::UpdateOp& op, obs::ExecStats* stats) {
  // Service-submitted ops arrive under the worker's admission-minted
  // trace; direct library/CLI callers get one minted here so WAL events —
  // including every stalled retry below — correlate under one trace.
  std::optional<obs::ScopedTraceId> trace_scope;
  if (obs::CurrentTraceId() == 0) {
    trace_scope.emplace(obs::MintTraceId());
  }
  Result<ApplyReceipt> r = ApplyOnce(op, stats);
  if (!r.ok() && !readonly_announced_.load(std::memory_order_relaxed) &&
      read_only()) {
    if (!readonly_announced_.exchange(true, std::memory_order_relaxed)) {
      flight::Record(flight::Subsystem::kWal, flight::Site::kReadOnlyEnter,
                     obs::CurrentTraceId(),
                     static_cast<uint64_t>(log_->last_errno()));
    }
  }
  if (r.ok() || !r.status().IsResourceExhausted()) return r;
  // Interval-label gap saturation. Without a maintenance manager this is
  // the operator-driven world: surface ResourceExhausted and let the
  // caller checkpoint. With one, stall bounded-time behind an urgent
  // rebalancing checkpoint and retry — the op's WAL record from the
  // failed attempt is harmless (recovery skips ResourceExhausted replays
  // idempotently) and the retry appends a fresh record.
  saturation_events_.fetch_add(1, std::memory_order_relaxed);
  MaintenanceManager* mm = maintenance();
  if (mm == nullptr) return r;
  const double budget = mm->options().max_stall_seconds;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(budget));
  while (true) {
    write_stalls_.fetch_add(1, std::memory_order_relaxed);
    flight::Record(flight::Subsystem::kCheckpoint, flight::Site::kWriteStall,
                   obs::CurrentTraceId(), write_stalls());
    if (!mm->StallForRebalance(deadline)) break;
    r = ApplyOnce(op, stats);
    if (r.ok() || !r.status().IsResourceExhausted()) return r;
  }
  char hint[64];
  std::snprintf(hint, sizeof(hint), "; stall budget spent, retry after %.1fs",
                budget);
  return Status::ResourceExhausted(r.status().message() + hint);
}

Result<CheckpointStats> DurableStore::Checkpoint(CheckpointMode mode) {
  std::optional<obs::ScopedTraceId> trace_scope;
  if (obs::CurrentTraceId() == 0) {
    trace_scope.emplace(obs::MintTraceId());
  }
  std::lock_guard lk(write_mu_);
  flight::Record(flight::Subsystem::kCheckpoint,
                 flight::Site::kCheckpointBegin, obs::CurrentTraceId(),
                 log_->durable_bytes());
  // One evaluation per checkpoint drives BOTH probe points below, so a
  // probabilistic arming rolls the dice once (err and trunc can't both
  // fire in one call) and HitCount counts each checkpoint once. A `panic`
  // action aborts here, at entry.
  const failpoint::Fault ckpt_fault = MCTDB_FAILPOINT("wal.checkpoint");
  switch (ckpt_fault) {
    case failpoint::Fault::kError:
      return Status::IoError("wal: injected checkpoint fault");
    case failpoint::Fault::kEnospc:
      // The image save would fail for lack of space. Nothing is lost —
      // the WAL keeps every record — the checkpoint just can't complete
      // until the disk drains.
      return Status::IoError(std::string("wal: checkpoint image save "
                                         "failed: ") +
                             std::strerror(ENOSPC));
    case failpoint::Fault::kEio:
      return Status::IoError(std::string("wal: checkpoint image save "
                                         "failed: ") +
                             std::strerror(EIO));
    case failpoint::Fault::kTruncate:
    case failpoint::Fault::kNone:
      break;
  }
  // Flush any straggler batch so the image and the log agree. Commit up
  // to the last BUFFERED lsn, not last_applied_: an insert that hit gap
  // saturation appended its record and then failed to apply, leaving a
  // buffered record past last_applied_ — exactly the op whose stall this
  // urgent checkpoint is resolving. The record is harmless (replay fails
  // it identically and skips), but Reset refuses a non-empty buffer.
  if (const Lsn buffered = log_->buffered_lsn(); buffered != kNoLsn) {
    MCTDB_RETURN_IF_ERROR(log_->Commit(buffered));
  }
  if (last_applied_ != kNoLsn) {
    store_->PublishVisibleLsn(last_applied_);
  }
  CheckpointStats stats;
  stats.checkpoint_lsn = last_applied_;
  uint64_t log_bytes_before = log_->durable_bytes();
  MCTDB_ASSIGN_OR_RETURN(std::unique_ptr<storage::MctStore> compact,
                         CompactStore(*store_, options_.store));
  stats.elements = compact->num_elements();
  if (!path_.empty()) {
    // The image must be DURABLE before the log is trimmed: fsync the tmp
    // file's bytes, rename, fsync the directory so the rename itself is
    // on disk. Otherwise Reset's durable WAL truncation could reach disk
    // ahead of the image's data blocks, and a power loss would leave a
    // torn image with no log left to rebuild it — replay only covers
    // crash-before-trim, never unsynced-image-after-trim.
    std::string tmp = path_ + ".ckpt.tmp";
    Status saved = storage::SaveStore(*compact, tmp, /*sync=*/true);
    if (!saved.ok()) {
      std::remove(tmp.c_str());
      return saved;
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      std::remove(tmp.c_str());
      return Status::IoError("wal: checkpoint rename failed");
    }
    MCTDB_RETURN_IF_ERROR(storage::SyncParentDir(path_));
  }
  if (ckpt_fault == failpoint::Fault::kTruncate) {
    // Crash window probe: image committed, log not trimmed. Recovery will
    // skip the now-redundant records idempotently.
    return Status::IoError("wal: injected post-image checkpoint fault");
  }
  MCTDB_RETURN_IF_ERROR(log_->Reset(stats.checkpoint_lsn));
  stats.log_bytes_trimmed = log_bytes_before - log_->durable_bytes();
  if (mode == CheckpointMode::kRebaseLive) {
    // The interval-label rebalance: swap the live store to the compacted
    // image, whose StoreBuilder pass relabeled every color with fresh
    // stride gaps. The old store is retired, not destroyed — readers that
    // resolved it before this point finish on an immutable snapshot;
    // correctness argument in DESIGN.md §17.
    compact->EnableVersioning();
    if (stats.checkpoint_lsn != kNoLsn) {
      compact->PublishVisibleLsn(stats.checkpoint_lsn);
    }
    storage::MctStore* fresh = compact.get();
    retired_.push_back(std::move(store_));
    store_ = std::move(compact);
    live_store_.store(fresh, std::memory_order_release);
    min_free_gap_.store(UINT32_MAX, std::memory_order_relaxed);
    rebases_.fetch_add(1, std::memory_order_relaxed);
    stats.rebased = true;
  }
  flight::Record(flight::Subsystem::kCheckpoint,
                 flight::Site::kCheckpointEnd, obs::CurrentTraceId(),
                 stats.checkpoint_lsn == kNoLsn ? 0 : stats.checkpoint_lsn);
  return stats;
}

Status DurableStore::TryExitReadOnly() {
  std::lock_guard lk(write_mu_);
  if (!log_->degraded()) return Status::OK();
  MCTDB_RETURN_IF_ERROR(log_->Reprobe());
  // The parked batch is durable now; everything applied in memory while
  // the disk was full can finally become visible to new snapshots.
  if (last_applied_ != kNoLsn && log_->durable_lsn() >= last_applied_) {
    store_->PublishVisibleLsn(last_applied_);
  }
  readonly_announced_.store(false, std::memory_order_relaxed);
  flight::Record(flight::Subsystem::kWal, flight::Site::kReadOnlyExit,
                 obs::CurrentTraceId(),
                 log_->durable_lsn() == kNoLsn ? 0 : log_->durable_lsn());
  return Status::OK();
}

}  // namespace mctdb::wal
