// Fig 12 reproduction: geometric mean of the number of structural joins per
// diagram (ER1..ER10, Derby, TPC-W) per schema (DEEP, AF, SHALLOW, EN,
// MCMR, DR; UNDR excluded exactly as in the paper — "there were too many
// subjective ways in which to unnormalize each schema").
#include "er/er_catalog.h"

#include "bench/bench_util.h"
#include "bench/collection_util.h"
#include "bench/report.h"

using namespace mctdb;
using namespace mctdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (!args.ok) return 1;
  return RunCollectionBench(
      "fig12",
      "=== Fig 12: Geometric mean of number of structural joins, ER "
      "collection ===",
      "gmean_structural_joins",
      [](const workload::CollectionCell& c) {
        return c.gmean_structural_joins;
      },
      args.json_path);
}
