// Holistic twig join — TwigStack [Bruno, Koudas & Srivastava, SIGMOD'02],
// the second structural-join primitive the paper cites ([7]) alongside the
// binary stack-tree join [1].
//
// Matches a whole tree pattern ("twig") against one colored tree in a
// single coordinated pass over the pattern nodes' posting lists, instead of
// one binary join per pattern edge. For ancestor-descendant twigs TwigStack
// is I/O optimal: it never buffers an element that cannot contribute to a
// solution. bench_micro_twig compares it against the per-edge pipeline.
//
// Scope: ancestor-descendant edges (the optimality domain of the original
// paper). Parent-child relationships can be checked by post-filtering the
// returned matches with level arithmetic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/query_spec.h"
#include "storage/store.h"

namespace mctdb::query {

struct TwigNode {
  er::NodeId tag = er::kInvalidNode;
  int parent = -1;  ///< -1 for the twig root (exactly one)
  std::optional<AttrPredicate> predicate;
};

struct TwigPattern {
  /// nodes[0] must be the root; children must follow their parents.
  std::vector<TwigNode> nodes;
};

struct TwigResult {
  /// Number of root-to-leaf path solutions summed over leaves (the classic
  /// PathStack output unit).
  uint64_t path_solutions = 0;
  /// Per pattern node: elements that participate in at least one solution,
  /// in document order, deduplicated.
  std::vector<std::vector<storage::ElemId>> matched;
};

/// Runs TwigStack for `pattern` over `color` of `store`. Fails when a tag
/// has no posting in the color (empty result is returned instead when the
/// posting exists but nothing matches).
Result<TwigResult> TwigStackJoin(const storage::MctStore& store,
                                 mct::ColorId color,
                                 const TwigPattern& pattern);

/// Reference evaluator (nested containment loops) for testing: must agree
/// with TwigStackJoin on matched element sets.
TwigResult NaiveTwigJoin(const storage::MctStore& store, mct::ColorId color,
                         const TwigPattern& pattern);

}  // namespace mctdb::query
