#include "mct/mct_schema.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"

namespace mctdb::mct {

const char* ToString(Occurs o) {
  switch (o) {
    case Occurs::kOne:
      return "1";
    case Occurs::kOpt:
      return "?";
    case Occurs::kPlus:
      return "+";
    case Occurs::kStar:
      return "*";
  }
  return "?";
}

ColorId MctSchema::AddColor() {
  static const char* kPalette[] = {"blue", "red", "purple", "orange", "green"};
  ColorId id = static_cast<ColorId>(color_roots_.size());
  if (id < 5) {
    color_names_.emplace_back(kPalette[id]);
  } else {
    color_names_.push_back(StringPrintf("color%d", id + 1));
  }
  color_roots_.emplace_back();
  return id;
}

OccId MctSchema::AddRoot(ColorId color, er::NodeId er_node) {
  MCTDB_CHECK(color < color_roots_.size());
  SchemaOcc occ;
  occ.id = static_cast<OccId>(occs_.size());
  occ.er_node = er_node;
  occ.color = color;
  occs_.push_back(occ);
  color_roots_[color].push_back(occ.id);
  return occ.id;
}

OccId MctSchema::AddChild(OccId parent, er::NodeId er_node,
                          er::EdgeId via_edge) {
  MCTDB_CHECK(parent < occs_.size());
  SchemaOcc occ;
  occ.id = static_cast<OccId>(occs_.size());
  occ.er_node = er_node;
  occ.color = occs_[parent].color;
  occ.parent = parent;
  occ.via_edge = via_edge;
  occs_.push_back(occ);
  occs_[parent].children.push_back(occ.id);
  return occ.id;
}

void MctSchema::AttachRoot(OccId root, OccId new_parent, er::EdgeId via_edge) {
  MCTDB_CHECK(root < occs_.size() && new_parent < occs_.size());
  SchemaOcc& r = occs_[root];
  MCTDB_CHECK_MSG(r.is_root(), "AttachRoot target must be a root");
  MCTDB_CHECK(occs_[new_parent].color == r.color);
  auto& roots = color_roots_[r.color];
  roots.erase(std::find(roots.begin(), roots.end(), root));
  r.parent = new_parent;
  r.via_edge = via_edge;
  occs_[new_parent].children.push_back(root);
}

void MctSchema::AddRefEdge(OccId from, er::EdgeId er_edge,
                           er::NodeId target) {
  RefEdge ref;
  ref.from = from;
  ref.er_edge = er_edge;
  ref.target = target;
  ref.attr_name = diagram().node(target).name + "_idref";
  ref_edges_.push_back(std::move(ref));
}

std::vector<OccId> MctSchema::OccurrencesOf(er::NodeId er_node) const {
  std::vector<OccId> out;
  for (const SchemaOcc& o : occs_) {
    if (o.er_node == er_node) out.push_back(o.id);
  }
  return out;
}

OccId MctSchema::FindOcc(ColorId color, er::NodeId er_node) const {
  for (const SchemaOcc& o : occs_) {
    if (o.color == color && o.er_node == er_node) return o.id;
  }
  return kInvalidOcc;
}

size_t MctSchema::SubtreeSize(OccId id) const {
  size_t n = 1;
  for (OccId child : occs_[id].children) n += SubtreeSize(child);
  return n;
}

bool MctSchema::IsCleanOcc(OccId id) const {
  for (OccId cur = id; !occs_[cur].is_root(); cur = occs_[cur].parent) {
    const er::ErEdge& e = graph_->edge(occs_[cur].via_edge);
    if (!graph_->Traversable(e, occs_[occs_[cur].parent].er_node)) {
      return false;
    }
  }
  return true;
}

OccId MctSchema::PrimaryOcc(ColorId color, er::NodeId er_node) const {
  // Prefer occurrences whose root path is all-traversable: their
  // placements never duplicate instances, so completing the logical
  // instance set there is cheap and anchoring joins there is sound. A
  // reverse link on the root path marks a denormalized context graft
  // (DEEP/UNDR), which only covers the instances its parent context
  // reaches — eligible as primary only when nothing better exists.
  OccId best = kInvalidOcc;
  bool best_clean = false;
  size_t best_size = 0;
  for (const SchemaOcc& o : occs_) {
    if (o.color != color || o.er_node != er_node) continue;
    bool clean = true;
    for (OccId cur = o.id; !occs_[cur].is_root();
         cur = occs_[cur].parent) {
      const er::ErEdge& e = graph_->edge(occs_[cur].via_edge);
      if (!graph_->Traversable(e, occs_[occs_[cur].parent].er_node)) {
        clean = false;
        break;
      }
    }
    size_t size = SubtreeSize(o.id);
    bool better = best == kInvalidOcc || (clean && !best_clean) ||
                  (clean == best_clean && size > best_size);
    if (better) {
      best = o.id;
      best_clean = clean;
      best_size = size;
    }
  }
  return best;
}

bool MctSchema::IsAncestor(OccId anc, OccId desc) const {
  OccId cur = occs_[desc].parent;
  while (cur != kInvalidOcc) {
    if (cur == anc) return true;
    cur = occs_[cur].parent;
  }
  return false;
}

Occurs MctSchema::ChildOccurs(OccId child) const {
  const SchemaOcc& c = occs_[child];
  MCTDB_CHECK(!c.is_root());
  const er::ErEdge& e = graph_->edge(c.via_edge);
  if (c.er_node == e.rel) {
    // Parent is the endpoint: one parent instance participates in
    // `e.participation` relationship instances; totality gives minOccurs.
    bool total = e.totality == er::Totality::kTotal;
    if (e.participation == er::Participation::kMany) {
      return total ? Occurs::kPlus : Occurs::kStar;
    }
    return total ? Occurs::kOne : Occurs::kOpt;
  }
  // Parent is the relationship: each relationship instance has exactly one
  // instance of this endpoint (traversal requires ONE participation).
  return Occurs::kOne;
}

size_t MctSchema::Depth(OccId id) const {
  size_t d = 0;
  for (OccId cur = occs_[id].parent; cur != kInvalidOcc;
       cur = occs_[cur].parent) {
    ++d;
  }
  return d;
}

bool MctSchema::IsNodeNormal(std::string* violation) const {
  // (a) (color, er_node) must be unique: no ER node has two occurrences in
  // one colored tree.
  std::set<std::pair<ColorId, er::NodeId>> seen;
  for (const SchemaOcc& o : occs_) {
    if (!seen.insert({o.color, o.er_node}).second) {
      if (violation) {
        *violation = StringPrintf("node '%s' occurs twice in color %s",
                                  diagram().node(o.er_node).name.c_str(),
                                  color_name(o.color).c_str());
      }
      return false;
    }
  }
  // (b) Every parent link must nest from the "one" side to the "many" side
  // (be traversable). A link the other way forces instances of the child's
  // ER node to be replicated under each parent instance — the very
  // redundancy node normal form forbids (§3.2), even with a single schema
  // occurrence.
  for (const SchemaOcc& o : occs_) {
    if (o.is_root()) continue;
    const er::ErEdge& e = graph_->edge(o.via_edge);
    if (!graph_->Traversable(e, occs_[o.parent].er_node)) {
      if (violation) {
        *violation = StringPrintf(
            "'%s' nested under '%s' against the cardinality (instances "
            "would be duplicated)",
            diagram().node(o.er_node).name.c_str(),
            diagram().node(occs_[o.parent].er_node).name.c_str());
      }
      return false;
    }
  }
  return true;
}

bool MctSchema::IsEdgeNormal(std::string* violation) const {
  std::map<er::EdgeId, ColorId> edge_color;
  for (const SchemaOcc& o : occs_) {
    if (o.is_root()) continue;
    auto [it, inserted] = edge_color.emplace(o.via_edge, o.color);
    if (!inserted && it->second != o.color) {
      if (violation) {
        const er::ErEdge& e = graph_->edge(o.via_edge);
        *violation = StringPrintf(
            "ER edge %s--%s realized in colors %s and %s",
            diagram().node(e.rel).name.c_str(),
            diagram().node(e.node).name.c_str(),
            color_name(it->second).c_str(), color_name(o.color).c_str());
      }
      return false;
    }
  }
  return true;
}

bool MctSchema::CoversAllNodes(std::string* missing) const {
  std::vector<bool> covered(diagram().num_nodes(), false);
  for (const SchemaOcc& o : occs_) covered[o.er_node] = true;
  for (er::NodeId n = 0; n < diagram().num_nodes(); ++n) {
    if (!covered[n]) {
      if (missing) *missing = diagram().node(n).name;
      return false;
    }
  }
  return true;
}

std::vector<Icic> MctSchema::ComputeIcics() const {
  std::map<er::EdgeId, std::vector<OccId>> by_edge;
  for (const SchemaOcc& o : occs_) {
    if (!o.is_root()) by_edge[o.via_edge].push_back(o.id);
  }
  std::vector<Icic> out;
  for (auto& [edge, realizations] : by_edge) {
    std::set<ColorId> colors;
    for (OccId r : realizations) colors.insert(occs_[r].color);
    if (colors.size() < 2) continue;
    Icic icic;
    icic.er_edge = edge;
    icic.realizations = std::move(realizations);
    icic.colors.assign(colors.begin(), colors.end());
    out.push_back(std::move(icic));
  }
  return out;
}

SchemaStats MctSchema::Stats() const {
  SchemaStats st;
  st.num_colors = num_colors();
  st.num_occurrences = occs_.size();
  st.num_ref_edges = ref_edges_.size();
  st.num_icics = ComputeIcics().size();
  for (const SchemaOcc& o : occs_) {
    st.max_depth = std::max(st.max_depth, Depth(o.id));
  }
  std::map<std::pair<ColorId, er::NodeId>, size_t> per_color;
  for (const SchemaOcc& o : occs_) ++per_color[{o.color, o.er_node}];
  std::set<er::NodeId> dup;
  for (const auto& [key, count] : per_color) {
    if (count > 1) dup.insert(key.second);
  }
  st.num_duplicated_er_nodes = dup.size();
  return st;
}

Status MctSchema::Validate() const {
  for (const SchemaOcc& o : occs_) {
    if (o.er_node >= diagram().num_nodes()) {
      return Status::Corruption("occurrence with dangling ER node");
    }
    if (o.is_root()) {
      const auto& roots = color_roots_[o.color];
      if (std::find(roots.begin(), roots.end(), o.id) == roots.end()) {
        return Status::Corruption("root occurrence not registered as root");
      }
      continue;
    }
    const SchemaOcc& p = occs_[o.parent];
    if (p.color != o.color) {
      return Status::Corruption("parent link crosses colors");
    }
    if (std::find(p.children.begin(), p.children.end(), o.id) ==
        p.children.end()) {
      return Status::Corruption("child not registered under parent");
    }
    const er::ErEdge& e = graph_->edge(o.via_edge);
    // The realized edge must connect exactly the two ER nodes involved...
    bool matches = (e.rel == p.er_node && e.node == o.er_node) ||
                   (e.node == p.er_node && e.rel == o.er_node);
    if (!matches) {
      return Status::Corruption("via_edge does not connect parent and child");
    }
    // Note: non-traversable parent->child links are legal here — DEEP/UNDR
    // nest the "one" side under the "many" side on purpose. That choice
    // costs node normal form (checked by IsNodeNormal), not validity.
  }
  // Acyclicity: parent ids may exceed child ids after AttachRoot, so walk
  // each occurrence's ancestor chain with a visited cap.
  for (const SchemaOcc& o : occs_) {
    size_t steps = 0;
    for (OccId cur = o.parent; cur != kInvalidOcc; cur = occs_[cur].parent) {
      if (++steps > occs_.size()) {
        return Status::Corruption("cycle in occurrence forest");
      }
    }
  }
  return Status::OK();
}

std::string MctSchema::DebugString() const {
  std::string out =
      StringPrintf("MctSchema '%s' over %s: %zu colors, %zu occurrences\n",
                   name_.c_str(), diagram().name().c_str(), num_colors(),
                   occs_.size());
  // Ref edges grouped by source occurrence for the dump.
  std::map<OccId, std::vector<const RefEdge*>> refs;
  for (const RefEdge& r : ref_edges_) refs[r.from].push_back(&r);

  for (ColorId c = 0; c < num_colors(); ++c) {
    out += StringPrintf("(%s)\n", color_name(c).c_str());
    // Iterative pre-order dump.
    struct Item {
      OccId id;
      size_t depth;
    };
    std::vector<Item> stack;
    for (auto it = color_roots_[c].rbegin(); it != color_roots_[c].rend();
         ++it) {
      stack.push_back({*it, 1});
    }
    while (!stack.empty()) {
      Item item = stack.back();
      stack.pop_back();
      const SchemaOcc& o = occs_[item.id];
      out += std::string(2 * item.depth, ' ');
      out += diagram().node(o.er_node).name;
      if (!o.is_root()) {
        out += StringPrintf(" [%s]", ToString(ChildOccurs(o.id)));
      }
      if (auto it = refs.find(o.id); it != refs.end()) {
        for (const RefEdge* r : it->second) {
          out += " @" + r->attr_name;
        }
      }
      out += "\n";
      for (auto cit = o.children.rbegin(); cit != o.children.rend(); ++cit) {
        stack.push_back({*cit, item.depth + 1});
      }
    }
  }
  auto icics = ComputeIcics();
  if (!icics.empty()) {
    out += StringPrintf("ICICs: %zu\n", icics.size());
    for (const Icic& icic : icics) {
      const er::ErEdge& e = graph_->edge(icic.er_edge);
      out += StringPrintf("  %s--%s in %zu colors\n",
                          diagram().node(e.rel).name.c_str(),
                          diagram().node(e.node).name.c_str(),
                          icic.colors.size());
    }
  }
  return out;
}

}  // namespace mctdb::mct
