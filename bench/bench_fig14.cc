// Fig 14 reproduction: geometric mean of the number of duplicate
// eliminations / duplicate updates / group-bys over the ER collection, per
// schema.
#include "er/er_catalog.h"

#include "bench/bench_util.h"
#include "bench/collection_util.h"
#include "bench/report.h"

using namespace mctdb;
using namespace mctdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (!args.ok) return 1;
  return RunCollectionBench(
      "fig14",
      "=== Fig 14: Geometric mean of number of duplicate eliminations / "
      "duplicate updates / group-bys, ER collection ===",
      "gmean_dup_ops",
      [](const workload::CollectionCell& c) { return c.gmean_dup_ops; },
      args.json_path);
}
