// The in-process benchmark registry behind `mctc bench`.
//
// Each registered benchmark produces one BenchReport at a chosen scale.
// The measurement core (MeasureTpcwGrid) is the SAME code bench_table1
// runs, so `mctc bench --json` and the standalone binary cannot drift:
// plan with query::PlanQuery, execute on the store-owned serial pool
// with query::Executor, report the median of `repetitions` runs and the
// exact per-query I/O of the last repetition.
#pragma once

#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"

namespace mctdb::bench {

struct SuiteOptions {
  double scale = 1.0;
  /// Repetitions per (schema, query) cell; the median is reported.
  size_t repetitions = 3;
};

struct BenchmarkDef {
  const char* name;
  const char* description;
  BenchReport (*fn)(const SuiteOptions& options);
};

/// All registered benchmarks, in execution order.
const std::vector<BenchmarkDef>& RegisteredBenchmarks();
const BenchmarkDef* FindBenchmark(std::string_view name);

/// Executes every figure query of `setup` on every schema, `reps` times
/// each; one record per (schema, query) cell with the median time, the
/// last repetition's exact I/O and join pairs, and result-count extras
/// (unique/raw for reads, logical/element writes for updates). Planner
/// or executor failures surface as an `error` extra of 1 on the cell.
std::vector<QueryRecord> MeasureTpcwGrid(TpcwSetup& setup, size_t reps);

}  // namespace mctdb::bench
