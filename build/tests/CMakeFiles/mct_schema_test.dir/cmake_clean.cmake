file(REMOVE_RECURSE
  "CMakeFiles/mct_schema_test.dir/mct_schema_test.cc.o"
  "CMakeFiles/mct_schema_test.dir/mct_schema_test.cc.o.d"
  "mct_schema_test"
  "mct_schema_test.pdb"
  "mct_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
