#include "storage/validate.h"

#include <gtest/gtest.h>

#include "design/designer.h"
#include "instance/materialize.h"
#include "workload/workload.h"

namespace mctdb::storage {
namespace {

using design::Strategy;

TEST(ValidateTest, MaterializedStoresAreClean) {
  workload::Workload w = workload::TpcwWorkload(0.03);
  er::ErGraph graph(w.diagram);
  design::Designer designer(graph);
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);
  for (Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    auto store = instance::Materialize(logical, schema);
    analysis::DiagnosticReport report = ValidateStore(*store);
    EXPECT_TRUE(report.empty())
        << schema.name() << ": " << report.ToText();
  }
}

/// Hand-built fixture over a -r1-> b with a 2-color schema realizing the
/// same edge twice (one ICIC), for failure injection.
struct InjectionFixture {
  er::ErDiagram diagram;
  er::ErGraph graph;
  mct::MctSchema schema;
  er::NodeId a, b, r1;
  er::EdgeId edge_a, edge_b;

  InjectionFixture()
      : diagram(Make()), graph(diagram), schema("inject", &graph) {
    a = *diagram.FindNode("a");
    b = *diagram.FindNode("b");
    r1 = *diagram.FindNode("r1");
    for (er::EdgeId eid : graph.incident(r1)) {
      if (graph.edge(eid).node == a) edge_a = eid;
      if (graph.edge(eid).node == b) edge_b = eid;
    }
    // Both colors realize a -> r1 -> b (edge redundancy => ICICs).
    for (int c = 0; c < 2; ++c) {
      mct::ColorId color = schema.AddColor();
      mct::OccId oa = schema.AddRoot(color, a);
      mct::OccId orel = schema.AddChild(oa, r1, edge_a);
      schema.AddChild(orel, b, edge_b);
    }
    EXPECT_FALSE(schema.ComputeIcics().empty());
  }

  static er::ErDiagram Make() {
    er::ErDiagram d("t");
    auto a = d.AddEntity("a", {{"id", er::AttrType::kString, true}});
    auto b = d.AddEntity("b", {{"id", er::AttrType::kString, true}});
    EXPECT_TRUE(d.AddOneToMany("r1", a, b, er::Totality::kTotal).ok());
    return d;
  }
};

TEST(ValidateTest, ConsistentTwoColorStorePasses) {
  InjectionFixture f;
  StoreBuilder builder(&f.schema, {});
  ElemId ea = builder.AddElement(f.a, 0, false);
  ElemId er_ = builder.AddElement(f.r1, 0, false);
  ElemId eb = builder.AddElement(f.b, 0, false);
  for (int c = 0; c < 2; ++c) {
    builder.BeginColor(mct::ColorId(c));
    builder.Enter(ea);
    builder.Enter(er_);
    builder.Enter(eb);
    builder.Leave(eb);
    builder.Leave(er_);
    builder.Leave(ea);
    builder.EndColor();
  }
  auto store = builder.Finish();
  EXPECT_FALSE(ValidateStore(*store).has_errors());
}

TEST(ValidateTest, DetectsIcicViolation) {
  // Color 0 asserts pair (a0, b0) via r1; color 1 asserts (a1, b0): the two
  // complete realizations of the constrained edge disagree.
  InjectionFixture f;
  StoreBuilder builder(&f.schema, {});
  ElemId a0 = builder.AddElement(f.a, 0, false);
  ElemId a1 = builder.AddElement(f.a, 1, false);
  ElemId r0 = builder.AddElement(f.r1, 0, false);
  ElemId b0 = builder.AddElement(f.b, 0, false);
  builder.BeginColor(0);
  builder.Enter(a0);
  builder.Enter(r0);
  builder.Enter(b0);
  builder.Leave(b0);
  builder.Leave(r0);
  builder.Leave(a0);
  builder.Enter(a1);
  builder.Leave(a1);
  builder.EndColor();
  builder.BeginColor(1);
  builder.Enter(a1);
  builder.Enter(r0);
  builder.Enter(b0);
  builder.Leave(b0);
  builder.Leave(r0);
  builder.Leave(a1);
  builder.Enter(a0);
  builder.Leave(a0);
  builder.EndColor();
  auto store = builder.Finish();
  analysis::DiagnosticReport report = ValidateStore(*store);
  ASSERT_TRUE(report.has_errors());
  EXPECT_TRUE(report.HasCode("STO009")) << report.ToText();
}

TEST(ValidateTest, DetectsBrokenNesting) {
  // Manually mis-nest: Leave before children complete is prevented by the
  // builder, so forge overlap by giving a child a level that contradicts
  // the stack. We achieve it with unbalanced sibling ordering: enter b at
  // top level between a's interval halves is impossible through the
  // builder, so instead corrupt via a posting/label mismatch: build two
  // stores and validate a splice is NOT possible — covered by builder
  // CHECKs. Here we verify the validator catches a *level* lie made
  // possible by Enter/Leave misuse at the root (level counted by stack).
  InjectionFixture f;
  StoreBuilder builder(&f.schema, {});
  ElemId a0 = builder.AddElement(f.a, 0, false);
  ElemId r0 = builder.AddElement(f.r1, 0, false);
  builder.BeginColor(0);
  builder.Enter(a0);
  builder.Leave(a0);
  builder.Enter(r0);  // r1 as a top-level root: a valid forest...
  builder.Leave(r0);
  builder.EndColor();
  builder.BeginColor(1);
  builder.EndColor();
  auto store = builder.Finish();
  // ...so this particular store is structurally fine (oprhan-style), and
  // the validator must accept it.
  EXPECT_FALSE(ValidateStore(*store).has_errors());
}

TEST(ValidateTest, DetectsDanglingIdref) {
  // SHALLOW-style ref edge whose value points at a missing key.
  er::ErDiagram d("t");
  auto a = d.AddEntity("a", {{"id", er::AttrType::kString, true}});
  auto b = d.AddEntity("b", {{"id", er::AttrType::kString, true}});
  auto r = d.AddOneToMany("r1", a, b);
  ASSERT_TRUE(r.ok());
  er::ErGraph g(d);
  mct::MctSchema schema("ref", &g);
  mct::ColorId c0 = schema.AddColor();
  mct::OccId oa = schema.AddRoot(c0, a);
  er::EdgeId edge_a = er::kInvalidEdge, edge_b = er::kInvalidEdge;
  for (er::EdgeId eid : g.incident(*r)) {
    if (g.edge(eid).node == a) edge_a = eid;
    if (g.edge(eid).node == b) edge_b = eid;
  }
  mct::OccId orel = schema.AddChild(oa, *r, edge_a);
  schema.AddRoot(c0, b);
  schema.AddRefEdge(orel, edge_b, b);

  StoreBuilder builder(&schema, {});
  ElemId ea = builder.AddElement(a, 0, false);
  ElemId er_ = builder.AddElement(*r, 0, false);
  ElemId eb = builder.AddElement(b, 0, false);
  builder.AddAttr(eb, "id", "b_0", false);
  builder.AddAttr(er_, "b_idref", "b_GHOST", false);  // dangling!
  builder.BeginColor(0);
  builder.Enter(ea);
  builder.Enter(er_);
  builder.Leave(er_);
  builder.Leave(ea);
  builder.Enter(eb);
  builder.Leave(eb);
  builder.EndColor();
  auto store = builder.Finish();
  analysis::DiagnosticReport report = ValidateStore(*store);
  ASSERT_TRUE(report.has_errors());
  EXPECT_TRUE(report.HasCode("STO011")) << report.ToText();
  EXPECT_NE(report.ToText().find("dangling idref"), std::string::npos);
}

}  // namespace
}  // namespace mctdb::storage
