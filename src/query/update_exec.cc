#include "query/update_exec.h"

#include <chrono>
#include <optional>
#include <utility>

#include "analysis/plan_verify.h"
#include "obs/trace_id.h"

namespace mctdb::query {

Result<UpdateExecResult> UpdateExecutor::Execute(
    const storage::UpdateOp& op) {
  analysis::DiagnosticReport verdict =
      analysis::VerifyUpdate(store_->store()->schema(), op);
  if (verdict.has_errors()) {
    return Status::InvalidArgument("update rejected by verifier:\n" +
                                   verdict.ToText());
  }
  // Direct library/CLI callers get their trace minted HERE, before the
  // stats capture it, so the span tree and the WAL flight events agree;
  // service-submitted ops already run under the worker's admission trace.
  std::optional<obs::ScopedTraceId> trace_scope;
  if (obs::CurrentTraceId() == 0) {
    trace_scope.emplace(obs::MintTraceId());
  }
  auto t0 = std::chrono::steady_clock::now();
  uint64_t appends0 = store_->wal_appends();
  uint64_t fsyncs0 = store_->wal_fsyncs();
  obs::ExecStats stats(std::string(storage::UpdateKindName(op.kind)) + " " +
                       storage::DebugString(op));
  Result<wal::DurableStore::ApplyReceipt> receipt = store_->Apply(op, &stats);
  MCTDB_RETURN_IF_ERROR(receipt.status());
  UpdateExecResult result;
  result.lsn = receipt->lsn;
  result.stats = receipt->stats;
  result.wal_appends = store_->wal_appends() - appends0;
  result.wal_fsyncs = store_->wal_fsyncs() - fsyncs0;
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.trace = stats.Finish();
  return result;
}

}  // namespace mctdb::query
