// HttpEndpoint tests over real loopback sockets, plus the QueryService
// integration: /metrics scraped during live query traffic must be
// parseable exposition text including the per-store pool series (with
// label escaping for caller-chosen store names).
#include "service/http_endpoint.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "common/failpoint.h"
#include "design/designer.h"
#include "instance/materialize.h"
#include "query/planner.h"
#include "service/query_service.h"
#include "workload/workload.h"

namespace mctsvc {
namespace {

/// Blocking one-shot HTTP client: sends `request` verbatim to
/// 127.0.0.1:port and returns everything read until the server closes.
std::string RawRequest(uint16_t port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += size_t(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) response.append(buf, size_t(n));
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

TEST(HttpEndpointTest, ServesHandlerResponseOnEphemeralPort) {
  HttpEndpoint endpoint({}, [](const HttpRequest& request) {
    HttpResponse r;
    r.content_type = "text/plain";
    r.body = "path=" + request.path;
    return r;
  });
  ASSERT_TRUE(endpoint.Start().ok());
  ASSERT_GT(endpoint.port(), 0);
  std::string response = Get(endpoint.port(), "/hello");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("path=/hello"), std::string::npos);
  endpoint.Stop();
  EXPECT_EQ(endpoint.requests_served(), 1u);
}

TEST(HttpEndpointTest, QueryStringIsStripped) {
  HttpEndpoint endpoint({}, [](const HttpRequest& request) {
    HttpResponse r;
    r.body = "path=" + request.path;
    return r;
  });
  ASSERT_TRUE(endpoint.Start().ok());
  std::string response = Get(endpoint.port(), "/metrics?format=text");
  EXPECT_NE(response.find("path=/metrics"), std::string::npos) << response;
  EXPECT_EQ(response.find("format"), std::string::npos);
  endpoint.Stop();
}

TEST(HttpEndpointTest, HandlerStatusPropagates) {
  HttpEndpoint endpoint({}, [](const HttpRequest&) {
    HttpResponse r;
    r.status = 404;
    r.body = "{\"error\":\"not found\"}";
    r.content_type = "application/json";
    return r;
  });
  ASSERT_TRUE(endpoint.Start().ok());
  std::string response = Get(endpoint.port(), "/nosuch");
  EXPECT_NE(response.find("HTTP/1.0 404"), std::string::npos) << response;
  endpoint.Stop();
}

TEST(HttpEndpointTest, UnsupportedMethodIsRejectedWith405) {
  HttpEndpoint endpoint({}, [](const HttpRequest&) {
    return HttpResponse{};
  });
  ASSERT_TRUE(endpoint.Start().ok());
  std::string response =
      RawRequest(endpoint.port(), "PUT /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("405"), std::string::npos) << response;
  endpoint.Stop();
}

TEST(HttpEndpointTest, PostDeliversMethodQueryAndBody) {
  HttpEndpoint endpoint({}, [](const HttpRequest& request) {
    HttpResponse r;
    r.body = request.method + " " + request.path + " q=" + request.query +
             " body=" + request.body;
    return r;
  });
  ASSERT_TRUE(endpoint.Start().ok());
  std::string response = RawRequest(
      endpoint.port(),
      "POST /update?store=AF&count=3 HTTP/1.0\r\n"
      "Content-Length: 11\r\n\r\nhello world");
  EXPECT_NE(response.find("POST /update q=store=AF&count=3 body=hello world"),
            std::string::npos)
      << response;
  endpoint.Stop();
}

TEST(HttpEndpointTest, PostWithoutBodyReachesHandler) {
  HttpEndpoint endpoint({}, [](const HttpRequest& request) {
    HttpResponse r;
    r.body = "method=" + request.method + " len=" +
             std::to_string(request.body.size());
    return r;
  });
  ASSERT_TRUE(endpoint.Start().ok());
  std::string response =
      RawRequest(endpoint.port(), "POST /update HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("method=POST len=0"), std::string::npos)
      << response;
  endpoint.Stop();
}

TEST(HttpEndpointTest, OversizedBodyIsRejectedWith413) {
  HttpEndpoint::Options options;
  options.max_body_bytes = 16;
  bool handler_ran = false;
  HttpEndpoint endpoint(options, [&handler_ran](const HttpRequest&) {
    handler_ran = true;
    return HttpResponse{};
  });
  ASSERT_TRUE(endpoint.Start().ok());
  std::string response = RawRequest(
      endpoint.port(),
      "POST /update HTTP/1.0\r\nContent-Length: 64\r\n\r\n" +
          std::string(64, 'x'));
  EXPECT_NE(response.find("413"), std::string::npos) << response;
  EXPECT_FALSE(handler_ran);
  endpoint.Stop();
}

TEST(HttpEndpointTest, ContentLengthHeaderIsCaseInsensitive) {
  HttpEndpoint endpoint({}, [](const HttpRequest& request) {
    HttpResponse r;
    r.body = "body=" + request.body;
    return r;
  });
  ASSERT_TRUE(endpoint.Start().ok());
  std::string response = RawRequest(
      endpoint.port(),
      "POST /x HTTP/1.0\r\nCONTENT-LENGTH: 4\r\n\r\nabcd");
  EXPECT_NE(response.find("body=abcd"), std::string::npos) << response;
  endpoint.Stop();
}

TEST(HttpEndpointTest, MalformedRequestLineIs400) {
  HttpEndpoint endpoint({}, [](const HttpRequest&) {
    return HttpResponse{};
  });
  ASSERT_TRUE(endpoint.Start().ok());
  std::string response = RawRequest(endpoint.port(), "garbage\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos) << response;
  endpoint.Stop();
}

TEST(HttpEndpointTest, StartAndStopAreIdempotent) {
  HttpEndpoint endpoint({}, [](const HttpRequest&) {
    return HttpResponse{};
  });
  ASSERT_TRUE(endpoint.Start().ok());
  uint16_t port = endpoint.port();
  EXPECT_TRUE(endpoint.Start().ok());  // second Start is a no-op
  EXPECT_EQ(endpoint.port(), port);
  endpoint.Stop();
  endpoint.Stop();
}

TEST(HttpEndpointTest, ServesManySequentialRequests) {
  HttpEndpoint endpoint({}, [](const HttpRequest&) {
    HttpResponse r;
    r.body = "ok";
    return r;
  });
  ASSERT_TRUE(endpoint.Start().ok());
  for (int i = 0; i < 16; ++i) {
    EXPECT_NE(Get(endpoint.port(), "/x").find("200 OK"), std::string::npos);
  }
  endpoint.Stop();
  EXPECT_EQ(endpoint.requests_served(), 16u);
}

/// Full-stack integration: a small TPC-W store behind QueryService with
/// the HTTP endpoint enabled; scrapes go through real sockets while the
/// service executes queries.
class HttpServiceTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    w_ = new mctdb::workload::Workload(mctdb::workload::TpcwWorkload(0.02));
    graph_ = new mctdb::er::ErGraph(w_->diagram);
    mctdb::design::Designer designer(*graph_);
    schema_ = new mctdb::mct::MctSchema(
        designer.Design(mctdb::design::Strategy::kEn));
    logical_ = new mctdb::instance::LogicalInstance(
        mctdb::instance::GenerateInstance(*graph_, w_->gen));
    store_ = mctdb::instance::Materialize(*logical_, *schema_).release();
  }
  static void TearDownTestSuite() {
    delete store_;
    delete logical_;
    delete schema_;
    delete graph_;
    delete w_;
  }

  static mctdb::workload::Workload* w_;
  static mctdb::er::ErGraph* graph_;
  static mctdb::mct::MctSchema* schema_;
  static mctdb::instance::LogicalInstance* logical_;
  static mctdb::storage::MctStore* store_;
};

mctdb::workload::Workload* HttpServiceTest::w_ = nullptr;
mctdb::er::ErGraph* HttpServiceTest::graph_ = nullptr;
mctdb::mct::MctSchema* HttpServiceTest::schema_ = nullptr;
mctdb::instance::LogicalInstance* HttpServiceTest::logical_ = nullptr;
mctdb::storage::MctStore* HttpServiceTest::store_ = nullptr;

TEST_F(HttpServiceTest, MetricsScrapeDuringTrafficIncludesPoolSeries) {
  ServiceOptions options;
  options.http_port = 0;  // ephemeral
  QueryService service(options);
  // A store name with every character the exposition format escapes.
  ASSERT_TRUE(service.AddStore("we\"ird\\store", store_).ok());
  ASSERT_NE(service.HttpPort(), 0);

  const mctdb::query::AssociationQuery* q = w_->Find("Q1");
  ASSERT_NE(q, nullptr);
  auto plan = mctdb::query::PlanQuery(*q, *schema_);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(service.Execute("we\"ird\\store", *plan).ok());
  service.Drain();

  std::string response = Get(service.HttpPort(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos)
      << response;
  EXPECT_NE(response.find("mctsvc_requests_completed_total 1"),
            std::string::npos)
      << response;
  // Per-store pool series with the name escaped per the exposition format.
  EXPECT_NE(response.find("mctsvc_pool_hits_total{store=\"we\\\"ird\\\\store\"}"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("# HELP mctsvc_pool_hits_total"),
            std::string::npos);

  std::string health = Get(service.HttpPort(), "/healthz");
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"stores\":1"), std::string::npos) << health;

  EXPECT_NE(Get(service.HttpPort(), "/nosuch").find("404"),
            std::string::npos);
}

TEST_F(HttpServiceTest, HealthzTurns503WhileABreakerIsOpen) {
  ServiceOptions options;
  options.http_port = 0;
  options.breaker_failure_threshold = 1;
  options.breaker_open_seconds = 60.0;  // stays open for the whole test
  QueryService service(options);
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  ASSERT_NE(service.HttpPort(), 0);

  const mctdb::query::AssociationQuery* q = w_->Find("Q1");
  ASSERT_NE(q, nullptr);
  auto plan = mctdb::query::PlanQuery(*q, *schema_);
  ASSERT_TRUE(plan.ok());

  // Healthy service: 200.
  std::string healthy = Get(service.HttpPort(), "/healthz");
  EXPECT_NE(healthy.find("200 OK"), std::string::npos) << healthy;
  EXPECT_NE(healthy.find("\"status\":\"ok\""), std::string::npos);

  // One injected hard failure trips the (threshold-1) breaker; a load
  // balancer polling /healthz now sees 503 and drains this replica.
  {
    mctdb::failpoint::FailpointGuard guard("service.exec", "err");
    auto result = service.Execute("tpcw", *plan);
    ASSERT_FALSE(result.ok());
  }
  std::string degraded = Get(service.HttpPort(), "/healthz");
  EXPECT_NE(degraded.find("503"), std::string::npos) << degraded;
  EXPECT_NE(degraded.find("\"status\":\"degraded\""), std::string::npos)
      << degraded;
  EXPECT_NE(degraded.find("\"state\":\"open\""), std::string::npos)
      << degraded;
}

TEST_F(HttpServiceTest, EndpointDisabledByDefault) {
  QueryService service;
  ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
  EXPECT_EQ(service.HttpPort(), 0);
}

TEST_F(HttpServiceTest, ServiceShutdownStopsEndpointCleanly) {
  uint16_t port = 0;
  {
    ServiceOptions options;
    options.http_port = 0;
    QueryService service(options);
    ASSERT_TRUE(service.AddStore("tpcw", store_).ok());
    port = service.HttpPort();
    ASSERT_NE(port, 0);
    EXPECT_NE(Get(port, "/healthz").find("200 OK"), std::string::npos);
  }
  // After destruction nothing listens on the port anymore.
  EXPECT_EQ(Get(port, "/healthz"), "");
}

}  // namespace
}  // namespace mctsvc
