// Quickstart: the whole mctdb pipeline in ~80 effective lines.
//
//   1. describe a design in the ER DSL,
//   2. translate it to an MCT schema (MCMR strategy),
//   3. check the paper's desirable properties (NN/EN/AR/DR),
//   4. generate a small consistent instance and load a store,
//   5. query it with multi-colored XPath.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "design/designer.h"
#include "design/feasibility.h"
#include "er/er_parser.h"
#include "instance/materialize.h"
#include "query/mcxpath.h"

using namespace mctdb;

static constexpr const char* kBlogDesign = R"(
diagram blog

entity user    { key id  attr name string }
entity post    { key id  attr title string  attr score int }
entity comment { key id  attr text string }
entity tag     { key id  attr label string }

rel writes:    user (1) -- post (m!)      # one user, many posts
rel comments:  user (1) -- comment (m!)
rel on_post:   post (1) -- comment (m!)   # comment is on the many side twice!
rel tagged:    post (m) -- tag (m)        # many-many
)";

int main() {
  // 1. Parse the design specification.
  auto diagram = er::ParseErDiagram(kBlogDesign);
  if (!diagram.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 diagram.status().ToString().c_str());
    return 1;
  }
  er::ErGraph graph(*diagram);
  std::printf("%s\n", graph.DebugString().c_str());

  // 2. Single-color XML cannot be both anomaly-free and association
  //    recoverable here (Theorem 4.1)...
  auto feasibility = design::CheckSingleColorNnAr(graph);
  std::printf("Theorem 4.1: %s\n\n", feasibility.explanation.c_str());

  // 3. ...but MCT can. Translate with MCMR (the paper's recommendation
  //    "for most situations") and report the properties.
  design::Designer designer(graph);
  mct::MctSchema schema = designer.Design(design::Strategy::kMcmr);
  std::printf("%s\n", schema.DebugString().c_str());
  std::printf("properties: %s\n\n",
              designer.Report(schema).ToString().c_str());

  // 4. Generate a consistent logical instance and materialize it.
  instance::GenOptions gen;
  gen.base_count = 20;
  instance::LogicalInstance logical = instance::GenerateInstance(graph, gen);
  auto store = instance::Materialize(logical, schema);
  auto stats = store->Stats();
  std::printf("store: %zu elements, %zu attributes, %.2f MB, %zu colors\n\n",
              stats.num_elements, stats.num_attributes, stats.data_mbytes,
              stats.num_colors);

  // 5. Colored XPath: all comments under each user in the first color.
  const char* expr = "/(blue)user//(blue)comment";
  auto path = query::ParseMcXPath(expr);
  auto result = query::EvalMcXPath(*path, *store);
  if (!result.ok()) {
    std::fprintf(stderr, "eval error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s -> %zu comments (%zu structural joins, %zu crossings)\n",
              expr, result->elements.size(), result->structural_joins,
              result->color_crossings);
  return 0;
}
