#include "wal/checkpoint.h"

#include <unordered_map>
#include <vector>

namespace mctdb::wal {

using storage::ElemId;
using storage::LabelEntry;

Result<std::unique_ptr<storage::MctStore>> CompactStore(
    const storage::MctStore& src, const storage::StoreOptions& options) {
  const mct::MctSchema& schema = src.schema();
  storage::StoreBuilder builder(&schema, options);
  std::unordered_map<ElemId, ElemId> remap;
  auto map_elem = [&](ElemId old_id) -> ElemId {
    auto it = remap.find(old_id);
    if (it != remap.end()) return it->second;
    const storage::ElementMeta& meta = src.element(old_id);
    ElemId new_id = builder.AddElement(meta.er_node, meta.logical,
                                       meta.is_copy);
    for (const storage::AttrRecord& rec : src.attrs(old_id)) {
      const std::string& name = src.attr_name(rec.name_id);
      // Write the LATEST value through (renames fold into the image).
      const std::string* v = src.AttrValue(old_id, name);
      builder.AddAttr(new_id, name, v != nullptr ? *v : src.value(rec.value_id),
                      rec.has_content);
    }
    remap.emplace(old_id, new_id);
    return new_id;
  };
  for (mct::ColorId c = 0; c < schema.num_colors(); ++c) {
    builder.BeginColor(c);
    // Latest-snapshot pre-order of the color: deleted placements are
    // already gone, inserted ones appear at their merged position.
    std::vector<LabelEntry> entries = src.ColorEntries(c);
    std::vector<LabelEntry> open;
    for (const LabelEntry& e : entries) {
      while (!open.empty() && open.back().end < e.start) {
        builder.Leave(remap.at(open.back().elem));
        open.pop_back();
      }
      builder.Enter(map_elem(e.elem));
      open.push_back(e);
    }
    while (!open.empty()) {
      builder.Leave(remap.at(open.back().elem));
      open.pop_back();
    }
    builder.EndColor();
  }
  return builder.Finish();
}

}  // namespace mctdb::wal
