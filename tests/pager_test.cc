#include "storage/pager.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>

#include "common/failpoint.h"
#include "storage/posting.h"

namespace mctdb::storage {
namespace {

TEST(PagerTest, AllocateWriteRead) {
  Pager pager;
  PageId p = pager.Allocate();
  char buf[kPageSize];
  std::memset(buf, 0x5A, kPageSize);
  pager.Write(p, buf);
  char out[kPageSize];
  ASSERT_TRUE(pager.Read(p, out).ok());
  EXPECT_EQ(std::memcmp(buf, out, kPageSize), 0);
  EXPECT_EQ(pager.num_pages(), 1u);
  EXPECT_EQ(pager.bytes(), kPageSize);
}

TEST(PagerTest, AllocatedPagesAreZeroed) {
  Pager pager;
  PageId p = pager.Allocate();
  char out[kPageSize];
  ASSERT_TRUE(pager.Read(p, out).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(out[i], 0);
}

TEST(PagerTest, CountsDiskIo) {
  Pager pager;
  PageId p = pager.Allocate();
  uint64_t w0 = pager.disk_writes();
  char buf[kPageSize] = {};
  pager.Write(p, buf);
  EXPECT_EQ(pager.disk_writes(), w0 + 1);
  uint64_t r0 = pager.disk_reads();
  char out[kPageSize];
  ASSERT_TRUE(pager.Read(p, out).ok());
  ASSERT_TRUE(pager.Read(p, out).ok());
  EXPECT_EQ(pager.disk_reads(), r0 + 2);
}

TEST(BufferPoolTest, HitAfterMiss) {
  Pager pager;
  PageId p = pager.Allocate();
  BufferPool pool(&pager, 4);
  (void)pool.Fetch(p);  // warm the cache; frame not needed
  EXPECT_EQ(pool.misses(), 1u);
  (void)pool.Fetch(p);  // warm the cache; frame not needed
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pager.disk_reads(), 1u) << "second fetch served from cache";
}

TEST(BufferPoolTest, LruEviction) {
  Pager pager;
  std::vector<PageId> pages;
  for (int i = 0; i < 4; ++i) pages.push_back(pager.Allocate());
  BufferPool pool(&pager, 2);
  (void)pool.Fetch(pages[0]);  // warm the cache; frame not needed
  (void)pool.Fetch(pages[1]);  // warm the cache; frame not needed
  (void)pool.Fetch(pages[0]);  // 0 is now most recent
  (void)pool.Fetch(pages[2]);  // evicts 1
  EXPECT_EQ(pool.resident(), 2u);
  pool.ResetStats();
  (void)pool.Fetch(pages[0]);  // warm the cache; frame not needed
  EXPECT_EQ(pool.hits(), 1u) << "0 must have survived";
  (void)pool.Fetch(pages[1]);  // warm the cache; frame not needed
  EXPECT_EQ(pool.misses(), 1u) << "1 must have been evicted";
}

TEST(BufferPoolTest, CapacityOneThrashesDeterministically) {
  // Eviction boundary: with one frame, alternating between two pages
  // misses every time, and the accounting invariant still holds.
  Pager pager;
  PageId a = pager.Allocate(), b = pager.Allocate();
  BufferPool pool(&pager, 1);
  for (int i = 0; i < 4; ++i) {
    (void)pool.Fetch(a);  // warm the cache; frame not needed
    (void)pool.Fetch(b);  // warm the cache; frame not needed
  }
  EXPECT_EQ(pool.misses(), 8u);
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.resident(), 1u);
  EXPECT_EQ(pool.hits() + pool.misses(), 8u) << "every fetch accounted";
}

TEST(BufferPoolTest, CapacityEqualsWorkingSetMissesOnlyOnce) {
  // The other boundary: capacity == working set means the warmup pass is
  // the only disk traffic; steady state is all hits.
  Pager pager;
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) pages.push_back(pager.Allocate());
  BufferPool pool(&pager, 8);
  for (PageId p : pages) (void)pool.Fetch(p);
  EXPECT_EQ(pool.misses(), 8u);
  uint64_t reads = pager.disk_reads();
  for (int round = 0; round < 3; ++round) {
    for (PageId p : pages) (void)pool.Fetch(p);
  }
  EXPECT_EQ(pool.hits(), 3u * 8u);
  EXPECT_EQ(pool.misses(), 8u);
  EXPECT_EQ(pager.disk_reads(), reads) << "no re-eviction at capacity";
}

TEST(BufferPoolTest, PageContentCorrectAcrossEviction) {
  Pager pager;
  PageId a = pager.Allocate(), b = pager.Allocate();
  char buf[kPageSize];
  std::memset(buf, 1, kPageSize);
  pager.Write(a, buf);
  std::memset(buf, 2, kPageSize);
  pager.Write(b, buf);
  BufferPool pool(&pager, 1);
  EXPECT_EQ(pool.Fetch(a)[0], 1);
  EXPECT_EQ(pool.Fetch(b)[0], 2);
  EXPECT_EQ(pool.Fetch(a)[0], 1);
}

TEST(PostingTest, WriteAndScan) {
  Pager pager;
  PostingWriter writer(&pager);
  const size_t n = 3 * kEntriesPerPage + 17;  // spans 4 pages
  for (uint32_t i = 0; i < n; ++i) {
    LabelEntry e;
    e.elem = i;
    e.start = 2 * i + 1;
    e.end = 2 * i + 2;
    e.level = 3;
    e.logical = i * 10;
    writer.Append(e);
  }
  PostingMeta meta = writer.Finish();
  EXPECT_EQ(meta.count, n);
  EXPECT_EQ(meta.num_pages(), 4u);

  BufferPool pool(&pager, 2);
  PostingCursor cursor(&pool, &meta);
  LabelEntry e;
  uint32_t i = 0;
  while (cursor.Next(&e)) {
    ASSERT_EQ(e.elem, i);
    ASSERT_EQ(e.start, 2 * i + 1);
    ASSERT_EQ(e.logical, i * 10);
    ++i;
  }
  EXPECT_EQ(i, n);
  EXPECT_EQ(pool.misses(), 4u) << "one miss per page on a cold scan";
}

TEST(PostingTest, ReadAllMatchesCursor) {
  Pager pager;
  PostingWriter writer(&pager);
  for (uint32_t i = 0; i < 100; ++i) {
    LabelEntry e;
    e.elem = i;
    e.start = i;
    e.end = 1000 - i;
    writer.Append(e);
  }
  PostingMeta meta = writer.Finish();
  BufferPool pool(&pager, 8);
  auto all = ReadAll(&pool, meta);
  ASSERT_EQ(all.size(), 100u);
  EXPECT_EQ(all[42].elem, 42u);
  EXPECT_EQ(all[42].end, 958u);
}

TEST(PostingTest, EmptyList) {
  Pager pager;
  PostingWriter writer(&pager);
  PostingMeta meta = writer.Finish();
  EXPECT_EQ(meta.count, 0u);
  BufferPool pool(&pager, 2);
  PostingCursor cursor(&pool, &meta);
  LabelEntry e;
  EXPECT_FALSE(cursor.Next(&e));
}

TEST(PagerChecksumTest, CorruptionIsDetectedAndRepairable) {
  Pager pager;
  pager.SetRetryPolicy(RetryPolicy::None());
  PageId p = pager.Allocate();
  char buf[kPageSize];
  std::memset(buf, 0x11, kPageSize);
  pager.Write(p, buf);
  pager.CorruptForTest(p, 1234);
  char out[kPageSize];
  Status s = pager.Read(p, out);
  ASSERT_TRUE(s.IsDataLoss()) << s.ToString();
  EXPECT_GE(pager.checksum_failures(), 1u);
  // Rewriting the page (here: the repair seam) makes it readable again.
  pager.RepairForTest(p);
  EXPECT_TRUE(pager.Read(p, out).ok());
}

TEST(PagerChecksumTest, RewriteAfterCorruptionAlsoHeals) {
  Pager pager;
  pager.SetRetryPolicy(RetryPolicy::None());
  PageId p = pager.Allocate();
  char buf[kPageSize] = {};
  pager.Write(p, buf);
  pager.CorruptForTest(p, 0);
  char out[kPageSize];
  ASSERT_TRUE(pager.Read(p, out).IsDataLoss());
  pager.Write(p, buf);  // a real rewrite records a fresh checksum
  EXPECT_TRUE(pager.Read(p, out).ok());
}

TEST(PagerChecksumTest, ChecksumValueTracksWrites) {
  Pager pager;
  PageId p = pager.Allocate();
  uint64_t zero_sum = pager.PageChecksumValue(p);
  char buf[kPageSize];
  std::memset(buf, 0x42, kPageSize);
  pager.Write(p, buf);
  EXPECT_NE(pager.PageChecksumValue(p), zero_sum);
}

TEST(PagerFailpointTest, InjectedCorruptionSurfacesAsDataLoss) {
  Pager pager;
  pager.SetRetryPolicy(RetryPolicy::None());
  PageId p = pager.Allocate();
  char out[kPageSize];
  failpoint::FailpointGuard guard("pager.read", "err");
  Status s = pager.Read(p, out);
  ASSERT_TRUE(s.IsDataLoss()) << s.ToString();
  EXPECT_GE(pager.checksum_failures(), 1u)
      << "the fault must be caught by the real checksum path";
}

TEST(PagerFailpointTest, TruncateFaultIsAlsoCaught) {
  Pager pager;
  pager.SetRetryPolicy(RetryPolicy::None());
  PageId p = pager.Allocate();
  char buf[kPageSize];
  std::memset(buf, 0x33, kPageSize);
  pager.Write(p, buf);
  char out[kPageSize];
  failpoint::FailpointGuard guard("pager.read", "trunc");
  Status s = pager.Read(p, out);
  ASSERT_TRUE(s.IsDataLoss()) << s.ToString();
}

TEST(PagerFailpointTest, RetryRecoversFromFlakyReads) {
  Pager pager;
  RetryPolicy policy;
  policy.max_attempts = 30;
  policy.initial_backoff = std::chrono::microseconds(1);
  policy.max_backoff = std::chrono::microseconds(10);
  pager.SetRetryPolicy(policy);
  PageId p = pager.Allocate();
  char buf[kPageSize];
  std::memset(buf, 0x77, kPageSize);
  pager.Write(p, buf);
  char out[kPageSize];
  // p=0.5 per attempt, 30 attempts: effectively always recovers.
  failpoint::FailpointGuard guard("pager.read", "err(0.5)");
  uint64_t reads_before = pager.disk_reads();
  ASSERT_TRUE(pager.Read(p, out).ok());
  EXPECT_EQ(std::memcmp(buf, out, kPageSize), 0)
      << "recovered read returns the true bytes";
  EXPECT_EQ(pager.disk_reads(), reads_before + 1)
      << "disk_reads counts calls, not attempts";
}

TEST(BufferPoolTest, ReadFailureLeavesNoFrame) {
  Pager pager;
  pager.SetRetryPolicy(RetryPolicy::None());
  PageId p = pager.Allocate();
  pager.CorruptForTest(p, 7);
  BufferPool pool(&pager, 4);
  const char* frame = nullptr;
  bool miss = false;
  Status s = pool.Fetch(p, &frame, &miss);
  ASSERT_TRUE(s.IsDataLoss()) << s.ToString();
  EXPECT_EQ(frame, nullptr);
  EXPECT_EQ(pool.resident(), 0u) << "no frame cached for a failed read";
  // Repair, refetch: the pool recovers without a restart.
  pager.RepairForTest(p);
  s = pool.Fetch(p, &frame, &miss);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(frame, nullptr);
  EXPECT_TRUE(miss);
}

TEST(PostingTest, CursorLatchesFetchFailure) {
  Pager pager;
  pager.SetRetryPolicy(RetryPolicy::None());
  PostingWriter writer(&pager);
  for (uint32_t i = 0; i < 2 * kEntriesPerPage; ++i) {
    LabelEntry e;
    e.elem = i;
    e.start = 2 * i + 1;
    e.end = 2 * i + 2;
    writer.Append(e);
  }
  PostingMeta meta = writer.Finish();
  ASSERT_EQ(meta.num_pages(), 2u);
  pager.CorruptForTest(meta.pages[1], 99);

  BufferPool pool(&pager, 4);
  PostingCursor cursor(&pool, &meta);
  LabelEntry e;
  uint32_t seen = 0;
  while (cursor.Next(&e)) ++seen;
  EXPECT_EQ(seen, kEntriesPerPage) << "first page scans fine";
  EXPECT_TRUE(cursor.status().IsDataLoss())
      << cursor.status().ToString();
  // The failure is latched: Next stays false, status stays put.
  EXPECT_FALSE(cursor.Next(&e));
  EXPECT_TRUE(cursor.status().IsDataLoss());

  Status read_status;
  auto all = ReadAll(&pool, meta, nullptr, &read_status);
  EXPECT_TRUE(read_status.IsDataLoss());
}

TEST(PostingTest, ContainmentHelper) {
  LabelEntry anc{0, 1, 100, 0, 0, 0};
  LabelEntry desc{1, 5, 50, 1, 0, 0};
  LabelEntry sibling{2, 101, 150, 0, 0, 0};
  EXPECT_TRUE(anc.Contains(desc));
  EXPECT_FALSE(desc.Contains(anc));
  EXPECT_FALSE(anc.Contains(sibling));
  EXPECT_FALSE(anc.Contains(anc));
}

}  // namespace
}  // namespace mctdb::storage
