#include "design/recoverability.h"

#include <functional>

namespace mctdb::design {

namespace {

/// Can we walk `path` starting from occurrence `occ` at node index `i`?
/// Duplicated occurrences (DEEP/UNDR) mean several children can match, hence
/// the recursive search over matches.
bool WalkFrom(const mct::MctSchema& schema, const AssociationPath& path,
              mct::OccId occ, size_t i) {
  if (i == path.edges.size()) return true;
  const mct::SchemaOcc& o = schema.occ(occ);
  for (mct::OccId child_id : o.children) {
    const mct::SchemaOcc& child = schema.occ(child_id);
    if (child.er_node == path.nodes[i + 1] &&
        child.via_edge == path.edges[i] &&
        WalkFrom(schema, path, child_id, i + 1)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool IsPathDirectlyRecoverable(const mct::MctSchema& schema,
                               const AssociationPath& path) {
  for (const mct::SchemaOcc& o : schema.occurrences()) {
    if (o.er_node == path.source && WalkFrom(schema, path, o.id, 0)) {
      return true;
    }
  }
  // A chain realized in the reverse direction also yields a *single* axis
  // step (parent / ancestor instead of child / descendant), which is all
  // direct recoverability asks for (§3.1). This is how a 1:1 association
  // nested one way is still directly recoverable from the other side.
  AssociationPath reversed;
  reversed.source = path.target;
  reversed.target = path.source;
  reversed.nodes.assign(path.nodes.rbegin(), path.nodes.rend());
  reversed.edges.assign(path.edges.rbegin(), path.edges.rend());
  for (const mct::SchemaOcc& o : schema.occurrences()) {
    if (o.er_node == reversed.source && WalkFrom(schema, reversed, o.id, 0)) {
      return true;
    }
  }
  return false;
}

bool IsAssociationRecoverable(const mct::MctSchema& schema,
                              std::vector<er::EdgeId>* missing) {
  std::vector<bool> realized(schema.graph().num_edges(), false);
  for (const mct::SchemaOcc& o : schema.occurrences()) {
    if (!o.is_root()) realized[o.via_edge] = true;
  }
  bool ok = schema.CoversAllNodes();
  for (er::EdgeId e = 0; e < realized.size(); ++e) {
    if (!realized[e]) {
      ok = false;
      if (missing) missing->push_back(e);
    }
  }
  return ok;
}

RecoverabilityReport AnalyzeRecoverability(
    const mct::MctSchema& schema, const std::vector<AssociationPath>& paths,
    size_t max_missing_reported) {
  RecoverabilityReport report;
  report.association_recoverable =
      IsAssociationRecoverable(schema, &report.unrecoverable_edges);
  report.eligible_paths = paths.size();
  for (const AssociationPath& p : paths) {
    if (IsPathDirectlyRecoverable(schema, p)) {
      ++report.directly_recoverable;
    } else if (report.missing_paths.size() < max_missing_reported) {
      report.missing_paths.push_back(p);
    }
  }
  return report;
}

}  // namespace mctdb::design
