#include "storage/store.h"

#include <gtest/gtest.h>

#include "design/algorithm_mc.h"
#include "er/er_catalog.h"

namespace mctdb::storage {
namespace {

/// A tiny 2-color schema over a->r1->b to exercise the builder directly.
struct Fixture {
  er::ErDiagram diagram;
  er::ErGraph graph;
  mct::MctSchema schema;

  Fixture()
      : diagram(Make()), graph(diagram), schema("test", &graph) {
    schema.AddColor();
    schema.AddColor();
  }

  static er::ErDiagram Make() {
    er::ErDiagram d("t");
    auto a = d.AddEntity("a", {{"id", er::AttrType::kString, true},
                               {"name", er::AttrType::kString, false}});
    auto b = d.AddEntity("b", {{"id", er::AttrType::kString, true}});
    EXPECT_TRUE(d.AddOneToMany("r1", a, b).ok());
    return d;
  }
};

TEST(StoreBuilderTest, SharedElementAcrossColors) {
  Fixture f;
  StoreBuilder builder(&f.schema, {});
  ElemId a0 = builder.AddElement(0, 0, false);
  builder.AddAttr(a0, "id", "a_0", false);
  builder.AddAttr(a0, "name", "Japan", true);

  builder.BeginColor(0);
  builder.Enter(a0);
  builder.Leave(a0);
  builder.EndColor();
  builder.BeginColor(1);
  builder.Enter(a0);
  builder.Leave(a0);
  builder.EndColor();

  auto store = builder.Finish();
  EXPECT_EQ(store->num_elements(), 1u) << "stored once, two colors";
  LabelEntry l0, l1;
  EXPECT_TRUE(store->Label(0, a0, &l0));
  EXPECT_TRUE(store->Label(1, a0, &l1));
  StoreStats st = store->Stats();
  EXPECT_EQ(st.num_elements, 1u);
  EXPECT_EQ(st.num_attributes, 2u);
  EXPECT_EQ(st.num_content_nodes, 1u) << "keys have no content node";
}

TEST(StoreBuilderTest, LabelsNestProperly) {
  Fixture f;
  StoreBuilder builder(&f.schema, {});
  ElemId a0 = builder.AddElement(0, 0, false);
  ElemId r0 = builder.AddElement(2, 0, false);
  ElemId b0 = builder.AddElement(1, 0, false);
  ElemId b1 = builder.AddElement(1, 1, false);

  builder.BeginColor(0);
  builder.Enter(a0);
  builder.Enter(r0);
  builder.Enter(b0);
  builder.Leave(b0);
  builder.Leave(r0);
  builder.Leave(a0);
  builder.Enter(b1);  // second tree in the forest
  builder.Leave(b1);
  builder.EndColor();
  builder.BeginColor(1);
  builder.EndColor();
  auto store = builder.Finish();

  LabelEntry la, lr, lb, lb1;
  ASSERT_TRUE(store->Label(0, a0, &la));
  ASSERT_TRUE(store->Label(0, r0, &lr));
  ASSERT_TRUE(store->Label(0, b0, &lb));
  ASSERT_TRUE(store->Label(0, b1, &lb1));
  EXPECT_TRUE(la.Contains(lr));
  EXPECT_TRUE(la.Contains(lb));
  EXPECT_TRUE(lr.Contains(lb));
  EXPECT_FALSE(la.Contains(lb1)) << "separate trees are disjoint intervals";
  EXPECT_EQ(la.level, 0);
  EXPECT_EQ(lr.level, 1);
  EXPECT_EQ(lb.level, 2);
  EXPECT_EQ(store->Parent(0, b0), r0);
  EXPECT_EQ(store->Parent(0, r0), a0);
  EXPECT_EQ(store->Parent(0, a0), kInvalidElem);
  EXPECT_FALSE(store->Label(1, a0, &la)) << "absent from color 1";
}

TEST(StoreBuilderTest, PostingsInDocumentOrderPerTag) {
  Fixture f;
  StoreBuilder builder(&f.schema, {});
  std::vector<ElemId> bs;
  ElemId a0 = builder.AddElement(0, 0, false);
  for (uint32_t i = 0; i < 5; ++i) bs.push_back(builder.AddElement(1, i, false));
  builder.BeginColor(0);
  builder.Enter(a0);
  for (ElemId b : bs) {
    builder.Enter(b);
    builder.Leave(b);
  }
  builder.Leave(a0);
  builder.EndColor();
  builder.BeginColor(1);
  builder.EndColor();
  auto store = builder.Finish();

  const PostingMeta* meta = store->Posting(0, 1);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->count, 5u);
  auto entries = ReadAll(store->buffer_pool(), *meta);
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].start, entries[i].start);
  }
  EXPECT_EQ(store->Posting(0, 99), nullptr);
  EXPECT_EQ(store->Posting(1, 1), nullptr);
}

TEST(StoreBuilderTest, KeyIndexFindsCopies) {
  Fixture f;
  StoreBuilder builder(&f.schema, {});
  ElemId orig = builder.AddElement(1, 7, false);
  ElemId copy = builder.AddElement(1, 7, true);
  builder.BeginColor(0);
  builder.Enter(orig);
  builder.Leave(orig);
  builder.Enter(copy);
  builder.Leave(copy);
  builder.EndColor();
  builder.BeginColor(1);
  builder.EndColor();
  auto store = builder.Finish();
  auto elems = store->ElementsFor(1, 7);
  EXPECT_EQ(elems.size(), 2u);
  EXPECT_FALSE(store->element(orig).is_copy);
  EXPECT_TRUE(store->element(copy).is_copy);
  EXPECT_TRUE(store->ElementsFor(1, 99).empty());
}

TEST(StoreTest, AttrLookupAndUpdate) {
  Fixture f;
  StoreBuilder builder(&f.schema, {});
  ElemId a0 = builder.AddElement(0, 0, false);
  builder.AddAttr(a0, "name", "Japan", true);
  builder.BeginColor(0);
  builder.Enter(a0);
  builder.Leave(a0);
  builder.EndColor();
  builder.BeginColor(1);
  builder.EndColor();
  auto store = builder.Finish();

  const std::string* v = store->AttrValue(a0, "name");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, "Japan");
  EXPECT_EQ(store->AttrValue(a0, "missing"), nullptr);

  uint32_t name_id = store->FindAttrName("name");
  ASSERT_NE(name_id, UINT32_MAX);
  uint64_t w0 = store->update_page_writes();
  store->UpdateAttrValue(a0, name_id, "Peru");
  EXPECT_EQ(*store->AttrValue(a0, "name"), "Peru");
  EXPECT_EQ(store->update_page_writes(), w0 + 1);
}

TEST(StoreTest, StatsBytesGrowWithData) {
  Fixture f;
  StoreBuilder small_builder(&f.schema, {});
  ElemId e = small_builder.AddElement(0, 0, false);
  small_builder.BeginColor(0);
  small_builder.Enter(e);
  small_builder.Leave(e);
  small_builder.EndColor();
  small_builder.BeginColor(1);
  small_builder.EndColor();
  auto small = small_builder.Finish();

  StoreBuilder big_builder(&f.schema, {});
  std::vector<ElemId> elems;
  for (uint32_t i = 0; i < 5000; ++i) {
    ElemId x = big_builder.AddElement(1, i, false);
    big_builder.AddAttr(x, "id", "b_" + std::to_string(i), false);
    elems.push_back(x);
  }
  big_builder.BeginColor(0);
  for (ElemId x : elems) {
    big_builder.Enter(x);
    big_builder.Leave(x);
  }
  big_builder.EndColor();
  big_builder.BeginColor(1);
  big_builder.EndColor();
  auto big = big_builder.Finish();

  EXPECT_GT(big->Stats().data_mbytes, small->Stats().data_mbytes);
  EXPECT_EQ(big->Stats().num_elements, 5000u);
}

}  // namespace
}  // namespace mctdb::storage
