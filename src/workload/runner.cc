#include "workload/runner.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "analysis/plan_verify.h"
#include "common/logging.h"
#include "query/planner.h"
#include "query/update_exec.h"
#include "service/query_service.h"
#include "wal/durable_store.h"
#include "workload/update_gen.h"

namespace mctdb::workload {

namespace {

Measurement MakeMeasurement(const std::string& schema,
                            const std::string& name,
                            const query::AssociationQuery& q,
                            const query::PlanStats& plan_stats,
                            std::vector<double> times,
                            const query::ExecResult& last) {
  Measurement m;
  m.schema = schema;
  m.query = name;
  m.plan = plan_stats;
  m.seconds = MedianSeconds(std::move(times));
  m.unique_results = q.is_update() ? last.logicals_updated : last.unique_count;
  m.raw_results = q.is_update() ? last.elements_updated : last.raw_count;
  m.elements_updated = last.elements_updated;
  m.page_misses = last.page_misses;
  m.page_hits = last.page_hits;
  m.join_pairs = last.join_pairs;
  m.stages = obs::AggregateByStage(last.trace);
  return m;
}

/// Shared admission check of both grid paths: statically verify the plan
/// before executing it, so a malformed plan becomes a problem row instead
/// of a crashed worker, with an identical message either way.
bool VerifyPlanOrReport(const query::QueryPlan& plan,
                        const std::string& name, const std::string& schema,
                        std::vector<std::string>* problems) {
  analysis::DiagnosticReport report = analysis::VerifyPlan(plan);
  if (!report.has_errors()) return true;
  problems->push_back(name + " on " + schema +
                      ": plan verification failed:\n" + report.ToText());
  return false;
}

/// Record `last` for the equivalence check: the first schema to report a
/// query becomes the reference, later schemas must match it logically.
void CheckEquivalence(const RunnerOptions& options,
                      const query::AssociationQuery& q,
                      const std::string& name, const std::string& schema,
                      const query::ExecResult& last,
                      std::map<std::string, std::vector<uint32_t>>* reference,
                      std::vector<std::string>* problems) {
  if (!options.check_equivalence || q.is_update()) return;
  auto [it, inserted] = reference->emplace(name, last.logicals);
  if (!inserted && it->second != last.logicals) {
    problems->push_back("equivalence violation: " + name + " on " + schema);
  }
}

/// Per-(schema, kind) rollup of the update ops applied during the grid.
struct UpdateAgg {
  std::vector<double> times;
  uint64_t wal_appends = 0;
  uint64_t wal_fsyncs = 0;
  size_t elements = 0;
  query::ExecResult last;  // unused fields stay zero for update rows
};

/// Applies ops[*next .. prefix) on schema i's durable store, rolling each
/// kind into its aggregate row. Apply failures become problem rows.
void ApplyOpsUpTo(const std::vector<storage::UpdateOp>& ops, size_t prefix,
                  const std::string& schema, wal::DurableStore* durable,
                  size_t* next, std::map<std::string, UpdateAgg>* agg,
                  std::vector<std::string>* problems) {
  while (*next < prefix) {
    const storage::UpdateOp& op = ops[*next];
    ++*next;
    query::UpdateExecutor exec(durable);
    auto result = exec.Execute(op);
    const char* kind = storage::UpdateKindName(op.kind);
    if (!result.ok()) {
      problems->push_back(std::string(kind) + " on " + schema + ": " +
                          result.status().ToString());
      continue;
    }
    UpdateAgg& row = (*agg)[kind];
    row.times.push_back(result->elapsed_seconds);
    row.wal_appends += result->wal_appends;
    row.wal_fsyncs += result->wal_fsyncs;
    row.elements += result->stats.elements_touched;
  }
}

/// The classic single-threaded grid loop over the stores' own pools. When
/// `durables` is non-empty, the deterministic op stream `ops` is
/// interleaved at identical grid positions on every schema.
void RunGridSerial(const Workload& workload, const RunnerOptions& options,
                   const std::vector<mct::MctSchema>& schemas,
                   const std::vector<storage::MctStore*>& stores,
                   const std::vector<wal::DurableStore*>& durables,
                   const std::vector<storage::UpdateOp>& ops,
                   RunSummary* summary) {
  const size_t num_queries =
      std::max<size_t>(1, workload.figure_queries.size());
  std::map<std::string, std::vector<uint32_t>> reference;
  for (size_t i = 0; i < schemas.size(); ++i) {
    std::map<std::string, UpdateAgg> update_rows;
    size_t next_op = 0;
    size_t query_index = 0;
    for (const std::string& name : workload.figure_queries) {
      if (!durables.empty()) {
        // Same op prefix before query #qi on every schema, so the
        // mid-grid equivalence checks compare identical logical states.
        ApplyOpsUpTo(ops, ops.size() * query_index / num_queries,
                     schemas[i].name(), durables[i], &next_op,
                     &update_rows, &summary->problems);
      }
      ++query_index;
      const query::AssociationQuery* q = workload.Find(name);
      if (q == nullptr) {
        summary->problems.push_back("unknown figure query " + name);
        continue;
      }
      auto plan = query::PlanQuery(*q, schemas[i]);
      if (!plan.ok()) {
        summary->problems.push_back(name + " on " + schemas[i].name() +
                                    ": " + plan.status().ToString());
        continue;
      }
      if (!VerifyPlanOrReport(*plan, name, schemas[i].name(),
                              &summary->problems)) {
        continue;
      }
      query::Executor exec(stores[i]);
      exec.set_snapshot(stores[i]->versioned() ? stores[i]->visible_lsn()
                                               : kMaxLsn);
      std::vector<double> times;
      query::ExecResult last;
      bool failed = false;
      for (size_t rep = 0; rep < std::max<size_t>(1, options.repetitions);
           ++rep) {
        auto result = exec.Execute(*plan);
        if (!result.ok()) {
          summary->problems.push_back(name + " on " + schemas[i].name() +
                                      ": " + result.status().ToString());
          failed = true;
          break;
        }
        times.push_back(result->elapsed_seconds);
        last = *result;
      }
      if (failed) continue;
      summary->measurements.push_back(MakeMeasurement(
          schemas[i].name(), name, *q, plan->Stats(), std::move(times),
          last));
      CheckEquivalence(options, *q, name, schemas[i].name(), last,
                       &reference, &summary->problems);
    }
    if (!durables.empty()) {
      ApplyOpsUpTo(ops, ops.size(), schemas[i].name(), durables[i],
                   &next_op, &update_rows, &summary->problems);
      for (auto& [kind, row] : update_rows) {
        if (row.times.empty()) continue;
        Measurement m;
        m.schema = schemas[i].name();
        m.query = kind;
        m.seconds = MedianSeconds(std::move(row.times));
        m.elements_updated = row.elements;
        m.wal_appends = row.wal_appends;
        m.wal_fsyncs = row.wal_fsyncs;
        summary->measurements.push_back(std::move(m));
      }
    }
  }
  if (durables.empty() || !options.check_equivalence) return;
  // Post-update equivalence: every schema applied the same op stream, so
  // the updated stores must still agree on every read query.
  std::map<std::string, std::vector<uint32_t>> post_reference;
  for (size_t i = 0; i < schemas.size(); ++i) {
    for (const std::string& name : workload.figure_queries) {
      const query::AssociationQuery* q = workload.Find(name);
      if (q == nullptr || q->is_update()) continue;
      auto plan = query::PlanQuery(*q, schemas[i]);
      if (!plan.ok()) continue;  // already reported in the grid pass
      query::Executor exec(stores[i]);
      exec.set_snapshot(stores[i]->visible_lsn());
      auto result = exec.Execute(*plan);
      if (!result.ok()) {
        summary->problems.push_back("post-update " + name + " on " +
                                    schemas[i].name() + ": " +
                                    result.status().ToString());
        continue;
      }
      auto [it, inserted] = post_reference.emplace(name, result->logicals);
      if (!inserted && it->second != result->logicals) {
        summary->problems.push_back("post-update equivalence violation: " +
                                    name + " on " + schemas[i].name());
      }
    }
  }
}

/// Fans the grid through an mctsvc::QueryService: one session per schema
/// keeps each store's query-and-update sequence in serial order (so
/// results, including update side effects and page-miss counts on an
/// unpressured pool, match the serial run), while schemas proceed in
/// parallel on the worker pool.
void RunGridParallel(const Workload& workload, const RunnerOptions& options,
                     const std::vector<mct::MctSchema>& schemas,
                     const std::vector<storage::MctStore*>& stores,
                     RunSummary* summary) {
  const size_t reps = std::max<size_t>(1, options.repetitions);

  mctsvc::ServiceOptions sopts;
  sopts.num_threads = options.num_threads;
  sopts.pool_pages = options.store.buffer_pool_pages;
  // The whole grid is staged up front; size the admission window for it.
  sopts.max_queued =
      schemas.size() * workload.figure_queries.size() * reps + 1;
  mctsvc::QueryService service(sopts);

  std::vector<std::shared_ptr<mctsvc::QueryService::Session>> sessions;
  for (size_t i = 0; i < schemas.size(); ++i) {
    Status added = service.AddStore(schemas[i].name(), stores[i]);
    MCTDB_CHECK_MSG(added.ok(), added.ToString().c_str());
    auto session = service.OpenSession(schemas[i].name());
    MCTDB_CHECK_MSG(session.ok(), session.status().ToString().c_str());
    sessions.push_back(*session);
  }

  struct Cell {
    const query::AssociationQuery* q = nullptr;
    std::string name;
    std::optional<query::QueryPlan> plan;
    std::vector<mctsvc::QueryFuture> rep_futures;
  };
  std::vector<std::vector<Cell>> grid(schemas.size());

  // Planning phase: plan every cell into the grid (planning problems
  // recorded in the same schema-major order as the serial loop). Nothing
  // is submitted yet: the service keeps a pointer to each plan, so all
  // cells must reach their final addresses first.
  for (size_t i = 0; i < schemas.size(); ++i) {
    for (const std::string& name : workload.figure_queries) {
      Cell cell;
      cell.name = name;
      cell.q = workload.Find(name);
      if (cell.q == nullptr) {
        summary->problems.push_back("unknown figure query " + name);
        grid[i].push_back(std::move(cell));
        continue;
      }
      auto plan = query::PlanQuery(*cell.q, schemas[i]);
      if (!plan.ok()) {
        summary->problems.push_back(name + " on " + schemas[i].name() +
                                    ": " + plan.status().ToString());
        cell.q = nullptr;
        grid[i].push_back(std::move(cell));
        continue;
      }
      if (!VerifyPlanOrReport(*plan, name, schemas[i].name(),
                              &summary->problems)) {
        cell.q = nullptr;
        grid[i].push_back(std::move(cell));
        continue;
      }
      cell.plan = std::move(*plan);
      grid[i].push_back(std::move(cell));
    }
  }

  // Submission phase: stage every cell's repetitions on its schema's
  // session. The grid is fully built, so plan addresses are stable for the
  // lifetime of the in-flight requests.
  for (size_t i = 0; i < schemas.size(); ++i) {
    for (Cell& cell : grid[i]) {
      if (cell.q == nullptr) continue;
      for (size_t rep = 0; rep < reps; ++rep) {
        // kHigh: the runner sized max_queued to hold the whole batch and
        // has no interactive traffic to protect, so the load-shedding
        // watermarks must not apply to its own staged submissions.
        auto future =
            sessions[i]->Submit(*cell.plan, 0.0, mctsvc::Priority::kHigh);
        MCTDB_CHECK_MSG(future.ok(), future.status().ToString().c_str());
        cell.rep_futures.push_back(std::move(*future));
      }
    }
  }

  // Gather phase, schema-major like the serial loop, so measurements,
  // equivalence references, and problem ordering come out identical.
  std::map<std::string, std::vector<uint32_t>> reference;
  for (size_t i = 0; i < schemas.size(); ++i) {
    for (Cell& cell : grid[i]) {
      if (cell.q == nullptr) continue;
      std::vector<double> times;
      query::ExecResult last;
      bool failed = false;
      for (auto& future : cell.rep_futures) {
        auto result = future.get();
        if (!result.ok()) {
          summary->problems.push_back(cell.name + " on " +
                                      schemas[i].name() + ": " +
                                      result.status().ToString());
          failed = true;
          break;
        }
        times.push_back(result->elapsed_seconds);
        last = std::move(*result);
      }
      if (failed) continue;
      summary->measurements.push_back(MakeMeasurement(
          schemas[i].name(), cell.name, *cell.q, cell.plan->Stats(),
          std::move(times), last));
      CheckEquivalence(options, *cell.q, cell.name, schemas[i].name(), last,
                       &reference, &summary->problems);
    }
  }
}

}  // namespace

double MedianSeconds(std::vector<double> times) {
  MCTDB_CHECK(!times.empty());
  std::sort(times.begin(), times.end());
  size_t mid = times.size() / 2;
  if (times.size() % 2 == 1) return times[mid];
  return (times[mid - 1] + times[mid]) / 2.0;
}

const Measurement* RunSummary::Find(const std::string& schema,
                                    const std::string& query) const {
  for (const Measurement& m : measurements) {
    if (m.schema == schema && m.query == query) return &m;
  }
  return nullptr;
}

Result<RunSummary> RunWorkload(const Workload& workload,
                               const RunnerOptions& options) {
  RunSummary summary;
  auto setup_start = std::chrono::steady_clock::now();
  er::ErGraph graph(workload.diagram);
  design::Designer designer(graph);
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, workload.gen);

  std::vector<mct::MctSchema> schemas;
  std::vector<std::unique_ptr<storage::MctStore>> stores;
  for (design::Strategy s : options.strategies) {
    schemas.push_back(designer.Design(s));
  }
  for (mct::MctSchema& schema : schemas) {
    instance::MaterializeOptions mat;
    mat.store = options.store;
    stores.push_back(instance::Materialize(logical, schema, mat));
    summary.storage.emplace_back(schema.name(), stores.back()->Stats());
  }

  // Update mode: wrap every store in an ephemeral WAL-backed durable
  // store (in-memory log, full group-commit/versioning semantics) and
  // generate one op stream all schemas share.
  std::vector<std::unique_ptr<wal::DurableStore>> owned_durables;
  std::vector<wal::DurableStore*> durables;
  std::vector<storage::UpdateOp> ops;
  std::vector<storage::MctStore*> raw_stores;
  if (options.update_fraction > 0) {
    UpdateGenOptions gen;
    gen.num_ops = std::max<size_t>(
        1, static_cast<size_t>(options.update_fraction *
                               double(workload.figure_queries.size()) +
                               0.5));
    ops = GenerateUpdateOps(schemas, logical, gen);
    for (auto& store : stores) {
      auto durable = wal::DurableStore::Ephemeral(std::move(store));
      MCTDB_CHECK_MSG(durable.ok(), durable.status().ToString().c_str());
      owned_durables.push_back(std::move(*durable));
      durables.push_back(owned_durables.back().get());
      raw_stores.push_back(owned_durables.back()->store());
    }
  } else {
    for (auto& store : stores) raw_stores.push_back(store.get());
  }

  auto grid_start = std::chrono::steady_clock::now();
  summary.setup_seconds =
      std::chrono::duration<double>(grid_start - setup_start).count();

  if (options.num_threads > 1 && durables.empty()) {
    RunGridParallel(workload, options, schemas, raw_stores, &summary);
  } else {
    // Update mode always runs serial: the op stream must hit identical
    // grid positions on every schema for mid-run equivalence to hold.
    RunGridSerial(workload, options, schemas, raw_stores, durables, ops,
                  &summary);
  }
  summary.grid_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    grid_start)
          .count();
  return summary;
}

}  // namespace mctdb::workload
