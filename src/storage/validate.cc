#include "storage/validate.h"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/schema_lint.h"
#include "common/string_util.h"

namespace mctdb::storage {

namespace {

using analysis::DiagnosticReport;

class Validator {
 public:
  Validator(const MctStore& store, const ValidateOptions& options,
            DiagnosticReport* report)
      : store_(store), options_(options), report_(report) {}

  void Run() {
    for (mct::ColorId c = 0; c < store_.schema().num_colors(); ++c) {
      CheckColorForest(c);
      CheckPostings(c);
    }
    CheckKeyIndex();
    CheckIcics();
    if (options_.check_idrefs) CheckIdrefs();
  }

 private:
  void CheckColorForest(mct::ColorId c) {
    auto entries = store_.ColorEntries(c);
    std::vector<LabelEntry> stack;
    for (const LabelEntry& e : entries) {
      std::string loc = StringPrintf("color %u elem %u", c, e.elem);
      if (e.start >= e.end) {
        report_->Error("STO001", loc,
                       StringPrintf("degenerate interval [%u, %u)", e.start,
                                    e.end));
        continue;
      }
      while (!stack.empty() && stack.back().end < e.start) stack.pop_back();
      // No partial overlap: the open top must fully contain e or be closed.
      if (!stack.empty() && stack.back().end < e.end) {
        report_->Error(
            "STO002", loc,
            StringPrintf("interval overlaps elem %u", stack.back().elem));
      }
      uint16_t expect_level = static_cast<uint16_t>(stack.size());
      if (e.level != expect_level) {
        report_->Error("STO003", loc,
                       StringPrintf("level %u, expected %u", e.level,
                                    expect_level));
      }
      ElemId expect_parent =
          stack.empty() ? kInvalidElem : stack.back().elem;
      if (store_.Parent(c, e.elem) != expect_parent) {
        report_->Error("STO004", loc, "parent pointer mismatch");
      }
      stack.push_back(e);
    }
  }

  void CheckPostings(mct::ColorId c) {
    const er::ErDiagram& diagram = store_.schema().diagram();
    for (er::NodeId tag = 0; tag < diagram.num_nodes(); ++tag) {
      const PostingMeta* meta = store_.Posting(c, tag);
      if (meta == nullptr) continue;
      std::string loc =
          StringPrintf("color %u tag %s", c, diagram.node(tag).name.c_str());
      Status read_status;
      auto entries = ReadAll(store_.buffer_pool(), *meta, nullptr,
                             &read_status);
      if (!read_status.ok()) {
        report_->Error("STO012", loc,
                       StringPrintf("posting unreadable: %s",
                                    read_status.ToString().c_str()));
        continue;
      }
      uint32_t prev_start = 0;
      for (const LabelEntry& e : entries) {
        if (e.start <= prev_start) {
          report_->Error("STO005", loc,
                         StringPrintf("posting out of order at elem %u",
                                      e.elem));
        }
        prev_start = e.start;
        if (e.elem >= store_.num_elements() ||
            store_.element(e.elem).er_node != tag) {
          report_->Error("STO006", loc,
                         StringPrintf("entry for wrong element %u", e.elem));
          // Without a valid element the label cross-check is meaningless.
          continue;
        }
        LabelEntry label;
        if (!store_.Label(c, e.elem, &label) || label.start != e.start ||
            label.end != e.end) {
          report_->Error(
              "STO007", loc,
              StringPrintf("posting/label disagreement for elem %u",
                           e.elem));
        }
      }
    }
  }

  void CheckKeyIndex() {
    for (ElemId e = 0; e < store_.num_elements(); ++e) {
      const ElementMeta& meta = store_.element(e);
      auto elems = store_.ElementsFor(meta.er_node, meta.logical);
      if (std::find(elems.begin(), elems.end(), e) == elems.end()) {
        report_->Error("STO008", StringPrintf("elem %u", e),
                       "missing from key index");
      }
    }
  }

  /// Logical parent-child pairs realized via each ER edge, per color.
  using PairSet = std::set<std::pair<uint32_t, uint32_t>>;

  void CheckIcics() {
    const mct::MctSchema& schema = store_.schema();
    auto icics = schema.ComputeIcics();
    if (icics.empty()) return;
    // Collect realized pairs per (edge, color). The ER edge between two
    // adjacent er nodes is unique, so (parent tag, child tag) determines
    // it.
    std::map<er::EdgeId, std::map<mct::ColorId, PairSet>> realized;
    std::set<er::EdgeId> constrained;
    for (const mct::Icic& icic : icics) constrained.insert(icic.er_edge);

    const er::ErGraph& graph = schema.graph();
    for (mct::ColorId c = 0; c < schema.num_colors(); ++c) {
      for (const LabelEntry& e : store_.ColorEntries(c)) {
        ElemId parent = store_.Parent(c, e.elem);
        if (parent == kInvalidElem) continue;
        const ElementMeta& cm = store_.element(e.elem);
        const ElementMeta& pm = store_.element(parent);
        // Find the ER edge between the two node types. Canonicalize the
        // pair as (endpoint logical, relationship logical): a 1:1 edge may
        // be realized with either side as the structural parent in
        // different colors, and that is the same association.
        for (er::EdgeId eid : graph.incident(cm.er_node)) {
          const er::ErEdge& edge_meta = graph.edge(eid);
          if (edge_meta.other(cm.er_node) != pm.er_node) continue;
          if (!constrained.count(eid)) break;
          uint32_t rel_logical =
              pm.er_node == edge_meta.rel ? pm.logical : cm.logical;
          uint32_t node_logical =
              pm.er_node == edge_meta.rel ? cm.logical : pm.logical;
          realized[eid][c].insert({node_logical, rel_logical});
          break;
        }
      }
    }
    const er::ErDiagram& diagram = schema.diagram();
    for (const auto& [edge, by_color] : realized) {
      std::string loc = StringPrintf(
          "edge %s--%s", diagram.node(graph.edge(edge).rel).name.c_str(),
          diagram.node(graph.edge(edge).node).name.c_str());
      // Complete realizations = the maximal sets; all must be identical,
      // and partial (graft) realizations must be subsets.
      size_t max_size = 0;
      for (const auto& [c, pairs] : by_color) {
        max_size = std::max(max_size, pairs.size());
      }
      const PairSet* full = nullptr;
      for (const auto& [c, pairs] : by_color) {
        if (pairs.size() != max_size) continue;
        if (full == nullptr) {
          full = &pairs;
        } else if (pairs != *full) {
          report_->Error("STO009", loc,
                         StringPrintf("ICIC violation: complete "
                                      "realizations disagree (color %u)",
                                      c));
        }
      }
      for (const auto& [c, pairs] : by_color) {
        if (pairs.size() == max_size || full == nullptr) continue;
        for (const auto& pair : pairs) {
          if (!full->count(pair)) {
            report_->Error(
                "STO009", loc,
                StringPrintf("ICIC violation: color %u asserts a pair "
                             "absent from the complete realization",
                             c));
            break;
          }
        }
      }
    }
  }

  void CheckIdrefs() {
    const er::ErDiagram& diagram = store_.schema().diagram();
    // Key values per node type.
    std::map<er::NodeId, std::set<std::string>> keys;
    for (ElemId e = 0; e < store_.num_elements(); ++e) {
      const ElementMeta& meta = store_.element(e);
      const er::ErNode& node = diagram.node(meta.er_node);
      for (size_t a = 0; a < node.attributes.size(); ++a) {
        if (!node.attributes[a].is_key) continue;
        const std::string* v =
            store_.AttrValue(e, node.attributes[a].name);
        if (v != nullptr) keys[meta.er_node].insert(*v);
      }
    }
    for (const mct::RefEdge& ref : store_.schema().ref_edges()) {
      er::NodeId holder = store_.schema().occ(ref.from).er_node;
      for (ElemId e = 0; e < store_.num_elements(); ++e) {
        if (store_.element(e).er_node != holder) continue;
        const std::string* v = store_.AttrValue(e, ref.attr_name);
        if (v == nullptr) {
          report_->Error("STO010", StringPrintf("elem %u", e),
                         StringPrintf("missing idref %s",
                                      ref.attr_name.c_str()));
          continue;
        }
        if (!keys[ref.target].count(*v)) {
          report_->Error("STO011", StringPrintf("elem %u", e),
                         StringPrintf("dangling idref %s='%s'",
                                      ref.attr_name.c_str(), v->c_str()));
        }
      }
    }
  }

  const MctStore& store_;
  const ValidateOptions& options_;
  DiagnosticReport* report_;
};

}  // namespace

analysis::DiagnosticReport ValidateStore(const MctStore& store,
                                         const ValidateOptions& options) {
  DiagnosticReport report(options.max_diagnostics);
  if (options.lint_schema) {
    // Schema-level invariants are the lint pass's responsibility; run it
    // once here so ValidateStore callers get one combined report.
    report.MergeFrom(analysis::LintSchema(store.schema()), "schema");
  }
  Validator validator(store, options, &report);
  validator.Run();
  return report;
}

}  // namespace mctdb::storage
