// Algorithm DUMC (paper §5.2): the disjoint union of Algorithm MC runs,
// yielding an MCT schema that satisfies node normal form, association
// recoverability, AND complete direct recoverability (Theorem 5.2) — at the
// cost of edge normal form, and without a color-minimality guarantee (the
// paper's explicit caveat).
//
// Concretely: different MC runs differ in start nodes and in the orientation
// chosen for 1:1 edges, and together realize every eligible association
// path. We make "enough runs" constructive: start from one MC run (AR and
// every single-edge path), then greedily open colors and pack still-missing
// eligible paths (longest first) into each, each color being an
// MC-compatible forest (node normal, traversable links). Every eligible
// path packs into an empty color, so the loop always progresses and
// terminates with complete DR.
#pragma once

#include <string>

#include "er/er_graph.h"
#include "mct/mct_schema.h"

namespace mctdb::design {

struct DumcOptions {
  /// Cap on eligible-path enumeration (see EnumerateOptions); with the cap
  /// hit, DR completeness is relative to the enumerated set.
  size_t max_paths = 200000;
  size_t max_path_length = 16;
  /// Color-frugality post-pass (§3.3): drop every color whose removal
  /// keeps the schema AR and completely DR (greedy, last color first).
  /// This is what lands TPC-W on the paper's 5 colors.
  bool reduce_colors = true;
};

mct::MctSchema AlgorithmDumc(const er::ErGraph& graph,
                             std::string schema_name = "DR",
                             const DumcOptions& options = {});

}  // namespace mctdb::design
