file(REMOVE_RECURSE
  "CMakeFiles/xml_export_test.dir/xml_export_test.cc.o"
  "CMakeFiles/xml_export_test.dir/xml_export_test.cc.o.d"
  "xml_export_test"
  "xml_export_test.pdb"
  "xml_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
