#include "wal/wal_lint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "wal/durable_store.h"
#include "wal/log_writer.h"
#include "wal/wal_format.h"

namespace mctdb::wal {
namespace {

constexpr uint64_t kFp = 0xABCDEF0123456789ull;

std::string StorePath(const char* name) {
  // Fresh log per run: LogWriter::Open appends to an existing file, so a
  // leftover WAL from a previous run would change the linted counts.
  std::string path = testing::TempDir() + "/" + name;
  std::remove((path + ".wal").c_str());
  return path;
}

void AppendBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void CorruptByte(const std::string& path, size_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(c ^ 0x5A));
}

/// Writes a WAL with `records` committed records next to `store_path`.
void MakeLog(const std::string& store_path, int records,
             Lsn checkpoint_lsn = kNoLsn) {
  auto writer = LogWriter::Open(DurableStore::WalPath(store_path), kFp,
                                checkpoint_lsn, checkpoint_lsn);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (int i = 0; i < records; ++i) {
    ASSERT_TRUE((*writer)->Append(RecordType::kUpdateOp, "oppayload").ok());
  }
  if (records > 0) {
    ASSERT_TRUE((*writer)->Commit((*writer)->durable_lsn() + records).ok());
  }
}

std::vector<std::string> Codes(const analysis::DiagnosticReport& report) {
  std::vector<std::string> codes;
  for (const analysis::Diagnostic& d : report.diagnostics()) {
    codes.push_back(d.code);
  }
  return codes;
}

TEST(WalLintTest, MissingLogIsClean) {
  analysis::DiagnosticReport report;
  EXPECT_EQ(LintWal(StorePath("no_such_store"), {}, &report), 0u);
  EXPECT_TRUE(report.empty());
}

TEST(WalLintTest, CheckpointedEmptyLogIsClean) {
  std::string store = StorePath("clean_store");
  MakeLog(store, 0, /*checkpoint_lsn=*/5);
  analysis::DiagnosticReport report;
  EXPECT_EQ(LintWal(store, {}, &report), 0u);
  EXPECT_TRUE(report.empty());
}

TEST(WalLintTest, UncommittedTailWarnsWal001) {
  std::string store = StorePath("unclean_store");
  MakeLog(store, 3);
  analysis::DiagnosticReport report;
  EXPECT_EQ(LintWal(store, {}, &report), 1u);
  ASSERT_EQ(Codes(report), std::vector<std::string>{"WAL001"});
  EXPECT_FALSE(report.has_errors());  // a warning: recovery handles it
  EXPECT_NE(report.diagnostics()[0].message.find("3 update record"),
            std::string::npos);
}

TEST(WalLintTest, TornTailWarnsWal002) {
  std::string store = StorePath("torn_store");
  MakeLog(store, 2);
  AppendBytes(DurableStore::WalPath(store), "half-a-record");
  analysis::DiagnosticReport report;
  LintWal(store, {}, &report);
  auto codes = Codes(report);
  EXPECT_EQ(codes, (std::vector<std::string>{"WAL001", "WAL002"}));
  EXPECT_FALSE(report.has_errors());
}

TEST(WalLintTest, CorruptHeaderWarnsWal003) {
  std::string store = StorePath("bad_header_store");
  MakeLog(store, 2);
  CorruptByte(DurableStore::WalPath(store), kWalHeaderSize - 2);
  analysis::DiagnosticReport report;
  EXPECT_EQ(LintWal(store, {}, &report), 1u);
  EXPECT_EQ(Codes(report), std::vector<std::string>{"WAL003"});
}

TEST(WalLintTest, OversizedCheckpointlessLogIsWal004Error) {
  std::string store = StorePath("big_store");
  MakeLog(store, 4);
  WalLintOptions options;
  options.max_uncheckpointed_bytes = 16;  // far below 4 records + header
  analysis::DiagnosticReport report;
  LintWal(store, options, &report);
  auto codes = Codes(report);
  ASSERT_EQ(codes.size(), 2u);  // WAL001 + WAL004
  EXPECT_EQ(codes[1], "WAL004");
  EXPECT_TRUE(report.has_errors());
}

TEST(WalLintTest, CheckpointedLogOfAnySizeEscapesWal004) {
  std::string store = StorePath("big_checkpointed_store");
  MakeLog(store, 4, /*checkpoint_lsn=*/1);
  WalLintOptions options;
  options.max_uncheckpointed_bytes = 16;
  analysis::DiagnosticReport report;
  LintWal(store, options, &report);
  for (const std::string& code : Codes(report)) {
    EXPECT_NE(code, "WAL004");
  }
}

TEST(WalLintTest, NotAWalFileIsWal005Error) {
  std::string store = StorePath("impostor_store");
  AppendBytes(DurableStore::WalPath(store),
              "this is certainly not a WAL file, far too chatty");
  analysis::DiagnosticReport report;
  EXPECT_EQ(LintWal(store, {}, &report), 1u);
  EXPECT_EQ(Codes(report), std::vector<std::string>{"WAL005"});
  EXPECT_TRUE(report.has_errors());
}

TEST(WalLintTest, FingerprintMismatchIsWal005Error) {
  std::string store = StorePath("mismatch_store");
  MakeLog(store, 1);
  WalLintOptions options;
  options.fingerprint = kFp + 1;  // a different schema's log
  analysis::DiagnosticReport report;
  EXPECT_EQ(LintWal(store, options, &report), 1u);
  EXPECT_EQ(Codes(report), std::vector<std::string>{"WAL005"});
  // The right fingerprint (and the skip value 0) both pass.
  analysis::DiagnosticReport ok_report;
  WalLintOptions right;
  right.fingerprint = kFp;
  LintWal(store, right, &ok_report);
  for (const std::string& code : Codes(ok_report)) {
    EXPECT_NE(code, "WAL005");
  }
}

}  // namespace
}  // namespace mctdb::wal
