#include "design/feasibility.h"

#include <gtest/gtest.h>

#include "er/er_catalog.h"

namespace mctdb::design {
namespace {

using er::ErDiagram;
using er::ErGraph;
using er::NodeId;

TEST(FeasibilityTest, SimpleChainFeasible) {
  ErDiagram d = er::Er7Chain();
  ErGraph g(d);
  auto r = CheckSingleColorNnAr(g);
  EXPECT_TRUE(r.feasible) << r.explanation;
}

TEST(FeasibilityTest, StarFeasible) {
  ErDiagram d = er::Er6Star();
  ErGraph g(d);
  EXPECT_TRUE(CheckSingleColorNnAr(g).feasible);
}

TEST(FeasibilityTest, ManyManyInfeasible) {
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  NodeId b = d.AddEntity("b");
  ASSERT_TRUE(d.AddManyToMany("r", a, b).ok());
  ErGraph g(d);
  auto r = CheckSingleColorNnAr(g);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.many_many_relationships, 1u);
  EXPECT_NE(r.explanation.find("many-many"), std::string::npos);
}

TEST(FeasibilityTest, CycleInfeasible) {
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  NodeId b = d.AddEntity("b");
  ASSERT_TRUE(d.AddOneToOne("r1", a, b).ok());
  ASSERT_TRUE(d.AddOneToOne("r2", a, b).ok());
  ErGraph g(d);
  auto r = CheckSingleColorNnAr(g);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.is_forest);
}

TEST(FeasibilityTest, MultiManySideInfeasible) {
  // The ToyMcNotDr shape: B on the many side of r1 and r3.
  ErDiagram d = er::ToyMcNotDr();
  ErGraph g(d);
  auto r = CheckSingleColorNnAr(g);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.multi_many_side_nodes, 1u);
}

TEST(FeasibilityTest, TpcwInfeasibleForSeveralReasons) {
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  auto r = CheckSingleColorNnAr(g);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.is_forest);
  EXPECT_GE(r.multi_many_side_nodes, 1u);  // order, order_line
}

}  // namespace
}  // namespace mctdb::design
