file(REMOVE_RECURSE
  "CMakeFiles/designer_test.dir/designer_test.cc.o"
  "CMakeFiles/designer_test.dir/designer_test.cc.o.d"
  "designer_test"
  "designer_test.pdb"
  "designer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/designer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
