file(REMOVE_RECURSE
  "CMakeFiles/tpcw_designer.dir/tpcw_designer.cc.o"
  "CMakeFiles/tpcw_designer.dir/tpcw_designer.cc.o.d"
  "tpcw_designer"
  "tpcw_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcw_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
