#include "query/twig_join.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/logging.h"

namespace mctdb::query {

namespace {

using storage::ElemId;
using storage::LabelEntry;

/// Filtered stream over one pattern node's posting list with one-entry
/// lookahead. Reads block-at-a-time: the cursor hands out a page-sized
/// span (a view into the pinned frame, valid until the next cursor call),
/// and Advance walks the span in place — one pool interaction per page
/// instead of one per entry.
class Stream {
 public:
  Stream(const storage::MctStore& store, mct::ColorId color,
         const TwigNode& node)
      : store_(store), node_(node) {
    const storage::PostingMeta* meta = store.Posting(color, node.tag);
    if (meta != nullptr) {
      cursor_.emplace(store.buffer_pool(), meta);
    }
    Advance();
  }

  bool eof() const { return !current_.has_value(); }
  const LabelEntry& head() const { return *current_; }
  /// Non-OK when the underlying posting scan failed; the stream then
  /// reports eof and the join result must be discarded.
  Status status() const {
    return cursor_.has_value() ? cursor_->status() : Status::OK();
  }

  void Advance() {
    current_.reset();
    if (!cursor_.has_value()) return;
    for (;;) {
      if (span_pos_ >= span_count_) {
        if (!cursor_->NextSpan(&span_, &span_count_)) return;
        span_pos_ = 0;
      }
      while (span_pos_ < span_count_) {
        const LabelEntry& e = span_[span_pos_++];
        if (node_.predicate.has_value()) {
          const std::string* v =
              store_.AttrValue(e.elem, node_.predicate->attr);
          if (v == nullptr || *v != node_.predicate->value) continue;
        }
        current_ = e;
        return;
      }
    }
  }

 private:
  const storage::MctStore& store_;
  const TwigNode& node_;
  std::optional<storage::PostingCursor> cursor_;
  std::optional<LabelEntry> current_;
  /// Current page span (borrowed from the cursor's pinned frame).
  const LabelEntry* span_ = nullptr;
  size_t span_count_ = 0;
  size_t span_pos_ = 0;
};

struct StackEntry {
  LabelEntry label;
  int parent_index;  ///< index into the parent node's stack at push time
  uint64_t path_count;  ///< #root-to-here paths through this entry
  bool in_solution = false;
};

class TwigStackRunner {
 public:
  TwigStackRunner(const storage::MctStore& store, mct::ColorId color,
                  const TwigPattern& pattern)
      : pattern_(pattern) {
    for (const TwigNode& node : pattern.nodes) {
      streams_.emplace_back(store, color, node);
      stacks_.emplace_back();
      children_.emplace_back();
    }
    for (size_t i = 1; i < pattern.nodes.size(); ++i) {
      children_[pattern.nodes[i].parent].push_back(static_cast<int>(i));
    }
    matched_.resize(pattern.nodes.size());
  }

  TwigResult Run() {
    while (!streams_[0].eof() || AnyStackNonEmpty()) {
      int q = GetNext(0);
      if (q < 0) break;  // all relevant streams exhausted
      const LabelEntry& head = streams_[q].head();
      int parent = pattern_.nodes[q].parent;
      // Pop entries that can no longer be ancestors of anything upcoming.
      CleanStacks(head.start);
      if (parent == -1 || !stacks_[parent].empty()) {
        Push(q, head);
        if (children_[q].empty()) {
          // Leaf: every chain through the stacks is a path solution.
          EmitLeaf(q);
          stacks_[q].pop_back();
        }
      }
      streams_[q].Advance();
    }
    TwigResult out;
    out.path_solutions = path_solutions_;
    out.matched.resize(pattern_.nodes.size());
    for (size_t q = 0; q < pattern_.nodes.size(); ++q) {
      std::vector<std::pair<uint32_t, ElemId>> sorted(
          matched_[q].begin(), matched_[q].end());
      std::sort(sorted.begin(), sorted.end());
      for (const auto& [start, elem] : sorted) {
        out.matched[q].push_back(elem);
      }
    }
    return out;
  }

  /// First stream failure, if any — checked by TwigStackJoin so a truncated
  /// scan surfaces as an error instead of an undersized result.
  Status StreamsStatus() const {
    for (const Stream& s : streams_) {
      if (!s.status().ok()) return s.status();
    }
    return Status::OK();
  }

 private:
  bool AnyStackNonEmpty() const {
    for (const auto& s : stacks_) {
      if (!s.empty()) return true;
    }
    return false;
  }

  /// Classic getNext: returns the pattern node whose head can be processed
  /// next, or -1 when the twig is exhausted. A node is returnable when
  /// every descendant subtree still has potential extensions beyond it.
  int GetNext(int q) {
    if (children_[q].empty()) {
      return streams_[q].eof() ? -1 : q;
    }
    int nmin = -1, nmax = -1;
    for (int qi : children_[q]) {
      int ni = GetNext(qi);
      if (ni != qi) return ni;  // -1 propagates too: a leaf ran dry
      uint32_t l = streams_[qi].head().start;
      if (nmin == -1 || l < streams_[nmin].head().start) nmin = qi;
      if (nmax == -1 || l > streams_[nmax].head().start) nmax = qi;
    }
    // Skip q entries that end before the furthest child begins: they can
    // never contain all children.
    while (!streams_[q].eof() &&
           streams_[q].head().end < streams_[nmax].head().start) {
      streams_[q].Advance();
    }
    if (!streams_[q].eof() &&
        streams_[q].head().start < streams_[nmin].head().start) {
      return q;
    }
    return nmin;
  }

  void CleanStacks(uint32_t before_start) {
    for (auto& stack : stacks_) {
      while (!stack.empty() && stack.back().label.end < before_start) {
        stack.pop_back();
      }
    }
  }

  void Push(int q, const LabelEntry& label) {
    StackEntry entry;
    entry.label = label;
    int parent = pattern_.nodes[q].parent;
    entry.parent_index =
        parent == -1 ? -1 : static_cast<int>(stacks_[parent].size()) - 1;
    if (parent == -1) {
      entry.path_count = 1;
    } else {
      entry.path_count = 0;
      for (int i = 0; i <= entry.parent_index; ++i) {
        entry.path_count += stacks_[parent][i].path_count;
      }
    }
    stacks_[q].push_back(entry);
  }

  void EmitLeaf(int q) {
    const StackEntry& leaf = stacks_[q].back();
    if (leaf.path_count == 0) return;
    path_solutions_ += leaf.path_count;
    // Mark the leaf and every stack entry reachable through parent
    // pointers as participating.
    MarkChain(q, static_cast<int>(stacks_[q].size()) - 1);
  }

  void MarkChain(int q, int index) {
    if (index < 0) return;
    StackEntry& entry = stacks_[q][index];
    matched_[q].insert({entry.label.start, entry.label.elem});
    int parent = pattern_.nodes[q].parent;
    if (parent == -1) return;
    // Every parent entry at or below parent_index is an ancestor chain.
    for (int i = 0; i <= entry.parent_index; ++i) {
      MarkChain(parent, i);
    }
  }

  const TwigPattern& pattern_;
  std::vector<Stream> streams_;
  std::vector<std::vector<StackEntry>> stacks_;
  std::vector<std::vector<int>> children_;
  std::vector<std::set<std::pair<uint32_t, ElemId>>> matched_;
  uint64_t path_solutions_ = 0;
};

}  // namespace

Result<TwigResult> TwigStackJoin(const storage::MctStore& store,
                                 mct::ColorId color,
                                 const TwigPattern& pattern) {
  if (pattern.nodes.empty() || pattern.nodes[0].parent != -1) {
    return Status::InvalidArgument("twig must start with its root");
  }
  for (size_t i = 1; i < pattern.nodes.size(); ++i) {
    if (pattern.nodes[i].parent < 0 ||
        pattern.nodes[i].parent >= static_cast<int>(i)) {
      return Status::InvalidArgument("twig children must follow parents");
    }
  }
  TwigStackRunner runner(store, color, pattern);
  TwigResult out = runner.Run();
  MCTDB_RETURN_IF_ERROR(runner.StreamsStatus());
  return out;
}

TwigResult NaiveTwigJoin(const storage::MctStore& store, mct::ColorId color,
                         const TwigPattern& pattern) {
  // Materialize candidates per node, then test containment recursively.
  // Semantics: an element participates iff it appears in at least one
  // COMPLETE twig match; this is what TwigStackJoin's matched sets contain
  // (its classic optimality property: every output path solution joins
  // into a complete match). `path_solutions` here counts complete-match
  // leaf chains, which may differ in unit from TwigStack's emission count;
  // tests compare the matched sets.
  std::vector<std::vector<LabelEntry>> candidates(pattern.nodes.size());
  for (size_t q = 0; q < pattern.nodes.size(); ++q) {
    const storage::PostingMeta* meta =
        store.Posting(color, pattern.nodes[q].tag);
    if (meta == nullptr) continue;
    for (const LabelEntry& e : ReadAll(store.buffer_pool(), *meta)) {
      const auto& pred = pattern.nodes[q].predicate;
      if (pred.has_value()) {
        const std::string* v = store.AttrValue(e.elem, pred->attr);
        if (v == nullptr || *v != pred->value) continue;
      }
      candidates[q].push_back(e);
    }
  }
  std::vector<std::vector<int>> children(pattern.nodes.size());
  for (size_t i = 1; i < pattern.nodes.size(); ++i) {
    children[pattern.nodes[i].parent].push_back(static_cast<int>(i));
  }

  // satisfied(q, e): e's subtree can complete the twig below q.
  std::function<bool(int, const LabelEntry&)> satisfied =
      [&](int q, const LabelEntry& e) -> bool {
    for (int qi : children[q]) {
      bool any = false;
      for (const LabelEntry& d : candidates[qi]) {
        if (e.Contains(d) && satisfied(qi, d)) {
          any = true;
          break;
        }
      }
      if (!any) return false;
    }
    return true;
  };

  std::vector<std::set<std::pair<uint32_t, ElemId>>> matched(
      pattern.nodes.size());
  std::function<void(int, const LabelEntry&)> mark =
      [&](int q, const LabelEntry& e) {
        if (!matched[q].insert({e.start, e.elem}).second) return;
        for (int qi : children[q]) {
          for (const LabelEntry& d : candidates[qi]) {
            if (e.Contains(d) && satisfied(qi, d)) mark(qi, d);
          }
        }
      };

  TwigResult out;
  out.matched.resize(pattern.nodes.size());
  for (const LabelEntry& root : candidates[0]) {
    if (satisfied(0, root)) mark(0, root);
  }
  // Leaf-chain count over complete-match participants.
  for (size_t q = 0; q < pattern.nodes.size(); ++q) {
    if (children[q].empty()) out.path_solutions += matched[q].size();
    for (const auto& [start, elem] : matched[q]) {
      out.matched[q].push_back(elem);
    }
  }
  return out;
}

}  // namespace mctdb::query
