#include "xml/xml_node.h"

namespace mctdb::xml {

void XmlNode::SetAttr(std::string_view name, std::string_view value) {
  for (auto& [k, v] : attrs_) {
    if (k == name) {
      v = std::string(value);
      return;
    }
  }
  attrs_.emplace_back(std::string(name), std::string(value));
}

const std::string* XmlNode::FindAttr(std::string_view name) const {
  for (const auto& [k, v] : attrs_) {
    if (k == name) return &v;
  }
  return nullptr;
}

XmlNode* XmlNode::AddChild(std::string tag) {
  children_.push_back(std::make_unique<XmlNode>(std::move(tag)));
  return children_.back().get();
}

XmlNode* XmlNode::AddChildNode(XmlNodePtr child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

const XmlNode* XmlNode::FindChild(std::string_view tag) const {
  for (const auto& c : children_) {
    if (c->tag() == tag) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::FindChildren(std::string_view tag) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children_) {
    if (c->tag() == tag) out.push_back(c.get());
  }
  return out;
}

size_t XmlNode::SubtreeSize() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->SubtreeSize();
  return n;
}

}  // namespace mctdb::xml
