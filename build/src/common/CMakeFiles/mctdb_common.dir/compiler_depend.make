# Empty compiler generated dependencies file for mctdb_common.
# This may be replaced when dependencies are built.
