file(REMOVE_RECURSE
  "libmctdb_xml.a"
)
