
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/design/algorithm_dumc.cc" "src/design/CMakeFiles/mctdb_design.dir/algorithm_dumc.cc.o" "gcc" "src/design/CMakeFiles/mctdb_design.dir/algorithm_dumc.cc.o.d"
  "/root/repo/src/design/algorithm_mc.cc" "src/design/CMakeFiles/mctdb_design.dir/algorithm_mc.cc.o" "gcc" "src/design/CMakeFiles/mctdb_design.dir/algorithm_mc.cc.o.d"
  "/root/repo/src/design/algorithm_mcmr.cc" "src/design/CMakeFiles/mctdb_design.dir/algorithm_mcmr.cc.o" "gcc" "src/design/CMakeFiles/mctdb_design.dir/algorithm_mcmr.cc.o.d"
  "/root/repo/src/design/algorithm_undr.cc" "src/design/CMakeFiles/mctdb_design.dir/algorithm_undr.cc.o" "gcc" "src/design/CMakeFiles/mctdb_design.dir/algorithm_undr.cc.o.d"
  "/root/repo/src/design/associations.cc" "src/design/CMakeFiles/mctdb_design.dir/associations.cc.o" "gcc" "src/design/CMakeFiles/mctdb_design.dir/associations.cc.o.d"
  "/root/repo/src/design/chain_packing.cc" "src/design/CMakeFiles/mctdb_design.dir/chain_packing.cc.o" "gcc" "src/design/CMakeFiles/mctdb_design.dir/chain_packing.cc.o.d"
  "/root/repo/src/design/constraints.cc" "src/design/CMakeFiles/mctdb_design.dir/constraints.cc.o" "gcc" "src/design/CMakeFiles/mctdb_design.dir/constraints.cc.o.d"
  "/root/repo/src/design/designer.cc" "src/design/CMakeFiles/mctdb_design.dir/designer.cc.o" "gcc" "src/design/CMakeFiles/mctdb_design.dir/designer.cc.o.d"
  "/root/repo/src/design/feasibility.cc" "src/design/CMakeFiles/mctdb_design.dir/feasibility.cc.o" "gcc" "src/design/CMakeFiles/mctdb_design.dir/feasibility.cc.o.d"
  "/root/repo/src/design/recoverability.cc" "src/design/CMakeFiles/mctdb_design.dir/recoverability.cc.o" "gcc" "src/design/CMakeFiles/mctdb_design.dir/recoverability.cc.o.d"
  "/root/repo/src/design/xml_design.cc" "src/design/CMakeFiles/mctdb_design.dir/xml_design.cc.o" "gcc" "src/design/CMakeFiles/mctdb_design.dir/xml_design.cc.o.d"
  "/root/repo/src/design/xml_mining.cc" "src/design/CMakeFiles/mctdb_design.dir/xml_mining.cc.o" "gcc" "src/design/CMakeFiles/mctdb_design.dir/xml_mining.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mct/CMakeFiles/mctdb_mct.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mctdb_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/er/CMakeFiles/mctdb_er.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mctdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
