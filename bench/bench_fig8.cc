// Fig 8 reproduction: number of structural joins for the TPC-W queries,
// per schema (DEEP, AF, SHALLOW, EN, MCMR, DR, UNDR).
#include "bench/bench_util.h"

using namespace mctdb;
using namespace mctdb::bench;

int main(int argc, char** argv) {
  (void)ScaleFromArgs(argc, argv);  // plan metrics are scale-independent
  std::printf(
      "=== Fig 8: Number of structural joins for TPC-W queries ===\n\n");
  TpcwSetup setup(0.01, /*materialize=*/false);

  std::printf("%-6s", "");
  for (const auto& schema : setup.schemas) {
    std::printf("%9s", schema.name().c_str());
  }
  std::printf("\n");
  PrintRule(6 + 9 * setup.schemas.size());
  for (const std::string& name : setup.w.figure_queries) {
    const query::AssociationQuery* q = setup.w.Find(name);
    std::printf("%-6s", name.c_str());
    for (const auto& schema : setup.schemas) {
      auto plan = query::PlanQuery(*q, schema);
      std::printf("%9zu", plan.ok() ? plan->Stats().structural_joins : 0);
    }
    std::printf("\n");
  }
  return 0;
}
