#include "query/executor.h"

#include <gtest/gtest.h>

#include "design/designer.h"
#include "instance/materialize.h"
#include "query/planner.h"
#include "workload/workload.h"

namespace mctdb::query {
namespace {

using design::Designer;
using design::Strategy;

/// Shared small TPC-W database materialized under every strategy.
class ExecutorTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    w_ = new workload::Workload(workload::TpcwWorkload(0.05));
    graph_ = new er::ErGraph(w_->diagram);
    designer_ = new Designer(*graph_);
    logical_ = new instance::LogicalInstance(
        instance::GenerateInstance(*graph_, w_->gen));
    for (Strategy s : design::AllStrategies()) {
      schemas_->push_back(designer_->Design(s));
    }
    for (mct::MctSchema& schema : *schemas_) {
      stores_->push_back(instance::Materialize(*logical_, schema));
    }
  }
  static void TearDownTestSuite() {
    delete stores_;
    delete schemas_;
    delete logical_;
    delete designer_;
    delete graph_;
    delete w_;
    stores_ = nullptr;
  }

  static ExecResult Run(const char* query, size_t strategy_index) {
    const AssociationQuery* q = w_->Find(query);
    EXPECT_NE(q, nullptr);
    auto plan = PlanQuery(*q, (*schemas_)[strategy_index]);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    Executor exec((*stores_)[strategy_index].get());
    auto result = exec.Execute(*plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }

  static size_t NumStrategies() { return schemas_->size(); }
  static const char* StrategyName(size_t i) {
    return design::ToString(design::AllStrategies()[i]);
  }

  static workload::Workload* w_;
  static er::ErGraph* graph_;
  static Designer* designer_;
  static instance::LogicalInstance* logical_;
  static std::vector<mct::MctSchema>* schemas_;
  static std::vector<std::unique_ptr<storage::MctStore>>* stores_;
};

workload::Workload* ExecutorTest::w_ = nullptr;
er::ErGraph* ExecutorTest::graph_ = nullptr;
Designer* ExecutorTest::designer_ = nullptr;
instance::LogicalInstance* ExecutorTest::logical_ = nullptr;
std::vector<mct::MctSchema>* ExecutorTest::schemas_ =
    new std::vector<mct::MctSchema>();
std::vector<std::unique_ptr<storage::MctStore>>* ExecutorTest::stores_ =
    new std::vector<std::unique_ptr<storage::MctStore>>();

TEST_F(ExecutorTest, AllReadQueriesAgreeAcrossSchemas) {
  // The defining property of the evaluation: equivalent content =>
  // equivalent (logical) results under every schema.
  for (const auto& q : w_->queries) {
    if (q.is_update()) continue;
    ExecResult reference = Run(q.name.c_str(), 0);
    for (size_t i = 1; i < NumStrategies(); ++i) {
      ExecResult other = Run(q.name.c_str(), i);
      EXPECT_EQ(other.logicals, reference.logicals)
          << q.name << ": " << StrategyName(i) << " vs " << StrategyName(0);
    }
  }
}

TEST_F(ExecutorTest, Q1FindsJapaneseOrders) {
  ExecResult r = Run("Q1", 3);  // EN
  EXPECT_GT(r.unique_count, 0u) << "Japan exists in the country vocabulary";
  // Cross-check against the logical instance: walk make/has/in upward.
  const er::ErDiagram& d = w_->diagram;
  er::NodeId order = *d.FindNode("order");
  er::NodeId make = *d.FindNode("make");
  er::NodeId has = *d.FindNode("has");
  er::NodeId in = *d.FindNode("in");
  er::NodeId country = *d.FindNode("country");
  std::set<uint32_t> expected;
  for (uint32_t m = 0; m < logical_->count(make); ++m) {
    uint32_t cust = logical_->EndpointOf(make, 0, m);
    uint32_t ord = logical_->EndpointOf(make, 1, m);
    // Walk customer -> has -> address -> in -> country by hand.
    const er::ErEdge* has_cust_edge = nullptr;
    for (er::EdgeId eid : graph_->incident(has)) {
      const er::ErEdge& e = graph_->edge(eid);
      if (e.rel == has && e.node == *d.FindNode("customer")) {
        has_cust_edge = &e;
      }
    }
    ASSERT_NE(has_cust_edge, nullptr);
    for (uint32_t h : logical_->RelsOf(has_cust_edge->id, cust)) {
      uint32_t addr = logical_->EndpointOf(has, 0, h);
      const er::ErEdge* in_addr_edge = nullptr;
      for (er::EdgeId eid : graph_->incident(in)) {
        const er::ErEdge& e = graph_->edge(eid);
        if (e.rel == in && e.node == *d.FindNode("address")) {
          in_addr_edge = &e;
        }
      }
      ASSERT_NE(in_addr_edge, nullptr);
      for (uint32_t i : logical_->RelsOf(in_addr_edge->id, addr)) {
        uint32_t ctry = logical_->EndpointOf(in, 0, i);
        if (logical_->AttrValue(country, ctry, 1) == "Japan") {
          expected.insert(ord);
        }
      }
    }
  }
  std::set<uint32_t> got(r.logicals.begin(), r.logicals.end());
  EXPECT_EQ(got, expected);
  (void)order;
}

TEST_F(ExecutorTest, DeepReturnsDuplicatesOnQ6) {
  // DEEP = strategy index 0 in AllStrategies(); Q6 traverses the M:N
  // composite through duplicated item nests.
  ExecResult deep = Run("Q6", 0);
  ExecResult en = Run("Q6", 3);
  EXPECT_EQ(deep.unique_count, en.unique_count);
  EXPECT_GE(deep.raw_count, deep.unique_count);
  if (deep.unique_count > 1) {
    EXPECT_GT(deep.raw_count, deep.unique_count)
        << "DEEP's duplicated nests must surface as raw duplicates";
  }
  EXPECT_EQ(en.raw_count, en.unique_count) << "EN is node normal";
}

TEST_F(ExecutorTest, UpdatesTouchAllCopies) {
  ExecResult deep = Run("U1", 0);
  ExecResult en = Run("U1", 3);
  EXPECT_EQ(deep.logicals_updated, en.logicals_updated);
  EXPECT_GT(deep.elements_updated, deep.logicals_updated)
      << "DEEP must rewrite every nested copy";
  EXPECT_EQ(en.elements_updated, en.logicals_updated);
}

TEST_F(ExecutorTest, UpdatesActuallyChangeValues) {
  // Run U3 on MCMR (index 4) and verify the address zip changed.
  ExecResult r = Run("U3", 4);
  ASSERT_EQ(r.logicals_updated, 1u);
  auto* store = (*stores_)[4].get();
  er::NodeId address = *w_->diagram.FindNode("address");
  auto elems = store->ElementsFor(address, r.logicals[0]);
  ASSERT_FALSE(elems.empty());
  EXPECT_EQ(*store->AttrValue(elems[0], "zip"), "00000");
}

TEST_F(ExecutorTest, GroupByProducesGroups) {
  ExecResult r = Run("Q11", 5);  // DR
  size_t total = 0;
  for (const auto& [value, count] : r.groups) total += count;
  EXPECT_EQ(total, r.unique_count);
}

TEST_F(ExecutorTest, PageAccountingNonzero) {
  ExecResult r = Run("Q1", 2);  // SHALLOW: scans several postings
  EXPECT_GT(r.page_misses + r.page_hits, 0u);
  EXPECT_GT(r.elapsed_seconds, 0.0);
}

TEST_F(ExecutorTest, PerQueryCountsMatchPoolDeltasWhenSerial) {
  // With a single executor on the store's own pool, the per-query charged
  // counts must equal the pool-global deltas — the old (diff-based)
  // numbers were correct in the serial case, and the new attribution
  // must reproduce them exactly.
  auto* store = (*stores_)[2].get();  // SHALLOW
  auto* pool = store->buffer_pool();
  const AssociationQuery* q = w_->Find("Q1");
  ASSERT_NE(q, nullptr);
  auto plan = PlanQuery(*q, (*schemas_)[2]);
  ASSERT_TRUE(plan.ok());
  Executor exec(store);
  uint64_t hits0 = pool->hits();
  uint64_t misses0 = pool->misses();
  auto result = exec.Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->page_hits, pool->hits() - hits0);
  EXPECT_EQ(result->page_misses, pool->misses() - misses0);
}

TEST_F(ExecutorTest, TraceSpansCoverTheQuery) {
  ExecResult r = Run("Q1", 4);  // MCMR: structural joins + crossings
  EXPECT_EQ(r.trace.kind, obs::StageKind::kQuery);
  EXPECT_EQ(r.trace.label, "Q1");
  EXPECT_FALSE(r.trace.children.empty());
  // The span tree's inclusive page counts ARE the query's counts.
  EXPECT_EQ(r.trace.total_page_hits(), r.page_hits);
  EXPECT_EQ(r.trace.total_page_misses(), r.page_misses);
  EXPECT_EQ(r.trace.join_pairs, r.join_pairs);
  // Per-stage rollup self times sum to the root's elapsed (within float
  // noise) and every stage row with calls has kind coverage.
  obs::StageTable table = obs::AggregateByStage(r.trace);
  EXPECT_GT(table[size_t(obs::StageKind::kTagScan)].calls, 0u);
  EXPECT_GT(table[size_t(obs::StageKind::kStructuralJoin)].calls, 0u);
  double self_sum = 0;
  for (const obs::StageAgg& row : table) self_sum += row.seconds;
  EXPECT_NEAR(self_sum, r.trace.elapsed_seconds,
              r.trace.elapsed_seconds * 0.5 + 1e-4);
}

TEST_F(ExecutorTest, NullQueryPlanIsInvalidArgument) {
  QueryPlan plan;  // no query attached
  Executor exec((*stores_)[0].get());
  auto result = exec.Execute(plan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(ExecutorTest, MissingEdgePlanIsInvalidArgument) {
  // A plan whose edge list was stripped (e.g. a buggy cache or a partial
  // deserialization) must fail cleanly instead of dereferencing null.
  const AssociationQuery* q = w_->Find("Q1");
  ASSERT_NE(q, nullptr);
  auto plan = PlanQuery(*q, (*schemas_)[3]);
  ASSERT_TRUE(plan.ok());
  QueryPlan stripped = *plan;
  stripped.edges.clear();
  Executor exec((*stores_)[3].get());
  auto result = exec.Execute(stripped);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(ExecutorTest, EmptyPredicateYieldsEmptyResult) {
  QueryBuilder b("empty", w_->diagram);
  int c = b.Root("country");
  b.Where(c, "name", "Atlantis");
  b.Via(c, {"in", "address"});
  AssociationQuery q = b.Build();
  auto plan = PlanQuery(q, (*schemas_)[3]);
  ASSERT_TRUE(plan.ok());
  Executor exec((*stores_)[3].get());
  auto result = exec.Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->logicals.empty());
}

}  // namespace
}  // namespace mctdb::query
