#include "instance/materialize.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace mctdb::instance {

namespace {

class Materializer {
 public:
  Materializer(const LogicalInstance& logical, const mct::MctSchema& schema,
               const MaterializeOptions& options)
      : logical_(logical),
        schema_(schema),
        graph_(schema.graph()),
        options_(options),
        builder_(&schema, options.store) {
    // Ref edges grouped by ER node so idref attributes are attached when
    // the relationship element is created.
    for (const mct::RefEdge& ref : schema.ref_edges()) {
      refs_by_node_[schema.occ(ref.from).er_node].push_back(&ref);
    }
  }

  std::unique_ptr<storage::MctStore> Run() {
    for (mct::ColorId c = 0; c < schema_.num_colors(); ++c) {
      builder_.BeginColor(c);
      placed_in_color_.clear();
      placed_at_.clear();
      for (mct::OccId root : schema_.roots(c)) {
        er::NodeId node = schema_.occ(root).er_node;
        for (uint32_t inst = 0; inst < logical_.count(node); ++inst) {
          Place(root, inst);
        }
      }
      // §4.2: instances without a parent (partial participation) must still
      // be stored — "expecting instances not just rooted at X, but also
      // allowing instances rooted at Y". Every instance not yet placed at
      // a CLEAN occurrence of its type becomes an extra top-level tree
      // there (with the occurrence's full subtree), so every clean
      // occurrence covers every instance and every association pair — the
      // invariant the planner's chain matching relies on. Completion runs
      // shallow-first so an orphan ancestor's fragment places its
      // descendants before they are considered on their own.
      std::vector<std::pair<size_t, mct::OccId>> clean;
      for (const mct::SchemaOcc& o : schema_.occurrences()) {
        if (o.color == c && schema_.IsCleanOcc(o.id)) {
          clean.emplace_back(schema_.Depth(o.id), o.id);
        }
      }
      std::sort(clean.begin(), clean.end());
      for (const auto& [depth, occ_id] : clean) {
        er::NodeId node = schema_.occ(occ_id).er_node;
        for (uint32_t inst = 0; inst < logical_.count(node); ++inst) {
          if (placed_at_.count(PlacementKey(occ_id, inst))) continue;
          Place(occ_id, inst);
        }
      }
      builder_.EndColor();
    }
    return builder_.Finish();
  }

 private:
  using Key = uint64_t;  // (er_node, instance) packed
  static Key MakeKey(er::NodeId node, uint32_t inst) {
    return (uint64_t(node) << 32) | inst;
  }

  storage::ElemId ObtainElement(er::NodeId node, uint32_t inst) {
    Key key = MakeKey(node, inst);
    auto shared = shared_elems_.find(key);
    bool first_in_color = placed_in_color_.insert(key).second;
    if (shared != shared_elems_.end() && first_in_color) {
      return shared->second;  // the shared element's placement in this color
    }
    if (shared == shared_elems_.end()) {
      storage::ElemId elem = NewElement(node, inst, /*is_copy=*/false);
      shared_elems_.emplace(key, elem);
      return elem;
    }
    // Already placed in this color: a redundant copy with its own records.
    return NewElement(node, inst, /*is_copy=*/true);
  }

  storage::ElemId NewElement(er::NodeId node, uint32_t inst, bool is_copy) {
    storage::ElemId elem = builder_.AddElement(node, inst, is_copy);
    const er::ErNode& meta = schema_.diagram().node(node);
    for (size_t a = 0; a < meta.attributes.size(); ++a) {
      // Key attributes are id-valued (no separate content node); data
      // attributes own a content node (Table 1 distinguishes the counts).
      builder_.AddAttr(elem, meta.attributes[a].name,
                       logical_.AttrValue(node, inst, a),
                       /*with_content=*/!meta.attributes[a].is_key);
    }
    auto refs = refs_by_node_.find(node);
    if (refs != refs_by_node_.end()) {
      for (const mct::RefEdge* ref : refs->second) {
        // The relationship instance's endpoint on the referenced side.
        const er::ErEdge& e = graph_.edge(ref->er_edge);
        uint32_t target_inst =
            logical_.EndpointOf(e.rel, e.endpoint_index, inst);
        builder_.AddAttr(elem, ref->attr_name,
                         logical_.KeyValue(ref->target, target_inst),
                         /*with_content=*/false);
      }
    }
    return elem;
  }

  static uint64_t PlacementKey(mct::OccId occ, uint32_t inst) {
    return (uint64_t(occ) << 32) | inst;
  }

  void Place(mct::OccId occ_id, uint32_t inst) {
    if (++placements_ > options_.max_placements) {
      MCTDB_CHECK_MSG(false, "materialization placement cap exceeded");
    }
    placed_at_.insert(PlacementKey(occ_id, inst));
    const mct::SchemaOcc& occ = schema_.occ(occ_id);
    storage::ElemId elem = ObtainElement(occ.er_node, inst);
    builder_.Enter(elem);
    for (mct::OccId child_id : occ.children) {
      const mct::SchemaOcc& child = schema_.occ(child_id);
      const er::ErEdge& edge = graph_.edge(child.via_edge);
      if (child.er_node == edge.rel) {
        // parent = endpoint: one child per relationship instance the parent
        // instance participates in.
        for (uint32_t rel_inst : logical_.RelsOf(edge.id, inst)) {
          Place(child_id, rel_inst);
        }
      } else {
        // parent = relationship: exactly one endpoint instance.
        Place(child_id,
              logical_.EndpointOf(edge.rel, edge.endpoint_index, inst));
      }
    }
    builder_.Leave(elem);
  }

  const LogicalInstance& logical_;
  const mct::MctSchema& schema_;
  const er::ErGraph& graph_;
  const MaterializeOptions& options_;
  storage::StoreBuilder builder_;

  std::unordered_map<Key, storage::ElemId> shared_elems_;
  std::unordered_set<Key> placed_in_color_;
  /// (occurrence, instance) pairs placed in the current color.
  std::unordered_set<uint64_t> placed_at_;
  std::unordered_map<er::NodeId, std::vector<const mct::RefEdge*>>
      refs_by_node_;
  size_t placements_ = 0;
};

}  // namespace

std::unique_ptr<storage::MctStore> Materialize(
    const LogicalInstance& logical, const mct::MctSchema& schema,
    const MaterializeOptions& options) {
  Materializer m(logical, schema, options);
  return m.Run();
}

}  // namespace mctdb::instance
