file(REMOVE_RECURSE
  "CMakeFiles/mctdb_instance.dir/logical.cc.o"
  "CMakeFiles/mctdb_instance.dir/logical.cc.o.d"
  "CMakeFiles/mctdb_instance.dir/materialize.cc.o"
  "CMakeFiles/mctdb_instance.dir/materialize.cc.o.d"
  "CMakeFiles/mctdb_instance.dir/xml_export.cc.o"
  "CMakeFiles/mctdb_instance.dir/xml_export.cc.o.d"
  "libmctdb_instance.a"
  "libmctdb_instance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mctdb_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
