// Checkpointing: fold the delta side state into a fresh compact base
// image and trim the log (DESIGN.md §13).
//
// CompactStore rebuilds a store through StoreBuilder from the live store's
// latest-snapshot view: deleted placements vanish, inserted ones become
// base postings, renamed attribute values are written through, and the
// interval labels are reassigned with full label_stride gaps — restoring
// the insert headroom that incremental gap consumption eroded. Element ids
// are remapped in the process, which is exactly why update ops address
// (er_node, logical) and never ElemId.
//
// The durable checkpoint protocol (DurableStore::Checkpoint) is:
//   1. quiesce writers, group-commit the last appended LSN;
//   2. CompactStore -> SaveStore to "<path>.ckpt.tmp", fsynced;
//   3. rename over "<path>", fsync the directory (the durable commit
//      point — the image must be on disk BEFORE the log is trimmed,
//      since Reset's truncation is itself durable);
//   4. LogWriter::Reset with the checkpoint LSN (trims the log).
// A crash between 3 and 4 leaves old log records covering ops already in
// the image; recovery skips them idempotently (see recovery.h).
#pragma once

#include <memory>

#include "common/lsn.h"
#include "common/result.h"
#include "storage/store.h"

namespace mctdb::wal {

/// Rebuilds a compact read-only base store from `src`'s latest state.
/// Deterministic: byte-identical output for identical logical content.
Result<std::unique_ptr<storage::MctStore>> CompactStore(
    const storage::MctStore& src, const storage::StoreOptions& options);

struct CheckpointStats {
  Lsn checkpoint_lsn = kNoLsn;
  uint64_t log_bytes_trimmed = 0;
  size_t elements = 0;  ///< live elements in the compact image
  /// True when the live in-memory store was swapped to the compacted
  /// image (CheckpointMode::kRebaseLive) — the interval-label rebalance.
  bool rebased = false;
};

}  // namespace mctdb::wal
