#include "storage/delta.h"

#include <algorithm>

#include "storage/store.h"

namespace mctdb::storage {

MergedPostingCursor::MergedPostingCursor(PageCache* pool,
                                         const MctStore& store,
                                         mct::ColorId color, er::NodeId tag,
                                         Lsn snapshot, obs::ExecStats* stats) {
  const PostingMeta* meta = store.Posting(color, tag);
  if (meta != nullptr) {
    base_.emplace(pool, meta, stats);
    base_count_ = meta->count;
  }
  if (store.versioned()) {
    StoreDeltas* d = store.deltas();
    std::shared_lock lk(d->mu);
    auto adds = d->posting_adds.find(StoreDeltas::PostingKey(color, tag));
    if (adds != d->posting_adds.end()) {
      for (const DeltaPostingEntry& e : adds->second) {
        if (e.lsn <= snapshot) extra_.push_back(e.entry);
      }
    }
    if (color < d->label_removed.size()) {
      for (const auto& [elem, lsn] : d->label_removed[color]) {
        if (lsn <= snapshot) removed_.emplace(elem, lsn);
      }
    }
  }
  std::sort(extra_.begin(), extra_.end(),
            [](const LabelEntry& a, const LabelEntry& b) {
              return a.start < b.start;
            });
}

void MergedPostingCursor::ApplyBounds(const ScanBounds& bounds) {
  if (base_.has_value()) base_->ApplyBounds(bounds);
}

bool MergedPostingCursor::NextSpan(const LabelEntry** data, size_t* count) {
  if (!status_.ok()) return false;
  if (extra_index_ >= extra_.size() && removed_.empty() && !base_pending_) {
    // No delta state left to merge: forward whole base spans zero-copy.
    if (!base_.has_value()) return false;
    if (base_->NextSpan(data, count)) return true;
    if (!base_->status().ok()) status_ = base_->status();
    base_.reset();
    return false;
  }
  // Deltas in play: merge one block's worth through the entry-at-a-time
  // path into a local buffer, still block-at-a-time for the consumer.
  span_buf_.clear();
  span_buf_.reserve(kEntriesPerPage);
  LabelEntry e;
  while (span_buf_.size() < kEntriesPerPage && Next(&e)) {
    span_buf_.push_back(e);
  }
  if (span_buf_.empty()) return false;
  *data = span_buf_.data();
  *count = span_buf_.size();
  return true;
}

bool MergedPostingCursor::Next(LabelEntry* out) {
  for (;;) {
    if (!base_pending_ && base_.has_value()) {
      if (base_->Next(&base_next_)) {
        base_pending_ = true;
      } else {
        if (!base_->status().ok()) {
          status_ = base_->status();
          return false;
        }
        base_.reset();  // clean end: drop the pin, merge only extras
      }
    }
    const bool have_extra = extra_index_ < extra_.size();
    LabelEntry e;
    if (base_pending_ &&
        (!have_extra || base_next_.start <= extra_[extra_index_].start)) {
      e = base_next_;
      base_pending_ = false;
    } else if (have_extra) {
      e = extra_[extra_index_++];
    } else {
      return false;
    }
    if (!removed_.empty() && removed_.count(e.elem) != 0) continue;
    *out = e;
    return true;
  }
}

}  // namespace mctdb::storage
