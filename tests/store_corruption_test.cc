// Fuzz-style robustness corpus: every way we can damage a store file must
// produce a clean error (DataLoss / InvalidArgument / IoError) — never a
// crash, hang, or out-of-range read. Two sources of inputs:
//
//   * the committed corpus in tests/data/ (fingerprint-independent cases:
//     bad magic, v1 files, truncation before the header);
//   * runtime-generated damage to a freshly saved store — truncation at
//     a spread of offsets and single-bit flips at a stride across the
//     whole file — which exercises the per-section checksums and the
//     bounds checks on every count the loader reads.
//
// The CI ASAN job runs this test, so "no crash" includes "no silent
// out-of-bounds read".
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "design/designer.h"
#include "instance/materialize.h"
#include "storage/persist.h"
#include "workload/workload.h"

namespace mctdb::storage {
namespace {

using design::Strategy;

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> ReadAllBytes(const std::string& path) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  EXPECT_NE(fp, nullptr) << path;
  std::fseek(fp, 0, SEEK_END);
  long size = std::ftell(fp);
  std::fseek(fp, 0, SEEK_SET);
  std::vector<char> bytes(static_cast<size_t>(size));
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), fp), bytes.size());
  std::fclose(fp);
  return bytes;
}

void WriteAllBytes(const std::string& path, const std::vector<char>& bytes,
                   size_t len) {
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  ASSERT_NE(fp, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, len, fp), len);
  std::fclose(fp);
}

struct CorpusFixture : public testing::Test {
  workload::Workload w = workload::TpcwWorkload(0.03);
  er::ErGraph graph{w.diagram};
  design::Designer designer{graph};
  mct::MctSchema schema = designer.Design(Strategy::kEn);

  /// A clean error is the only acceptable outcome for a damaged file.
  void ExpectCleanFailure(const std::string& path, const char* what) {
    auto result = LoadStore(schema, path);
    ASSERT_FALSE(result.ok()) << what << ": damaged file loaded fine";
    const Status& s = result.status();
    EXPECT_TRUE(s.IsDataLoss() || s.IsInvalidArgument() || s.IsIoError())
        << what << ": unexpected status " << s.ToString();
  }
};

TEST_F(CorpusFixture, CommittedCorpusFailsCleanly) {
  const char* files[] = {"empty.mctdb", "short_magic.mctdb",
                         "garbage.mctdb", "v1_magic.mctdb",
                         "header_only.mctdb"};
  for (const char* name : files) {
    std::string path = std::string(MCTDB_TEST_DATA_DIR) + "/" + name;
    ExpectCleanFailure(path, name);
  }
}

TEST_F(CorpusFixture, V1FilesAreRefusedWithAMigrationHint) {
  auto result = LoadStore(
      schema, std::string(MCTDB_TEST_DATA_DIR) + "/v1_magic.mctdb");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("version 1"),
            std::string::npos)
      << result.status().ToString();
}

TEST_F(CorpusFixture, TruncationAtAnyOffsetFailsCleanly) {
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);
  auto store = instance::Materialize(logical, schema);
  std::string path = TempPath("trunc_corpus.mctdb");
  ASSERT_TRUE(SaveStore(*store, path).ok());
  std::vector<char> bytes = ReadAllBytes(path);
  ASSERT_GT(bytes.size(), 1024u);

  std::string damaged = TempPath("trunc_case.mctdb");
  std::vector<size_t> cuts;
  // Every prefix of the first 64 bytes (header-parsing edge cases), then
  // a prime stride across the body, then the last 64 byte boundaries
  // (checksum-tail edge cases).
  for (size_t i = 0; i < 64 && i < bytes.size(); ++i) cuts.push_back(i);
  for (size_t i = 64; i < bytes.size(); i += 4099) cuts.push_back(i);
  for (size_t i = bytes.size() - 64; i < bytes.size(); ++i)
    cuts.push_back(i);
  for (size_t cut : cuts) {
    WriteAllBytes(damaged, bytes, cut);
    ExpectCleanFailure(
        damaged,
        ("truncated to " + std::to_string(cut) + " bytes").c_str());
  }
}

TEST_F(CorpusFixture, BitFlipsAnywhereFailCleanlyOrLoadIdentically) {
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);
  auto store = instance::Materialize(logical, schema);
  std::string path = TempPath("flip_corpus.mctdb");
  ASSERT_TRUE(SaveStore(*store, path).ok());
  std::vector<char> bytes = ReadAllBytes(path);

  std::string damaged = TempPath("flip_case.mctdb");
  // A prime stride visits every region (header, pages, dictionaries,
  // postings, per-section checksums) across repeated runs of the suite.
  for (size_t pos = 0; pos < bytes.size(); pos += 2053) {
    char saved = bytes[pos];
    bytes[pos] = static_cast<char>(bytes[pos] ^ (1 << (pos % 8)));
    WriteAllBytes(damaged, bytes, bytes.size());
    auto result = LoadStore(schema, damaged);
    if (result.ok()) {
      // A flip inside a checksum byte itself... is hashed too, so every
      // flip must be caught. Loading fine would mean a coverage hole.
      ADD_FAILURE() << "bit flip at offset " << pos
                    << " was not detected";
    } else {
      const Status& s = result.status();
      EXPECT_TRUE(s.IsDataLoss() || s.IsInvalidArgument())
          << "offset " << pos << ": " << s.ToString();
    }
    bytes[pos] = saved;
  }
}

TEST_F(CorpusFixture, SaveFailpointSurfacesIoError) {
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);
  auto store = instance::Materialize(logical, schema);
  std::string path = TempPath("save_fault.mctdb");
  failpoint::FailpointGuard guard("persist.save", "err");
  Status s = SaveStore(*store, path);
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
}

TEST_F(CorpusFixture, SaveTruncationIsCaughtAtLoad) {
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);
  auto store = instance::Materialize(logical, schema);
  std::string path = TempPath("save_trunc.mctdb");
  {
    failpoint::FailpointGuard guard("persist.save", "trunc");
    // The save itself reports success — the bytes silently never hit the
    // disk past 4 KB, as with a torn copy or a full filesystem cache.
    ASSERT_TRUE(SaveStore(*store, path).ok());
  }
  auto result = LoadStore(schema, path);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDataLoss()) << result.status().ToString();
}

TEST_F(CorpusFixture, LoadFailpointsInjectCleanFailures) {
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);
  auto store = instance::Materialize(logical, schema);
  std::string path = TempPath("load_fault.mctdb");
  ASSERT_TRUE(SaveStore(*store, path).ok());
  {
    failpoint::FailpointGuard guard("persist.load", "err");
    auto result = LoadStore(schema, path);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsDataLoss());
  }
  {
    failpoint::FailpointGuard guard("persist.load", "trunc");
    auto result = LoadStore(schema, path);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsDataLoss());
  }
  // Disarmed again: the same file loads fine.
  EXPECT_TRUE(LoadStore(schema, path).ok());
}

TEST_F(CorpusFixture, LoadStoreWithRetryRecoversFromTransientFaults) {
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);
  auto store = instance::Materialize(logical, schema);
  std::string path = TempPath("load_retry.mctdb");
  ASSERT_TRUE(SaveStore(*store, path).ok());

  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff = std::chrono::microseconds(1);
  policy.max_backoff = std::chrono::microseconds(10);
  // p=0.5: P(50 consecutive failures) ~ 1e-15 — the retry loop wins.
  failpoint::FailpointGuard guard("persist.load", "err(0.5)");
  uint64_t retries = 0;
  auto result = LoadStoreWithRetry(schema, path, {}, policy, &retries);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(retries, 50u);
}

TEST_F(CorpusFixture, RetryDoesNotMaskPermanentErrors) {
  std::string path =
      std::string(MCTDB_TEST_DATA_DIR) + "/garbage.mctdb";
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff = std::chrono::microseconds(1);
  uint64_t retries = 0;
  auto result = LoadStoreWithRetry(schema, path, {}, policy, &retries);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_EQ(retries, 0u) << "wrong-file errors must not be retried";
}

}  // namespace
}  // namespace mctdb::storage
