file(REMOVE_RECURSE
  "CMakeFiles/mctdb_storage.dir/pager.cc.o"
  "CMakeFiles/mctdb_storage.dir/pager.cc.o.d"
  "CMakeFiles/mctdb_storage.dir/persist.cc.o"
  "CMakeFiles/mctdb_storage.dir/persist.cc.o.d"
  "CMakeFiles/mctdb_storage.dir/posting.cc.o"
  "CMakeFiles/mctdb_storage.dir/posting.cc.o.d"
  "CMakeFiles/mctdb_storage.dir/store.cc.o"
  "CMakeFiles/mctdb_storage.dir/store.cc.o.d"
  "CMakeFiles/mctdb_storage.dir/validate.cc.o"
  "CMakeFiles/mctdb_storage.dir/validate.cc.o.d"
  "libmctdb_storage.a"
  "libmctdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mctdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
