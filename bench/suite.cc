#include "bench/suite.h"

#include "common/log.h"
#include "workload/metrics.h"
#include "workload/runner.h"

namespace mctdb::bench {

namespace {

BenchReport RunTable1(const SuiteOptions& options) {
  MCTDB_LOG(kInfo, "bench", "table1 starting",
            {{"scale", options.scale}, {"reps", uint64_t(options.repetitions)}});
  BenchReport report;
  report.bench = "table1";
  report.scale = options.scale;
  report.reps = options.repetitions;
  TpcwSetup setup(options.scale);
  report.records = MeasureTpcwGrid(setup, options.repetitions);
  return report;
}

BenchReport RunFigures(const SuiteOptions& options) {
  // Plan-stat counters for Figs 8-10: scale-independent (plans depend on
  // the schema shape only), so the grid is computed on an unmaterialized
  // setup and every count is exact — the strongest regression signal the
  // gate has, since any increase is an algorithmic change, not noise.
  MCTDB_LOG(kInfo, "bench", "figures starting", {});
  BenchReport report;
  report.bench = "figures";
  report.scale = options.scale;
  report.reps = 1;
  TpcwSetup setup(0.01, /*materialize=*/false);
  for (size_t i = 0; i < setup.schemas.size(); ++i) {
    const mct::MctSchema& schema = setup.schemas[i];
    for (const std::string& name : setup.w.figure_queries) {
      const query::AssociationQuery* q = setup.w.Find(name);
      QueryRecord r;
      r.schema = schema.name();
      r.query = name;
      r.reps = 1;
      auto plan = query::PlanQuery(*q, schema);
      if (!plan.ok()) {
        r.Extra("plan_error", 1);
      } else {
        const query::PlanStats stats = plan->Stats();
        r.Extra("structural_joins", double(stats.structural_joins))
            .Extra("value_joins", double(stats.value_joins))
            .Extra("color_crossings", double(stats.color_crossings))
            .Extra("dup_elims", double(stats.dup_elims))
            .Extra("group_bys", double(stats.group_bys))
            .Extra("dup_updates", double(stats.dup_updates));
      }
      report.records.push_back(std::move(r));
    }
  }
  return report;
}

}  // namespace

std::vector<QueryRecord> MeasureTpcwGrid(TpcwSetup& setup, size_t reps) {
  if (reps == 0) reps = 1;
  std::vector<QueryRecord> records;
  for (size_t i = 0; i < setup.schemas.size(); ++i) {
    const mct::MctSchema& schema = setup.schemas[i];
    for (const std::string& name : setup.w.figure_queries) {
      const query::AssociationQuery* q = setup.w.Find(name);
      QueryRecord r;
      r.schema = schema.name();
      r.query = name;
      r.reps = reps;
      auto plan = query::PlanQuery(*q, schema);
      if (!plan.ok()) {
        r.Extra("error", 1);
        records.push_back(std::move(r));
        continue;
      }
      std::vector<double> times;
      bool failed = false;
      for (size_t rep = 0; rep < reps && !failed; ++rep) {
        query::Executor exec(setup.stores[i].get());
        auto result = exec.Execute(*plan);
        if (!result.ok()) {
          failed = true;
          break;
        }
        times.push_back(result->elapsed_seconds);
        if (rep + 1 == reps) {
          r.page_hits = result->page_hits;
          r.page_misses = result->page_misses;
          r.join_pairs = result->join_pairs;
          if (q->is_update()) {
            r.Extra("logicals_updated", double(result->logicals_updated))
                .Extra("elements_updated",
                       double(result->elements_updated));
          } else {
            r.Extra("unique_results", double(result->unique_count))
                .Extra("raw_results", double(result->raw_count));
          }
        }
      }
      if (failed) {
        r.Extra("error", 1);
      } else {
        r.median_seconds = workload::MedianSeconds(std::move(times));
      }
      records.push_back(std::move(r));
    }
  }
  return records;
}

const std::vector<BenchmarkDef>& RegisteredBenchmarks() {
  static const std::vector<BenchmarkDef>* benches =
      new std::vector<BenchmarkDef>{
          {"table1",
           "TPC-W per-(schema, query) median times and exact I/O "
           "(Table 1 measurement path)",
           &RunTable1},
          {"figures",
           "Figs 8-10 plan-stat counters per (schema, query); "
           "scale-independent and exact",
           &RunFigures},
      };
  return *benches;
}

const BenchmarkDef* FindBenchmark(std::string_view name) {
  for (const BenchmarkDef& b : RegisteredBenchmarks()) {
    if (name == b.name) return &b;
  }
  return nullptr;
}

}  // namespace mctdb::bench
