// Ablation: Table 1 shape stability across data scales. The claims in
// EXPERIMENTS.md are about orderings (who wins), and orderings must not
// flip as the TPC-W instance grows — this bench prints the key ratios at
// several scales so that is visible at a glance.
//
// The scale argument multiplies the four base scales (0.25, 0.5, 1, 2), so
// `bench_scaling 0.1` runs the same sweep on a ten-times-smaller instance.
#include <algorithm>

#include "bench/bench_util.h"
#include "bench/report.h"

using namespace mctdb;
using namespace mctdb::bench;

namespace {

struct Row {
  double scale;
  size_t base_elements;
  double deep_ratio;   // DEEP elements / base
  double undr_ratio;   // UNDR elements / base
  double dr_mb_ratio;  // DR MB / EN MB
  double shallow_q1;   // SHALLOW Q1 time / EN Q1 time
};

Row Measure(double scale) {
  TpcwSetup setup(scale);
  Row row;
  row.scale = scale;
  auto stats_of = [&](const char* name) -> storage::StoreStats {
    for (size_t i = 0; i < setup.schemas.size(); ++i) {
      if (setup.schemas[i].name() == name) return setup.stores[i]->Stats();
    }
    return {};
  };
  storage::StoreStats en = stats_of("EN");
  row.base_elements = en.num_elements;
  row.deep_ratio = double(stats_of("DEEP").num_elements) /
                   double(en.num_elements);
  row.undr_ratio = double(stats_of("UNDR").num_elements) /
                   double(en.num_elements);
  row.dr_mb_ratio = stats_of("DR").data_mbytes / en.data_mbytes;

  auto time_q1 = [&](const char* name) {
    const query::AssociationQuery* q = setup.w.Find("Q1");
    for (size_t i = 0; i < setup.schemas.size(); ++i) {
      if (setup.schemas[i].name() != name) continue;
      auto plan = query::PlanQuery(*q, setup.schemas[i]);
      if (!plan.ok()) return 0.0;
      query::Executor exec(setup.stores[i].get());
      // Median of 5 runs to steady the tiny timings.
      std::vector<double> times;
      for (int r = 0; r < 5; ++r) {
        auto result = exec.Execute(*plan);
        times.push_back(result.ok() ? result->elapsed_seconds : 0.0);
      }
      std::sort(times.begin(), times.end());
      return times[2];
    }
    return 0.0;
  };
  double en_time = time_q1("EN");
  row.shallow_q1 = en_time > 0 ? time_q1("SHALLOW") / en_time : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (!args.ok) return 1;
  std::printf("=== Scaling ablation: Table 1 shape stability ===\n\n");
  std::printf("%7s %14s %11s %11s %11s %14s\n", "scale", "EN elements",
              "DEEP/EN", "UNDR/EN", "DR MB/EN", "SHALLOW/EN Q1");
  PrintRule(72);
  JsonReporter reporter("scaling", args.scale);
  for (double base : {0.25, 0.5, 1.0, 2.0}) {
    Row row = Measure(base * args.scale);
    std::printf("%7.2f %14zu %11.2f %11.2f %11.2f %14.1f\n", row.scale,
                row.base_elements, row.deep_ratio, row.undr_ratio,
                row.dr_mb_ratio, row.shallow_q1);
    char label[32];
    std::snprintf(label, sizeof(label), "scale=%.3g", row.scale);
    reporter.Add("TPC-W", label)
        .Extra("en_elements", double(row.base_elements))
        .Extra("deep_ratio", row.deep_ratio)
        .Extra("undr_ratio", row.undr_ratio)
        .Extra("dr_mb_ratio", row.dr_mb_ratio)
        .Extra("shallow_q1_ratio", row.shallow_q1);
  }
  std::printf(
      "\nExpected: ratios stay put as scale grows (DEEP/UNDR element "
      "inflation, DR's\ncolor storage premium, SHALLOW's value-join "
      "slowdown on Q1).\n");
  if (!args.json_path.empty()) {
    Status status = reporter.WriteTo(args.json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
