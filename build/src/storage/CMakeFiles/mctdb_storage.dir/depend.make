# Empty dependencies file for mctdb_storage.
# This may be replaced when dependencies are built.
