// Static query analyzer tests: a table-driven corpus of (schema, query,
// expected QRY codes) covering every designer output for one ER source,
// plus golden text/JSON fixtures demonstrating each QRY001-QRY012 code
// (tests/data/qry/; regenerate with MCTDB_REGEN_FIXTURES=1).
#include "analysis/query_analyze.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "design/designer.h"
#include "query/mcxpath.h"
#include "query/planner.h"
#include "workload/workload.h"

namespace mctdb::analysis {
namespace {

using design::Strategy;
using query::AssociationQuery;
using query::McXPath;
using query::QueryBuilder;

er::EdgeId EdgeBetween(const er::ErGraph& g, er::NodeId a, er::NodeId b) {
  for (er::EdgeId eid : g.incident(a)) {
    if (g.edge(eid).other(a) == b) return eid;
  }
  return er::kInvalidEdge;
}

/// The corpus ER source: country 1:N address, everything attributed, so
/// every designer strategy produces a deterministic schema over it.
class QueryAnalyzeTest : public testing::Test {
 protected:
  QueryAnalyzeTest() : diagram_("corpus") {
    country_ = diagram_.AddEntity(
        "country", {{"id", er::AttrType::kString, true},
                    {"name", er::AttrType::kString, false}});
    address_ = diagram_.AddEntity(
        "address", {{"id", er::AttrType::kString, true},
                    {"city", er::AttrType::kString, false}});
    auto rel = diagram_.AddOneToMany("in", country_, address_);
    EXPECT_TRUE(rel.ok());
    in_ = *rel;
    graph_ = std::make_unique<er::ErGraph>(diagram_);
    ca_edge_ = EdgeBetween(*graph_, country_, in_);
    ia_edge_ = EdgeBetween(*graph_, in_, address_);
  }

  /// Hand-built two-color schema: blue nests country/in/address, red holds
  /// a lone address root. Fully deterministic for the MC-XPath fixtures.
  mct::MctSchema TwoColor() const {
    mct::MctSchema s("H2", graph_.get());
    mct::ColorId blue = s.AddColor();
    mct::ColorId red = s.AddColor();
    mct::OccId c0 = s.AddRoot(blue, country_);
    mct::OccId i0 = s.AddChild(c0, in_, ca_edge_);
    s.AddChild(i0, address_, ia_edge_);
    s.AddRoot(red, address_);
    return s;
  }

  /// One-color variant of the same source (no red), for divergence.
  mct::MctSchema OneColor() const {
    mct::MctSchema s("H1", graph_.get());
    mct::ColorId blue = s.AddColor();
    mct::OccId c0 = s.AddRoot(blue, country_);
    mct::OccId i0 = s.AddChild(c0, in_, ca_edge_);
    s.AddChild(i0, address_, ia_edge_);
    return s;
  }

  /// Roots only, no structural or ref realization of any edge: every
  /// association step is unrecoverable (QRY006).
  mct::MctSchema Disconnected() const {
    mct::MctSchema s("BROKEN", graph_.get());
    mct::ColorId blue = s.AddColor();
    s.AddRoot(blue, country_);
    s.AddRoot(blue, address_);
    return s;
  }

  AssociationQuery CountryToAddress() const {
    QueryBuilder b("Qca", diagram_);
    int r = b.Root("country");
    int a = b.Via(r, {"in", "address"});
    b.Output(a);
    return b.Build();
  }

  McXPath Parse(const char* text) const {
    auto parsed = query::ParseMcXPath(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    return *parsed;
  }

  er::ErDiagram diagram_;
  er::NodeId country_ = er::kInvalidNode;
  er::NodeId address_ = er::kInvalidNode;
  er::NodeId in_ = er::kInvalidNode;
  er::EdgeId ca_edge_ = er::kInvalidEdge;
  er::EdgeId ia_edge_ = er::kInvalidEdge;
  std::unique_ptr<er::ErGraph> graph_;
};

// ---------------------------------------------------------------------------
// Table-driven corpus across every designer output of the same ER source.

TEST_F(QueryAnalyzeTest, WellFormedQueryCleanOnEveryDesignerOutput) {
  design::Designer designer(*graph_);
  AssociationQuery q = CountryToAddress();
  for (Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    QueryAnalysis verdict = AnalyzeQuery(q, schema);
    EXPECT_FALSE(verdict.fatal())
        << schema.name() << ":\n" << verdict.report.ToText();
    EXPECT_FALSE(verdict.statically_empty)
        << schema.name() << ":\n" << verdict.report.ToText();
  }
}

TEST_F(QueryAnalyzeTest, UndeclaredPredicateEmptyOnEveryDesignerOutput) {
  // Predicates are checked against the ER declarations, which every
  // designer output shares — the verdict must agree across all seven.
  design::Designer designer(*graph_);
  QueryBuilder b("Qbad", diagram_);
  int r = b.Root("country");
  b.Where(r, "population", "big");  // country declares id + name only
  AssociationQuery q = b.Build();
  for (Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    QueryAnalysis verdict = AnalyzeQuery(q, schema);
    EXPECT_FALSE(verdict.fatal()) << schema.name();
    EXPECT_TRUE(verdict.statically_empty) << schema.name();
    EXPECT_TRUE(verdict.report.HasCode("QRY007")) << schema.name();
    EXPECT_TRUE(verdict.report.HasCode("QRY010")) << schema.name();
  }
}

TEST_F(QueryAnalyzeTest, TpcwWorkloadGridHasNoFatalFindings) {
  // The paper's Q1-Q13 grid: every query plans on every strategy, so the
  // analyzer must never report a fatal code for any (query, schema) pair
  // (it would reject a query the planner accepts).
  workload::Workload w = workload::TpcwWorkload(0.03);
  er::ErGraph graph(w.diagram);
  design::Designer designer(graph);
  for (Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    for (const AssociationQuery& q : w.queries) {
      QueryAnalysis verdict = AnalyzeQuery(q, schema);
      EXPECT_FALSE(verdict.fatal())
          << q.name << " on " << schema.name() << ":\n"
          << verdict.report.ToText();
      // The grid queries all return results in the paper; none may be
      // pruned.
      EXPECT_FALSE(verdict.statically_empty)
          << q.name << " on " << schema.name() << ":\n"
          << verdict.report.ToText();
    }
  }
}

TEST_F(QueryAnalyzeTest, AnalyzerEmptinessMatchesPlannerAcceptance) {
  // Soundness coupling: a fatal analyzer verdict must coincide with the
  // planner refusing the query, never with a plannable one.
  design::Designer designer(*graph_);
  AssociationQuery q = CountryToAddress();
  mct::MctSchema broken = Disconnected();
  QueryAnalysis verdict = AnalyzeQuery(q, broken);
  EXPECT_TRUE(verdict.fatal());
  EXPECT_TRUE(verdict.report.HasCode("QRY006"));
  EXPECT_FALSE(query::PlanQuery(q, broken).ok());
  for (Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    EXPECT_FALSE(AnalyzeQuery(q, schema).fatal());
    EXPECT_TRUE(query::PlanQuery(q, schema).ok()) << schema.name();
  }
}

// ---------------------------------------------------------------------------
// Golden fixtures: one per code, text + JSON, committed under
// tests/data/qry/. Regenerate with MCTDB_REGEN_FIXTURES=1.

void CheckFixture(const DiagnosticReport& report, const std::string& code) {
  SCOPED_TRACE(code);
  std::string base = std::string(MCTDB_TEST_DATA_DIR) + "/qry/" + code;
  std::string text = report.ToText();
  std::string json = report.ToJson();
  if (std::getenv("MCTDB_REGEN_FIXTURES") != nullptr) {
    std::ofstream(base + ".txt") << text;
    std::ofstream(base + ".json") << json;
    return;
  }
  auto read = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing fixture " << path
                           << " (regenerate with MCTDB_REGEN_FIXTURES=1)";
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  EXPECT_EQ(read(base + ".txt"), text);
  EXPECT_EQ(read(base + ".json"), json);
  EXPECT_TRUE(report.HasCode(code)) << report.ToText();
}

TEST_F(QueryAnalyzeTest, FixtureQry001UnknownType) {
  mct::MctSchema s = TwoColor();
  QueryAnalysis verdict = AnalyzeMcXPath(Parse("/continent"), s);
  EXPECT_TRUE(verdict.fatal());
  EXPECT_TRUE(IsFatalQueryCode("QRY001"));
  CheckFixture(verdict.report, "QRY001");
}

TEST_F(QueryAnalyzeTest, FixtureQry002UnknownColor) {
  mct::MctSchema s = OneColor();
  QueryAnalysis verdict = AnalyzeMcXPath(Parse("/(red)address"), s);
  EXPECT_TRUE(verdict.fatal());
  EXPECT_TRUE(IsFatalQueryCode("QRY002"));
  CheckFixture(verdict.report, "QRY002");
}

TEST_F(QueryAnalyzeTest, FixtureQry003TagAbsentFromColor) {
  mct::MctSchema s = TwoColor();
  QueryAnalysis verdict = AnalyzeMcXPath(Parse("/(red)country"), s);
  EXPECT_FALSE(verdict.fatal());
  EXPECT_TRUE(verdict.statically_empty);
  EXPECT_FALSE(IsFatalQueryCode("QRY003"));
  CheckFixture(verdict.report, "QRY003");
}

TEST_F(QueryAnalyzeTest, FixtureQry004NoParentChildPair) {
  // country/address skips the `in` level: both tags occur in blue but no
  // parent-child occurrence pair realizes the step ('//' would match).
  mct::MctSchema s = TwoColor();
  QueryAnalysis direct = AnalyzeMcXPath(Parse("/(blue)country/(blue)address"), s);
  EXPECT_TRUE(direct.statically_empty);
  QueryAnalysis desc = AnalyzeMcXPath(Parse("/(blue)country//(blue)address"), s);
  EXPECT_FALSE(desc.statically_empty) << desc.report.ToText();
  CheckFixture(direct.report, "QRY004");
}

TEST_F(QueryAnalyzeTest, FixtureQry005EmptyColorCrossing) {
  // Crossing into red at `in`, which has no red occurrence — the crossing
  // joins disjoint domains.
  mct::MctSchema s = TwoColor();
  QueryAnalysis bad =
      AnalyzeMcXPath(Parse("/(blue)country/(blue)in/(red)address"), s);
  EXPECT_TRUE(bad.statically_empty);
  EXPECT_FALSE(bad.fatal());
  CheckFixture(bad.report, "QRY005");
}

TEST_F(QueryAnalyzeTest, FixtureQry006UnrecoverableEdge) {
  QueryAnalysis verdict = AnalyzeQuery(CountryToAddress(), Disconnected());
  EXPECT_TRUE(verdict.fatal());
  EXPECT_TRUE(IsFatalQueryCode("QRY006"));
  CheckFixture(verdict.report, "QRY006");
}

TEST_F(QueryAnalyzeTest, FixtureQry007UndeclaredAttribute) {
  mct::MctSchema s = TwoColor();
  QueryAnalysis verdict =
      AnalyzeMcXPath(Parse("/(blue)country[@population='big']"), s);
  EXPECT_TRUE(verdict.statically_empty);
  EXPECT_FALSE(IsFatalQueryCode("QRY007"));
  CheckFixture(verdict.report, "QRY007");
}

TEST_F(QueryAnalyzeTest, FixtureQry008RedundantPredicate) {
  // Two branches to the same type with the identical predicate.
  QueryBuilder b("Qdup", diagram_);
  int r = b.Root("country");
  int a1 = b.Via(r, {"in", "address"});
  int a2 = b.Via(r, {"in", "address"});
  b.Where(a1, "city", "Tokyo");
  b.Where(a2, "city", "Tokyo");
  b.Output(a2);
  QueryAnalysis verdict = AnalyzeQuery(b.Build(), TwoColor());
  EXPECT_FALSE(verdict.fatal());
  EXPECT_FALSE(verdict.statically_empty);
  EXPECT_TRUE(verdict.simplifiable);
  CheckFixture(verdict.report, "QRY008");
}

TEST_F(QueryAnalyzeTest, FixtureQry009RedundantDistinct) {
  // Single clean occurrence of country overall: distinct cannot remove
  // anything.
  QueryBuilder b("Qdist", diagram_);
  b.Root("country");
  b.Distinct();
  QueryAnalysis verdict = AnalyzeQuery(b.Build(), OneColor());
  EXPECT_FALSE(verdict.statically_empty);
  EXPECT_TRUE(verdict.simplifiable);
  CheckFixture(verdict.report, "QRY009");
}

TEST_F(QueryAnalyzeTest, FixtureQry010StaticallyEmptySummary) {
  QueryBuilder b("Qbad", diagram_);
  int r = b.Root("country");
  b.Where(r, "population", "big");
  QueryAnalysis verdict = AnalyzeQuery(b.Build(), TwoColor());
  EXPECT_TRUE(verdict.statically_empty);
  EXPECT_EQ(verdict.empty_reason.substr(0, 6), "QRY007");
  CheckFixture(verdict.report, "QRY010");
}

TEST_F(QueryAnalyzeTest, FixtureQry011CrossSchemaDivergence) {
  // /(red)address is fine on the two-color variant but names an unknown
  // color on the one-color one: equivalent designer variants disagree.
  mct::MctSchema h1 = OneColor();
  mct::MctSchema h2 = TwoColor();
  DiagnosticReport merged = AnalyzeMcXPathAcrossSchemas(
      Parse("/(red)address"), {&h1, &h2});
  EXPECT_TRUE(merged.HasCode("QRY011"));
  CheckFixture(merged, "QRY011");
}

TEST_F(QueryAnalyzeTest, FixtureQry012UpdatePrecheck) {
  // A key rename AND an insert missing its key attribute, all violations
  // reported.
  mct::MctSchema s = TwoColor();
  storage::UpdateOp rename;
  rename.kind = storage::UpdateOp::Kind::kRenameValue;
  rename.target_type = country_;
  rename.target_logical = 1;
  rename.attr = "id";  // the key
  rename.new_value = "nope";
  DiagnosticReport report = VerifyUpdateOpStatic(s, rename);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(IsFatalQueryCode("QRY012"));
  CheckFixture(report, "QRY012");

  storage::UpdateOp insert;
  insert.kind = storage::UpdateOp::Kind::kInsertSubtree;
  insert.target_type = country_;
  insert.target_logical = 1;
  insert.subtree.type = in_;
  insert.subtree.logical = 900;
  storage::SubtreeSpec child;
  child.type = address_;
  child.logical = 901;
  child.attrs.push_back({"city", "Osaka", false});  // key "id" missing
  insert.subtree.children.push_back(child);
  DiagnosticReport missing_key = VerifyUpdateOpStatic(s, insert);
  EXPECT_TRUE(missing_key.has_errors());
  EXPECT_TRUE(missing_key.HasCode("QRY012"));
}

// ---------------------------------------------------------------------------
// Precheck equivalence: the static precheck accepts exactly what the
// storage-layer verifier accepts (never stricter, so the WAL gate cannot
// refuse an op the applier would take).

TEST_F(QueryAnalyzeTest, StaticPrecheckAgreesWithStorageVerifier) {
  design::Designer designer(*graph_);
  std::vector<storage::UpdateOp> ops;
  {
    storage::UpdateOp ok;
    ok.kind = storage::UpdateOp::Kind::kRenameValue;
    ok.target_type = country_;
    ok.target_logical = 1;
    ok.attr = "name";
    ok.new_value = "Nippon";
    ops.push_back(ok);
    storage::UpdateOp bad = ok;
    bad.attr = "id";
    ops.push_back(bad);
    storage::UpdateOp del;
    del.kind = storage::UpdateOp::Kind::kDeleteSubtree;
    del.target_type = address_;
    del.target_logical = 2;
    ops.push_back(del);
    storage::UpdateOp unknown = del;
    unknown.target_type = 999;
    ops.push_back(unknown);
  }
  for (Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    for (size_t i = 0; i < ops.size(); ++i) {
      bool static_ok = !VerifyUpdateOpStatic(schema, ops[i]).has_errors();
      bool storage_ok = storage::VerifyUpdateOp(schema, ops[i]).ok();
      EXPECT_EQ(static_ok, storage_ok)
          << "op " << i << " on " << schema.name();
    }
  }
}

}  // namespace
}  // namespace mctdb::analysis
