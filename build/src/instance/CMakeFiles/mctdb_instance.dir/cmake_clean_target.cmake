file(REMOVE_RECURSE
  "libmctdb_instance.a"
)
