file(REMOVE_RECURSE
  "libmctdb_storage.a"
)
