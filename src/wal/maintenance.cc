#include "wal/maintenance.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "obs/trace_id.h"

namespace mctdb::wal {

namespace flight = obs::flight;

const char* ToString(CheckpointReason r) {
  switch (r) {
    case CheckpointReason::kManual: return "manual";
    case CheckpointReason::kWalSize: return "wal_size";
    case CheckpointReason::kWalRecords: return "wal_records";
    case CheckpointReason::kElapsed: return "elapsed";
    case CheckpointReason::kGapPressure: return "gap_pressure";
  }
  return "?";
}

MaintenanceManager::MaintenanceManager(DurableStore* store,
                                       const MaintenanceOptions& options,
                                       Callback on_checkpoint)
    : store_(store),
      options_(options),
      on_checkpoint_(std::move(on_checkpoint)) {}

MaintenanceManager::~MaintenanceManager() {
  Stop();
  store_->AttachMaintenance(nullptr);
}

void MaintenanceManager::Start() {
  std::lock_guard lk(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  store_->AttachMaintenance(this);
  running_.store(true, std::memory_order_relaxed);
  appends_at_last_checkpoint_ = store_->wal_appends();
  thread_ = std::thread([this] { Loop(); });
}

void MaintenanceManager::Stop() {
  {
    std::lock_guard lk(mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
    // A stop counts as an epoch for stalled writers: they wake, see
    // running() false, and surface ResourceExhausted instead of blocking
    // out their full deadline on a dead manager.
    cv_.notify_all();
  }
  thread_.join();
  running_.store(false, std::memory_order_relaxed);
}

uint64_t MaintenanceManager::checkpoints_total() const {
  uint64_t total = 0;
  for (const auto& c : by_reason_) {
    total += c.load(std::memory_order_relaxed);
  }
  return total;
}

std::string MaintenanceManager::last_error() const {
  std::lock_guard lk(mu_);
  return last_error_;
}

bool MaintenanceManager::StallForRebalance(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock lk(mu_);
  const uint64_t start_epoch = rebalance_epoch_;
  urgent_ = true;
  cv_.notify_all();
  while (rebalance_epoch_ == start_epoch) {
    if (stop_ || !running_.load(std::memory_order_relaxed)) return false;
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
      return rebalance_epoch_ != start_epoch;
    }
  }
  return true;
}

Status MaintenanceManager::RunCheckpoint(CheckpointReason reason) {
  flight::Record(flight::Subsystem::kCheckpoint,
                 flight::Site::kMaintenanceTrigger, obs::CurrentTraceId(),
                 static_cast<uint64_t>(reason));
  Result<CheckpointStats> r = store_->Checkpoint(CheckpointMode::kRebaseLive);
  Event event;
  event.reason = reason;
  event.status = r.ok() ? Status::OK() : r.status();
  if (r.ok()) {
    event.stats = r.value();
    by_reason_[static_cast<size_t>(reason)].fetch_add(
        1, std::memory_order_relaxed);
    appends_at_last_checkpoint_ = store_->wal_appends();
  }
  {
    std::lock_guard lk(mu_);
    // The epoch advances even on failure: a stalled writer retries, fails
    // the same way, and burns its bounded budget instead of sleeping it.
    ++rebalance_epoch_;
    last_error_ = r.ok() ? std::string() : r.status().message();
    cv_.notify_all();
  }
  if (on_checkpoint_) on_checkpoint_(event);
  return r.ok() ? Status::OK() : r.status();
}

void MaintenanceManager::Loop() {
  using clock = std::chrono::steady_clock;
  const auto poll = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(std::max(options_.poll_seconds, 1e-3)));
  auto last_checkpoint = clock::now();
  // Far enough in the past that the first read-only cycle probes at once.
  auto last_reprobe = clock::now() - std::chrono::hours(1);
  std::unique_lock lk(mu_);
  while (!stop_) {
    cv_.wait_for(lk, poll, [this] { return stop_ || urgent_; });
    if (stop_) break;
    const bool urgent = urgent_;
    urgent_ = false;
    lk.unlock();
    // Each cycle is its own trace: background work has no ambient
    // ScopedTraceId, so flight events and the service's generation bump
    // would otherwise all land on trace 0.
    obs::ScopedTraceId trace(obs::MintTraceId());
    const auto now = clock::now();
    if (store_->read_only()) {
      // Don't checkpoint against a full disk; probe it on the timer.
      const auto reprobe_every =
          std::chrono::duration_cast<clock::duration>(
              std::chrono::duration<double>(options_.reprobe_seconds));
      if (now - last_reprobe >= reprobe_every) {
        last_reprobe = now;
        reprobes_.fetch_add(1, std::memory_order_relaxed);
        Status probed = store_->TryExitReadOnly();
        std::lock_guard elk(mu_);
        last_error_ = probed.ok() ? std::string() : probed.message();
        if (urgent) {
          // A writer stalled against a read-only store: wake it either
          // way — retrying against a still-degraded store fails fast
          // with Unavailable rather than ResourceExhausted.
          ++rebalance_epoch_;
          cv_.notify_all();
        }
      } else if (urgent) {
        std::lock_guard elk(mu_);
        ++rebalance_epoch_;
        cv_.notify_all();
      }
      lk.lock();
      continue;
    }
    CheckpointReason reason{};
    bool fire = false;
    const uint64_t appends_since =
        store_->wal_appends() - appends_at_last_checkpoint_;
    if (urgent) {
      reason = CheckpointReason::kGapPressure;
      fire = true;
    } else if (options_.gap_pressure_min_free > 0 &&
               store_->min_free_gap_low_water() <=
                   options_.gap_pressure_min_free) {
      reason = CheckpointReason::kGapPressure;
      fire = true;
    } else if (options_.wal_bytes_threshold > 0 &&
               store_->wal_bytes() >= options_.wal_bytes_threshold) {
      reason = CheckpointReason::kWalSize;
      fire = true;
    } else if (options_.wal_records_threshold > 0 &&
               appends_since >= options_.wal_records_threshold) {
      reason = CheckpointReason::kWalRecords;
      fire = true;
    } else if (options_.interval_seconds > 0 && appends_since > 0 &&
               now - last_checkpoint >=
                   std::chrono::duration_cast<clock::duration>(
                       std::chrono::duration<double>(
                           options_.interval_seconds))) {
      reason = CheckpointReason::kElapsed;
      fire = true;
    }
    if (fire) {
      (void)RunCheckpoint(reason);
      last_checkpoint = clock::now();
    }
    lk.lock();
  }
}

}  // namespace mctdb::wal
