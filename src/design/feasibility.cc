#include "design/feasibility.h"

#include "common/string_util.h"

namespace mctdb::design {

FeasibilityResult CheckSingleColorNnAr(const er::ErGraph& graph) {
  er::ErGraphStats stats = graph.Stats();
  FeasibilityResult r;
  r.is_forest = stats.is_forest;
  r.many_many_relationships = stats.num_many_many;
  r.multi_many_side_nodes = stats.num_multi_many_side_nodes;
  r.feasible = r.is_forest && r.many_many_relationships == 0 &&
               r.multi_many_side_nodes == 0;
  if (r.feasible) {
    r.explanation = "single-color XML can satisfy both NN and AR";
  } else {
    r.explanation = "infeasible:";
    if (!r.is_forest) r.explanation += " ER graph is not a forest;";
    if (r.many_many_relationships > 0) {
      r.explanation += StringPrintf(" %zu many-many relationship type(s);",
                                    r.many_many_relationships);
    }
    if (r.multi_many_side_nodes > 0) {
      r.explanation += StringPrintf(
          " %zu node(s) on the many side of more than one 1:N relationship;",
          r.multi_many_side_nodes);
    }
  }
  return r;
}

}  // namespace mctdb::design
