// Planner coverage sweep: every query of every collection workload must
// plan on every strategy, and the figure-level metric orderings must hold
// diagram-wide (not just on TPC-W).
#include <gtest/gtest.h>

#include "design/designer.h"
#include "er/er_catalog.h"
#include "query/planner.h"
#include "workload/metrics.h"

namespace mctdb::query {
namespace {

using design::Strategy;

class PlannerCollectionTest
    : public testing::TestWithParam<size_t> {};  // index into collection

std::vector<workload::Workload>* Workloads() {
  static auto* workloads = [] {
    auto* out = new std::vector<workload::Workload>();
    for (const er::ErDiagram& d : er::EvaluationCollection()) {
      if (d.name() == "Derby") {
        out->push_back(workload::DerbyWorkload());
      } else if (d.name() == "TPC-W") {
        out->push_back(workload::TpcwWorkload(0.01));
      } else {
        out->push_back(workload::XmarkEmulatedWorkload(d));
      }
    }
    return out;
  }();
  return workloads;
}

TEST_P(PlannerCollectionTest, EveryQueryPlansOnEveryStrategy) {
  const workload::Workload& w = (*Workloads())[GetParam()];
  er::ErGraph graph(w.diagram);
  design::Designer designer(graph);
  for (Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    for (const auto& q : w.queries) {
      auto plan = PlanQuery(q, schema);
      EXPECT_TRUE(plan.ok()) << w.diagram.name() << "/" << q.name << " on "
                             << design::ToString(s) << ": "
                             << plan.status().ToString();
    }
  }
}

TEST_P(PlannerCollectionTest, DeepNeverPaysValueJoinsOrCrossings) {
  const workload::Workload& w = (*Workloads())[GetParam()];
  er::ErGraph graph(w.diagram);
  design::Designer designer(graph);
  mct::MctSchema deep = designer.Design(Strategy::kDeep);
  for (const auto& q : w.queries) {
    auto plan = PlanQuery(q, deep);
    ASSERT_TRUE(plan.ok()) << q.name;
    EXPECT_EQ(plan->Stats().value_joins, 0u) << q.name;
    EXPECT_EQ(plan->Stats().color_crossings, 0u) << q.name;
  }
}

TEST_P(PlannerCollectionTest, NodeNormalSchemasNeverPayDupOps) {
  const workload::Workload& w = (*Workloads())[GetParam()];
  er::ErGraph graph(w.diagram);
  design::Designer designer(graph);
  for (Strategy s : {Strategy::kEn, Strategy::kMcmr, Strategy::kDr}) {
    mct::MctSchema schema = designer.Design(s);
    for (const auto& q : w.queries) {
      auto plan = PlanQuery(q, schema);
      ASSERT_TRUE(plan.ok()) << q.name;
      EXPECT_EQ(plan->Stats().dup_elims, 0u)
          << w.diagram.name() << "/" << q.name << " on "
          << design::ToString(s);
      EXPECT_EQ(plan->Stats().dup_updates, 0u) << q.name;
    }
  }
}

TEST_P(PlannerCollectionTest, Fig13OrderingHoldsPerDiagram) {
  const workload::Workload& w = (*Workloads())[GetParam()];
  er::ErGraph graph(w.diagram);
  design::Designer designer(graph);
  auto gmean_vjcc = [&](Strategy s) {
    mct::MctSchema schema = designer.Design(s);
    std::vector<size_t> xs;
    for (const auto& row : workload::PlanMetrics(w, schema)) {
      xs.push_back(row.stats.value_joins_plus_crossings());
    }
    return workload::GeoMean1p(xs);
  };
  double shallow = gmean_vjcc(Strategy::kShallow);
  double en = gmean_vjcc(Strategy::kEn);
  double mcmr = gmean_vjcc(Strategy::kMcmr);
  double dr = gmean_vjcc(Strategy::kDr);
  EXPECT_GE(shallow + 1e-9, en) << w.diagram.name();
  EXPECT_GE(en + 1e-9, mcmr) << w.diagram.name();
  EXPECT_GE(mcmr + 1e-9, dr) << w.diagram.name();
}

INSTANTIATE_TEST_SUITE_P(AllDiagrams, PlannerCollectionTest,
                         testing::Range<size_t>(0, 12),
                         [](const testing::TestParamInfo<size_t>& info) {
                           return (*Workloads())[info.param].diagram.name() ==
                                          "TPC-W"
                                      ? std::string("TPCW")
                                      : (*Workloads())[info.param]
                                            .diagram.name();
                         });

}  // namespace
}  // namespace mctdb::query
