file(REMOVE_RECURSE
  "CMakeFiles/algorithm_mcmr_test.dir/algorithm_mcmr_test.cc.o"
  "CMakeFiles/algorithm_mcmr_test.dir/algorithm_mcmr_test.cc.o.d"
  "algorithm_mcmr_test"
  "algorithm_mcmr_test.pdb"
  "algorithm_mcmr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_mcmr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
