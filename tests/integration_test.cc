// End-to-end pipeline tests: ER diagram -> all seven schemas -> one logical
// instance -> seven materialized stores -> planned + executed workload ->
// identical logical results everywhere. This is the property the paper's
// whole experimental section rests on.
#include <gtest/gtest.h>

#include "design/designer.h"
#include "er/er_catalog.h"
#include "instance/materialize.h"
#include "query/executor.h"
#include "query/planner.h"
#include "workload/metrics.h"
#include "workload/workload.h"

namespace mctdb {
namespace {

using design::Designer;
using design::Strategy;

void RunWorkloadEquivalence(workload::Workload w) {
  er::ErGraph graph(w.diagram);
  Designer designer(graph);
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);

  std::vector<mct::MctSchema> schemas;
  std::vector<std::unique_ptr<storage::MctStore>> stores;
  for (Strategy s : design::AllStrategies()) {
    schemas.push_back(designer.Design(s));
  }
  for (mct::MctSchema& schema : schemas) {
    stores.push_back(instance::Materialize(logical, schema));
  }

  for (const auto& q : w.queries) {
    if (q.is_update()) continue;  // updates mutate; checked separately
    std::vector<uint32_t> reference;
    bool have_reference = false;
    for (size_t i = 0; i < schemas.size(); ++i) {
      auto plan = query::PlanQuery(q, schemas[i]);
      ASSERT_TRUE(plan.ok())
          << w.diagram.name() << "/" << q.name << " on " << schemas[i].name()
          << ": " << plan.status().ToString();
      query::Executor exec(stores[i].get());
      auto result = exec.Execute(*plan);
      ASSERT_TRUE(result.ok()) << q.name;
      if (!have_reference) {
        reference = result->logicals;
        have_reference = true;
      } else {
        EXPECT_EQ(result->logicals, reference)
            << w.diagram.name() << "/" << q.name << ": " << schemas[i].name()
            << " disagrees with " << schemas[0].name();
      }
    }
  }
}

TEST(IntegrationTest, TpcwWorkloadEquivalence) {
  workload::Workload w = workload::TpcwWorkload(0.04);
  RunWorkloadEquivalence(std::move(w));
}

TEST(IntegrationTest, DerbyWorkloadEquivalence) {
  workload::Workload w = workload::DerbyWorkload();
  w.gen.base_count = 12;
  RunWorkloadEquivalence(std::move(w));
}

TEST(IntegrationTest, XmarkWorkloadsEquivalenceOnSmallDiagrams) {
  // ER5 stays in this list deliberately: its parallel departs/arrives
  // relationships caught a real bug (filter-branch reduction by element
  // rather than logical identity misses sibling copies in DEEP).
  for (auto maker : {er::Er6Star, er::Er7Chain, er::Er10Lattice,
                     er::Er1Company, er::Er5Airline, er::Er9OneOneRing}) {
    workload::Workload w = workload::XmarkEmulatedWorkload(maker());
    w.gen.base_count = 10;
    RunWorkloadEquivalence(std::move(w));
  }
}

TEST(IntegrationTest, UpdatesAgreeOnLogicalTargets) {
  workload::Workload w = workload::TpcwWorkload(0.04);
  er::ErGraph graph(w.diagram);
  Designer designer(graph);
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);
  for (const auto& q : w.queries) {
    if (!q.is_update()) continue;
    std::vector<uint32_t> reference;
    bool have_reference = false;
    for (Strategy s : design::AllStrategies()) {
      mct::MctSchema schema = designer.Design(s);
      auto store = instance::Materialize(logical, schema);
      auto plan = query::PlanQuery(q, schema);
      ASSERT_TRUE(plan.ok()) << q.name;
      query::Executor exec(store.get());
      auto result = exec.Execute(*plan);
      ASSERT_TRUE(result.ok()) << q.name;
      if (!have_reference) {
        reference = result->logicals;
        have_reference = true;
      } else {
        EXPECT_EQ(result->logicals, reference)
            << q.name << " on " << schema.name();
      }
      // Every copy must have been rewritten: verify via the key index.
      er::NodeId type = q.nodes[q.output].er_node;
      uint32_t name_id = store->FindAttrName(q.update->attr);
      ASSERT_NE(name_id, UINT32_MAX);
      for (uint32_t logical_id : result->logicals) {
        for (storage::ElemId e : store->ElementsFor(type, logical_id)) {
          EXPECT_EQ(*store->AttrValue(e, q.update->attr),
                    q.update->new_value)
              << q.name << " on " << schema.name();
        }
      }
    }
  }
}

TEST(IntegrationTest, Table1ShapeAtSmallScale) {
  // Storage ordering of Table 1: node-normal schemas tie; DR > EN in bytes
  // (extra colors) but equal in elements; UNDR and DEEP are strictly
  // bigger in elements.
  workload::Workload w = workload::TpcwWorkload(0.1);
  er::ErGraph graph(w.diagram);
  Designer designer(graph);
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);
  std::map<std::string, storage::StoreStats> stats;
  for (Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    stats[schema.name()] = instance::Materialize(logical, schema)->Stats();
  }
  EXPECT_EQ(stats["SHALLOW"].num_elements, stats["EN"].num_elements);
  EXPECT_EQ(stats["AF"].num_elements, stats["EN"].num_elements);
  EXPECT_EQ(stats["MCMR"].num_elements, stats["EN"].num_elements);
  EXPECT_EQ(stats["DR"].num_elements, stats["EN"].num_elements);
  EXPECT_GT(stats["UNDR"].num_elements, stats["DR"].num_elements);
  EXPECT_GT(stats["DEEP"].num_elements, stats["EN"].num_elements);
  EXPECT_GT(stats["DR"].data_mbytes, stats["EN"].data_mbytes);
  EXPECT_GT(stats["DEEP"].data_mbytes, stats["DR"].data_mbytes);
}

}  // namespace
}  // namespace mctdb
