#include "common/thread_pool.h"

#include <algorithm>

namespace mctdb {

ThreadPool::ThreadPool(const Options& options)
    : queue_(options.max_queue) {
  if (options.start_paused) queue_.Pause();
  size_t n = std::max<size_t>(1, options.num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  queue_.Close();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::Submit(std::function<void()> fn) {
  return queue_.Push(std::move(fn));
}

bool ThreadPool::TrySubmit(std::function<void()> fn) {
  return queue_.TryPush(std::move(fn));
}

void ThreadPool::Resume() { queue_.Resume(); }

void ThreadPool::WorkerLoop() {
  while (auto task = queue_.Pop()) {
    (*task)();
  }
}

}  // namespace mctdb
