// Posting lists of interval labels, the storage representation behind
// structural joins [Al-Khalifa et al., ICDE'02]: for each (color, element
// tag) the store keeps the tag's elements as (start, end, level) records in
// document order, packed into 8 KB pages and scanned through the buffer
// pool.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/exec_stats.h"
#include "storage/pager.h"

namespace mctdb::storage {

using ElemId = uint32_t;
inline constexpr ElemId kInvalidElem = 0xFFFFFFFFu;

/// One posting record: an element's interval label within one color.
/// 20 bytes; ~409 records per 8 KB page.
struct LabelEntry {
  ElemId elem = kInvalidElem;
  uint32_t start = 0;
  uint32_t end = 0;
  uint16_t level = 0;
  /// Set when this placement is a redundant copy (non-NN schemas); results
  /// produced through copies may need duplicate elimination.
  uint16_t is_copy = 0;
  /// Logical instance id (er-node-scoped), used for duplicate elimination.
  uint32_t logical = 0;

  /// Interval containment: is `this` a proper ancestor of `d`?
  bool Contains(const LabelEntry& d) const {
    return start < d.start && d.end < end;
  }
};
static_assert(sizeof(LabelEntry) == 20);

inline constexpr size_t kEntriesPerPage = kPageSize / sizeof(LabelEntry);

/// Page-set descriptor of one posting list.
struct PostingMeta {
  std::vector<PageId> pages;
  size_t count = 0;

  size_t num_pages() const { return pages.size(); }
};

/// Append-only builder; records must arrive in document (start) order.
class PostingWriter {
 public:
  explicit PostingWriter(Pager* pager) : pager_(pager) {}

  void Append(const LabelEntry& entry);
  /// Flushes the tail page and returns the descriptor.
  PostingMeta Finish();

 private:
  Pager* pager_;
  PostingMeta meta_;
  char buffer_[kPageSize];
  size_t in_buffer_ = 0;
};

/// Sequential scan of a posting list through a page cache (every page
/// touch is a pool fetch, so misses show up in the stats). Holds at most
/// one page pinned at a time; the destructor releases the last pin, so a
/// cursor works unchanged over the concurrent ShardedBufferPool.
///
/// When `stats` is given, every page fetch (and its hit/miss outcome) is
/// charged to it — this is how a query's I/O is attributed to exactly
/// that query even on a pool shared by concurrent sessions.
///
/// Error handling: a page fetch that fails (DataLoss surviving the pool's
/// quarantine) ends the scan — Next returns false and the failure is
/// latched on status(). Callers distinguishing "end of list" from "list
/// unreadable" must check status() after the scan; query-path callers
/// propagate it so storage corruption degrades to a failed query.
class PostingCursor {
 public:
  PostingCursor(PageCache* pool, const PostingMeta* meta,
                obs::ExecStats* stats = nullptr)
      : pool_(pool), meta_(meta), stats_(stats) {}
  ~PostingCursor() { Release(); }

  PostingCursor(const PostingCursor&) = delete;
  PostingCursor& operator=(const PostingCursor&) = delete;
  /// Movable: the pin travels with the cursor, so exactly one of the two
  /// objects releases it.
  PostingCursor(PostingCursor&& other) noexcept
      : pool_(other.pool_), meta_(other.meta_), stats_(other.stats_),
        index_(other.index_), current_page_(other.current_page_),
        current_page_index_(other.current_page_index_),
        status_(std::move(other.status_)) {
    other.current_page_ = nullptr;
    other.current_page_index_ = SIZE_MAX;
  }
  PostingCursor& operator=(PostingCursor&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      meta_ = other.meta_;
      stats_ = other.stats_;
      index_ = other.index_;
      current_page_ = other.current_page_;
      current_page_index_ = other.current_page_index_;
      status_ = std::move(other.status_);
      other.current_page_ = nullptr;
      other.current_page_index_ = SIZE_MAX;
    }
    return *this;
  }

  /// Returns false at end of list — or on a page fetch failure, which
  /// also latches status(). Once failed, further Next calls keep
  /// returning false until Reset.
  bool Next(LabelEntry* out);
  void Reset() {
    Release();
    index_ = 0;
    status_ = Status::OK();
  }
  size_t remaining() const { return meta_->count - index_; }
  /// OK unless a page fetch failed during the scan.
  const Status& status() const { return status_; }

 private:
  void Release();

  PageCache* pool_;
  const PostingMeta* meta_;
  obs::ExecStats* stats_ = nullptr;
  size_t index_ = 0;
  const char* current_page_ = nullptr;
  size_t current_page_index_ = SIZE_MAX;
  Status status_;
};

/// Reads a whole posting list into memory (through the pool), charging
/// `stats` when given. A fetch failure mid-scan is reported through
/// `out_status` (the returned vector holds the entries read so far); when
/// `out_status` is null a failure aborts, matching the convenience Fetch
/// contract for callers on storage they trust.
std::vector<LabelEntry> ReadAll(PageCache* pool, const PostingMeta& meta,
                                obs::ExecStats* stats = nullptr,
                                Status* out_status = nullptr);

}  // namespace mctdb::storage
