// Executor: runs a QueryPlan against an MctStore.
//
// Evaluation is binding-set based (TIMBER-style twig evaluation): the
// anchor tag is scanned in the plan's anchor color, then each pattern edge
// is evaluated segment by segment — stack-tree structural joins for
// structural segments, hash joins on id/idref values for value segments,
// logical-identity re-anchoring for color crossings. Filter branches (below
// pattern nodes off the root-to-output spine) reduce their parent binding
// by joining back up, so every schema returns the same logical result set.
//
// Costs are real: posting scans go through the buffer pool, value joins
// build their hash table from a full scan of the build side, and updates
// rewrite every redundant copy. Every page fetch is charged to THIS
// query's obs::ExecStats at the point of the fetch (see obs/exec_stats.h),
// so the hit/miss counts in ExecResult are exact per query even when many
// executors share one pool — never a diff of pool-global counters.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/exec_stats.h"
#include "query/plan.h"
#include "storage/store.h"

namespace mctdb::query {

struct ExecResult {
  /// Output logical instance ids after duplicate elimination (the
  /// canonical result, equal across schemas of one logical instance).
  std::vector<uint32_t> logicals;
  /// Stored-element matches before elimination (Table 1 reports the
  /// parenthesized duplicate counts for DEEP/UNDR from this).
  size_t raw_count = 0;
  size_t unique_count = 0;
  size_t duplicates() const { return raw_count - unique_count; }

  /// Group-by output (value -> count), when the query groups.
  std::map<std::string, size_t> groups;

  // Updates.
  size_t logicals_updated = 0;
  size_t elements_updated = 0;  ///< includes redundant copies
  size_t icic_color_touches = 0;

  double elapsed_seconds = 0.0;
  /// Exact per-query I/O: pages this query fetched through its cursors,
  /// charged at fetch time. Unaffected by concurrent queries on the pool.
  uint64_t page_misses = 0;
  uint64_t page_hits = 0;
  /// Total structural-join containment pairs produced by this query.
  uint64_t join_pairs = 0;
  /// Index-assisted posting seeks: scans that consulted the per-page
  /// interval summaries and skipped at least one page without fetching it.
  uint64_t index_seeks = 0;

  /// The stage-span trace (root is the kQuery span). Render with
  /// obs::SpanTreeToText / obs::SpanToJson; roll up with
  /// obs::AggregateByStage.
  obs::Span trace;
};

/// How the executor consumes posting lists and feeds structural joins.
/// kBatched is the production path: page-at-a-time spans, SoA block joins,
/// and index-assisted scan bounds. kTuple is the original entry-at-a-time
/// path, kept behind this flag for one release as the equivalence oracle
/// (the grid test drives every query through both and compares bytes).
enum class ExecMode { kBatched, kTuple };

class Executor {
 public:
  /// Runs against the store's own (single-threaded) buffer pool by
  /// default. A service session passes its own thread-safe pool handle so
  /// many executors can read one store concurrently; page hit/miss deltas
  /// in ExecResult are taken from whichever pool the executor uses.
  explicit Executor(storage::MctStore* store,
                    storage::PageCache* pool = nullptr)
      : store_(store), pool_(pool != nullptr ? pool : store->buffer_pool()) {}

  /// Pins every read of this executor to the given snapshot LSN. On a
  /// versioned store (wal::DurableStore) callers pass
  /// store->visible_lsn() ONCE per query, so a query that started before
  /// an update keeps its consistent pre-commit view for its whole run —
  /// readers never block behind writers. Default kMaxLsn = latest (and a
  /// no-op on read-only stores).
  void set_snapshot(Lsn snapshot) { snapshot_ = snapshot; }
  Lsn snapshot() const { return snapshot_; }

  /// Selects the scan/join implementation; see ExecMode. Serial results
  /// are byte-identical across modes — only I/O and CPU differ.
  void set_mode(ExecMode mode) { mode_ = mode; }
  ExecMode mode() const { return mode_; }

  /// Returns InvalidArgument (instead of crashing) when the plan is
  /// malformed: no query attached, or a non-root pattern node without an
  /// edge plan. Returns DataLoss when a posting page could not be read
  /// (checksum failure surviving the pool's retries/quarantine) — the
  /// query fails cleanly; the store and service stay up.
  Result<ExecResult> Execute(const QueryPlan& plan);

 private:
  using Binding = std::vector<storage::LabelEntry>;

  /// Scan a tag's posting list in a color, optionally filtering by an
  /// attribute predicate. `bounds` (batched mode only) installs
  /// index-assisted page-skip hints on the base cursor; they are
  /// necessary conditions for joining, so skipped entries can never
  /// appear in a result.
  Binding ScanTag(mct::ColorId color, er::NodeId tag,
                  const AttrPredicate* predicate,
                  const storage::ScanBounds* bounds = nullptr);
  Binding FilterPredicate(Binding in, const AttrPredicate& predicate);
  /// Re-anchor a binding into `color` via shared node identity (the color
  /// crossing primitive).
  Binding CrossTo(const Binding& in, mct::ColorId from_color,
                  mct::ColorId color);

  /// Evaluate one edge: parent binding (labeled in `parent_color`) to child
  /// binding. When `reduce_parent`, also shrink *parent to members with at
  /// least one match (filter-branch semantics).
  Binding EvalEdge(const EdgePlan& edge, const PatternNode& node,
                   Binding* parent, mct::ColorId* parent_color,
                   bool reduce_parent, mct::ColorId* out_color);

  storage::MctStore* store_;
  storage::PageCache* pool_;
  Lsn snapshot_ = kMaxLsn;
  ExecMode mode_ = ExecMode::kBatched;
  /// The running query's attribution context; set for the duration of
  /// Execute so the operators (and their posting cursors) charge spans and
  /// page fetches to it.
  obs::ExecStats* stats_ = nullptr;
  /// First storage failure observed by an operator during Execute. The
  /// Binding-returning operators cannot propagate Status through their
  /// signatures, so ScanTag latches the cursor's failure here and Execute
  /// checks it between evaluation steps.
  Status failure_;
};

}  // namespace mctdb::query
